//! The conference-room walkthrough: the paper's §7 scenarios 1–5 in one
//! run, with per-step timings (the Fig. 19 numbered steps).
//!
//! ```sh
//! cargo run --example conference_room
//! ```

use ace_core::prelude::*;
use ace_env::{AceEnvironment, EnvConfig};
use ace_security::keys::KeyPair;
use std::time::{Duration, Instant};

fn wait_until(deadline: Duration, mut probe: impl FnMut() -> bool) -> Duration {
    let start = Instant::now();
    let end = start + deadline;
    while Instant::now() < end {
        if probe() {
            return start.elapsed();
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("condition never became true");
}

fn main() {
    println!("building the ACE environment (Fig. 18)…");
    let t0 = Instant::now();
    let ace = AceEnvironment::build(EnvConfig::default()).expect("environment");
    println!(
        "  {} service daemons + framework tier in {:?}\n",
        ace.daemons.len(),
        t0.elapsed()
    );

    // ── Scenario 1: new user ────────────────────────────────────────────
    println!("Scenario 1 — John Doe joins ACECo");
    let john = KeyPair::generate(&mut rand::thread_rng());
    let t = Instant::now();
    ace.register_user("jdoe", "John Doe", "hunter2", &john, Some("fp_jdoe"), None)
        .unwrap();
    println!(
        "  [1] registered in the AUD + fingerprint enrolled ({:?})",
        t.elapsed()
    );

    let mut wss = ace.client("wss").unwrap();
    let took = wait_until(Duration::from_secs(10), || {
        wss.call(&CmdLine::new("wssList").arg("user", "jdoe"))
            .map(|r| r.get_int("count") == Some(1))
            .unwrap_or(false)
    });
    println!("  [2] default workspace provisioned via WSS→SAL→SRM→HAL (+{took:?})\n");

    // ── Scenario 2: identification ──────────────────────────────────────
    println!("Scenario 2 — John identifies at the podium scanner");
    let t = Instant::now();
    let reply = ace.press_finger("fp_jdoe").unwrap();
    println!(
        "  [1] FIU matched template, user = {} ({:?})",
        reply.get_text("username").unwrap(),
        t.elapsed()
    );
    let mut aud = ace.client("aud").unwrap();
    let took = wait_until(Duration::from_secs(10), || {
        aud.call(&CmdLine::new("getLocation").arg("username", "jdoe"))
            .map(|r| r.get_text("room") == Some("hawk"))
            .unwrap_or(false)
    });
    println!("  [2] ID Monitor updated the AUD: jdoe is in hawk at podium (+{took:?})");

    // ── Scenario 3: workspace shows up ──────────────────────────────────
    let took = wait_until(Duration::from_secs(10), || {
        wss.call(&CmdLine::new("wssStats"))
            .map(|r| r.get_int("shows").unwrap_or(0) >= 1)
            .unwrap_or(false)
    });
    println!("Scenario 3 — workspace displayed at the access point (+{took:?})\n");

    // ── Scenario 4: second workspace + selector ─────────────────────────
    println!("Scenario 4 — a second workspace raises the selector");
    wss.call(
        &CmdLine::new("wssCreate")
            .arg("user", "jdoe")
            .arg("name", "slides"),
    )
    .unwrap();
    ace.press_finger("fp_jdoe").unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let shown = wss
        .call(
            &CmdLine::new("wssShow")
                .arg("user", "jdoe")
                .arg("name", "slides")
                .arg("accessHost", "podium"),
        )
        .unwrap();
    println!(
        "  selector confirmed: session {} on {}:{}\n",
        shown.get_text("session").unwrap(),
        shown.get_text("vncHost").unwrap(),
        shown.get_int("vncPort").unwrap()
    );

    // ── Scenario 5: devices ─────────────────────────────────────────────
    println!("Scenario 5 — projector and camera for the presentation");
    let mut projector = ace.client("projector_hawk").unwrap();
    projector.call_ok(&CmdLine::new("projOn")).unwrap();
    projector
        .call_ok(&CmdLine::new("projInput").arg("source", "workspace"))
        .unwrap();
    projector
        .call_ok(&CmdLine::new("projPip").arg("source", "camera"))
        .unwrap();
    println!("  projector: on, input=workspace, pip=camera");

    let mut camera = ace.client("camera_hawk").unwrap();
    camera.call_ok(&CmdLine::new("ptzOn")).unwrap();
    let moved = camera
        .call(
            &CmdLine::new("ptzMove")
                .arg("x", 35.0)
                .arg("y", -10.0)
                .arg("zoom", 2.0),
        )
        .unwrap();
    println!(
        "  camera: pointed at the podium (pan={} tilt={} zoom={})",
        moved.get_f64("x").unwrap(),
        moved.get_f64("y").unwrap(),
        moved.get_f64("zoom").unwrap()
    );

    let m = ace.net.metrics().snapshot();
    println!(
        "\ntraffic for the whole session: {} connections, {} frames, {} KiB",
        m.connections,
        m.frames,
        m.frame_bytes / 1024
    );
    println!("John is now ready to give his presentation.");
    ace.shutdown();
}
