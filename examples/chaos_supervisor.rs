//! The PR's supervision + chaos stack end-to-end: a seeded [`FaultPlan`]
//! crashes store replicas and an app host while a [`Supervisor`] daemon
//! watches ASD `serviceExpired` events and health probes, restarting every
//! casualty — and a client's acknowledged quorum writes all survive.
//!
//! ```sh
//! cargo run --release --example chaos_supervisor [seed]
//! ```
//!
//! Same seed, same fault schedule — rerun with the printed seed to replay
//! the exact run.

use ace_core::prelude::*;
use ace_core::supervise::wire_supervisor;
use ace_directory::{bootstrap, AsdClient};
use ace_net::fault::{FaultPlan, FaultPlanConfig};
use ace_security::keys::KeyPair;
use ace_store::{spawn_store_cluster, DiskImage, StoreClient, StoreReplica, WalConfig, STORE_PORT};
use std::time::{Duration, Instant};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xACE);
    let net = SimNet::new();
    let store_hosts = ["s1", "s2", "s3"];
    for h in ["ctrl", "s1", "s2", "s3"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "ctrl", Duration::from_millis(500)).expect("framework");
    let cluster =
        spawn_store_cluster(&net, &fw, &store_hosts, Duration::from_millis(50)).expect("cluster");
    println!("framework + 3-replica store up on {store_hosts:?}");

    // One supervised spec per replica: respawn on the same host after
    // recovering the disk image from its write-ahead log + snapshot; the
    // recovery report rides into the supervisor's restart log line.
    let mut specs = Vec::new();
    for (i, host) in store_hosts.iter().enumerate() {
        let addrs = (
            fw.asd_addr.clone(),
            fw.roomdb_addr.clone(),
            fw.logger_addr.clone(),
        );
        let storage = cluster.storages[i].clone();
        let host = host.to_string();
        specs.push(SupervisedSpec::new(
            format!("store_{}", i + 1),
            Box::new(move |net: &SimNet| {
                let (disk, report) = DiskImage::open_or_reset(&storage, WalConfig::default())
                    .map_err(ace_store::storage_spawn_err)?;
                let handle = Daemon::spawn(
                    net,
                    DaemonConfig::new(
                        format!("store_{}", i + 1),
                        "Service.Database.PersistentStore",
                        "machineroom",
                        host.as_str(),
                        STORE_PORT,
                    )
                    .with_asd(addrs.0.clone())
                    .with_roomdb(addrs.1.clone())
                    .with_logger(addrs.2.clone()),
                    Box::new(StoreReplica::new(disk, Duration::from_millis(50))),
                )?;
                Ok(Respawn::with_note(handle, report.to_string()))
            }),
        ));
    }
    let supervisor = Daemon::spawn(
        &net,
        fw.service_config(
            "supervisor",
            "Service.Supervisor",
            "machineroom",
            "ctrl",
            5900,
        ),
        Box::new(
            Supervisor::new(specs, RestartPolicy::default())
                .with_probe_interval(Duration::from_millis(150)),
        ),
    )
    .expect("supervisor");
    let me = KeyPair::generate(&mut rand::thread_rng());
    wire_supervisor(&net, &supervisor, &fw.asd_addr, &me).expect("wire supervisor");
    println!("supervisor armed on `serviceExpired` + 150ms health probes");

    // A seeded, self-healing fault plan over the store hosts.
    let plan_len = Duration::from_millis(1500);
    let config = FaultPlanConfig::new(plan_len, store_hosts.map(HostId::from).to_vec());
    let plan = FaultPlan::generate(seed, &config);
    println!("\nfault plan (seed {seed}, replayable):");
    for ev in plan.events() {
        println!("  t+{:>6.0?}  {:?}", ev.at, ev.kind);
    }

    // Writes ride through the chaos; only acknowledged ones are promised.
    let runner = plan.spawn(&net);
    let mut store = StoreClient::new(net.clone(), "ctrl", me, cluster.addrs.clone());
    let mut acked = Vec::new();
    let start = Instant::now();
    let mut n = 0u32;
    while start.elapsed() < plan_len {
        let key = format!("k{n}");
        if store.put("demo", &key, format!("v{n}").as_bytes()).is_ok() {
            acked.push(key);
        }
        n += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    runner.join();
    println!(
        "\nplan done: {}/{} writes acknowledged mid-chaos",
        acked.len(),
        n
    );

    // Every replica back in the ASD, every acked write still readable.
    let mut asd = AsdClient::connect(&net, &"ctrl".into(), fw.asd_addr.clone(), &me).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let all_back = (1..=3).all(|i| asd.find(&format!("store_{i}")).ok().flatten().is_some());
        let all_readable = acked.iter().all(|k| store.get("demo", k).is_ok());
        if all_back && all_readable {
            break;
        }
        assert!(Instant::now() < deadline, "recovery deadline blown");
        std::thread::sleep(Duration::from_millis(100));
    }
    let recovered_in = start.elapsed() - plan_len;
    println!("recovered {recovered_in:.0?} after heal: all replicas re-registered, all acked writes intact");

    let mut sup =
        ServiceClient::connect(&net, &"ctrl".into(), supervisor.addr().clone(), &me).unwrap();
    let stats = sup.call(&CmdLine::new("superviseStats")).unwrap();
    println!(
        "supervisor: {} restart(s), {} escalation(s)",
        stats.get_int("restarts").unwrap_or(0),
        stats.get_int("escalations").unwrap_or(0)
    );

    supervisor.shutdown();
    for (handle, _) in cluster.replicas {
        handle.crash();
    }
    fw.shutdown();
}
