//! The device-control surface of Fig. 2, rendered textually: the
//! hierarchical tree of rooms and ACE services on the left of the GUI, and
//! the per-device parameter controls on the right — driven entirely through
//! the Room Database and ASD, exactly as the paper's GUI was.
//!
//! ```sh
//! cargo run --example device_control
//! ```

use ace_core::prelude::*;
use ace_directory::{AsdClient, RoomDbClient};
use ace_env::{AceEnvironment, EnvConfig};

fn main() {
    let ace = AceEnvironment::build(EnvConfig::default()).expect("environment");

    // ── Left pane: services listed "in a hierarchical tree fashion based
    //    on their location within ACE" ───────────────────────────────────
    let mut roomdb = RoomDbClient::connect(
        &ace.net,
        &"core".into(),
        ace.fw.roomdb_addr.clone(),
        &ace.admin,
    )
    .unwrap();
    let mut asd = AsdClient::connect(
        &ace.net,
        &"core".into(),
        ace.fw.asd_addr.clone(),
        &ace.admin,
    )
    .unwrap();

    println!("ACE Control — service tree");
    for room in roomdb.list_rooms().unwrap() {
        let info = roomdb.room_info(&room).unwrap();
        println!("▸ {room} (building {})", info.building);
        let mut placements = roomdb.room_services(&room).unwrap();
        placements.sort_by(|a, b| a.service.cmp(&b.service));
        for p in placements {
            // Class comes from the directory entry.
            let class = asd
                .find(&p.service)
                .ok()
                .flatten()
                .map(|e| e.class)
                .unwrap_or_else(|| "?".into());
            println!("    • {:<16} {:<40} {}", p.service, class, p.addr);
        }
    }

    // ── Right pane: select the PTZ camera, show its controls, drive it ──
    let camera_entry = asd
        .lookup(None, Some("PTZCamera"), Some("hawk"))
        .unwrap()
        .into_iter()
        .next()
        .expect("camera in hawk");
    println!("\nselected: {} ({})", camera_entry.name, camera_entry.class);

    let mut camera = ServiceClient::connect(
        &ace.net,
        &"podium".into(),
        camera_entry.addr.clone(),
        &ace.admin,
    )
    .unwrap();

    // `describe` is the GUI's source for the parameter panel.
    let desc = camera.call(&CmdLine::new("describe")).unwrap();
    let cmds: Vec<&str> = desc
        .get_vector("cmds")
        .unwrap()
        .iter()
        .filter_map(|s| s.as_text())
        .collect();
    println!("controls: {}", cmds.join(", "));

    // Drive the controls like the Fig. 2 sliders/buttons.
    camera.call_ok(&CmdLine::new("ptzOn")).unwrap();
    for (x, y, zoom) in [(10.0, 5.0, 1.0), (45.0, -8.0, 3.0), (-30.0, 12.0, 2.0)] {
        let moved = camera
            .call(
                &CmdLine::new("ptzMove")
                    .arg("x", x)
                    .arg("y", y)
                    .arg("zoom", zoom),
            )
            .unwrap();
        println!(
            "ptzMove → pan={:>6.1}° tilt={:>6.1}° zoom={:>4.1}x",
            moved.get_f64("x").unwrap(),
            moved.get_f64("y").unwrap(),
            moved.get_f64("zoom").unwrap()
        );
    }
    let status = camera.call(&CmdLine::new("ptzStatus")).unwrap();
    println!(
        "camera status: model={} moves={} powered={}",
        status.get_text("model").unwrap(),
        status.get_int("moves").unwrap(),
        status.get_bool("powered").unwrap()
    );

    ace.shutdown();
}
