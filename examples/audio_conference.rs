//! The Fig. 15 audio-conferencing graph: capture → mixing → echo
//! cancellation → distribution → recording, plus the text-to-speech /
//! speech-to-command loop — assembled purely by wiring ACE media daemons
//! together with `addSink`, the paper's building-block composition.
//!
//! ```sh
//! cargo run --example audio_conference
//! ```

use ace_core::prelude::*;
use ace_core::protocol::hex_encode;
use ace_directory::bootstrap;
use ace_media::dsp;
use ace_media::{AudioMixer, AudioSink, Distribution, EchoCancel, SpeechToCommand, TextToSpeech};
use ace_security::keys::KeyPair;
use std::time::Duration;

const FRAME: usize = 160;
const FRAMES: usize = 16;
const DELAY: usize = 40;

fn main() {
    let net = SimNet::new();
    net.add_host("core");
    net.add_host("hawk_av");
    let fw = bootstrap(&net, "core", Duration::from_secs(30)).expect("framework");
    let me = KeyPair::generate(&mut rand::thread_rng());

    let mut daemons = Vec::new();
    let mut spawn = |name: &str, b: Box<dyn ace_core::ServiceBehavior>, port: u16| -> Addr {
        let d = Daemon::spawn(
            &net,
            fw.service_config(name, "Service.Media", "hawk", "hawk_av", port),
            b,
        )
        .expect("spawn media daemon");
        let addr = d.addr().clone();
        daemons.push(d);
        addr
    };

    // The Fig. 15 nodes for the local room.
    let recorder = spawn("recorder", Box::new(AudioSink::new()), 6000);
    let speaker = spawn("speaker", Box::new(AudioSink::new()), 6001);
    let echo = spawn("echo_cancel", Box::new(EchoCancel::new(DELAY)), 6002);
    let mic_mixer = spawn("mic_mixer", Box::new(AudioMixer::new("mic")), 6003);
    let dist = spawn("distribution", Box::new(Distribution::new()), 6004);
    let stc = spawn("speech_to_command", Box::new(SpeechToCommand::new()), 6005);
    let tts = spawn("text_to_speech", Box::new(TextToSpeech::new()), 6006);

    let client =
        |addr: &Addr| ServiceClient::connect(&net, &"core".into(), addr.clone(), &me).unwrap();
    let add_sink = |c: &mut ServiceClient, sink: &Addr| {
        c.call_ok(
            &CmdLine::new("addSink")
                .arg("host", sink.host.as_str())
                .arg("port", sink.port),
        )
        .unwrap()
    };

    // Wire: mic mixer → echo canceller → distribution → recorder.
    let mut mixer = client(&mic_mixer);
    mixer
        .call_ok(&CmdLine::new("addInput").arg("stream", "voice"))
        .unwrap();
    mixer
        .call_ok(&CmdLine::new("addInput").arg("stream", "echopath"))
        .unwrap();
    add_sink(&mut mixer, &echo);
    let mut echo_c = client(&echo);
    add_sink(&mut echo_c, &dist);
    let mut dist_c = client(&dist);
    add_sink(&mut dist_c, &recorder);
    // TTS feeds the speech-to-command interpreter.
    let mut tts_c = client(&tts);
    add_sink(&mut tts_c, &stc);
    println!("audio graph wired: mic_mixer → echo_cancel → distribution → recorder");

    // Signals: the local speaker (700 Hz) and a far-end site (1900 Hz)
    // whose audio plays in the room and leaks into the microphone.
    let voice = dsp::sine(700.0, 0.3, FRAME * FRAMES, 0.0);
    let far_end = dsp::sine(1900.0, 0.4, FRAME * FRAMES, 1.0);
    let echoed = dsp::delay(&far_end, DELAY);

    let push = |c: &mut ServiceClient, cmd: &str, stream: &str, seq: usize, s: &[i16]| {
        c.call(
            &CmdLine::new(cmd)
                .arg("stream", stream)
                .arg("seq", seq as i64)
                .arg("data", hex_encode(&dsp::samples_to_bytes(s))),
        )
        .unwrap();
    };

    let mut speaker_c = client(&speaker);
    for seq in 0..FRAMES {
        let range = seq * FRAME..(seq + 1) * FRAME;
        push(
            &mut speaker_c,
            "push",
            "fromRemote",
            seq,
            &far_end[range.clone()],
        );
        push(
            &mut echo_c,
            "pushRef",
            "fromRemote",
            seq,
            &far_end[range.clone()],
        );
        push(&mut mixer, "push", "voice", seq, &voice[range.clone()]);
        push(&mut mixer, "push", "echopath", seq, &echoed[range]);
    }

    // Measure the cancellation at the recorder.
    let mut rec = client(&recorder);
    let p = |c: &mut ServiceClient, freq: f64| {
        c.call(&CmdLine::new("sinkPower").arg("freq", freq))
            .unwrap()
            .get_f64("power")
            .unwrap()
    };
    let voice_power = p(&mut rec, 700.0);
    let residual = p(&mut rec, 1900.0);
    let speaker_power = p(&mut speaker_c, 1900.0);
    println!("\necho cancellation (what the far side would hear):");
    println!("  local voice power   (700 Hz): {voice_power:>10.4}");
    println!("  far-end residual   (1900 Hz): {residual:>10.6}");
    println!("  speaker level      (1900 Hz): {speaker_power:>10.4}");
    println!(
        "  suppression: {:.0}× (paper: echo cancellation keeps the stream free of feedback)",
        speaker_power / residual.max(1e-12)
    );

    // Voice commanding: TTS modulates a command, STC demodulates and
    // recognizes it.
    println!("\nvoice command loop:");
    for text in ["ptzMove x=10 y=-3;", "projOn;", "not a command at all"] {
        tts_c
            .call(&CmdLine::new("say").arg("text", Value::Str(text.into())))
            .unwrap();
        let stats = client(&stc).call(&CmdLine::new("stcStats")).unwrap();
        println!(
            "  said {text:?} → recognized={} rejected={}",
            stats.get_int("recognized").unwrap(),
            stats.get_int("rejected").unwrap()
        );
    }

    for d in daemons.into_iter().rev() {
        d.shutdown();
    }
    fw.shutdown();
}
