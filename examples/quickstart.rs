//! Quickstart: bring up the ACE framework tier, implement a service daemon,
//! discover it through the ACE Service Directory, and command it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ace_core::prelude::*;
use ace_directory::{bootstrap, AsdClient};
use ace_security::keys::KeyPair;
use std::time::Duration;

/// A minimal ACE service: a lamp that can be switched and dimmed.
struct Lamp {
    on: bool,
    brightness: f64,
}

impl ServiceBehavior for Lamp {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(CmdSpec::new("lampOn", "switch the lamp on"))
            .with(CmdSpec::new("lampOff", "switch the lamp off"))
            .with(CmdSpec::new("lampDim", "set the brightness").required(
                "level",
                ArgType::Float,
                "brightness in [0, 1]",
            ))
            .with(CmdSpec::new("lampStatus", "current state"))
    }

    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "lampOn" => {
                self.on = true;
                Reply::ok()
            }
            "lampOff" => {
                self.on = false;
                Reply::ok()
            }
            "lampDim" => {
                if !self.on {
                    return Reply::err(ErrorCode::BadState, "lamp is off");
                }
                self.brightness = cmd.get_f64("level").expect("validated").clamp(0.0, 1.0);
                Reply::ok()
            }
            "lampStatus" => {
                Reply::ok_with(|c| c.arg("on", self.on).arg("brightness", self.brightness))
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted `{other}`")),
        }
    }
}

fn main() {
    // The simulated building network with two machines.
    let net = SimNet::new();
    net.add_host("core");
    net.add_host("office");

    // Fig. 9's framework tier: ASD + Room Database + Network Logger.
    let fw = bootstrap(&net, "core", Duration::from_secs(30)).expect("framework");
    println!("framework up: ASD at {}", fw.asd_addr);

    // Spawn the lamp as a full ACE daemon: it registers with the Room DB,
    // the ASD (getting a lease), and the logger automatically.
    let lamp = Daemon::spawn(
        &net,
        fw.service_config(
            "desklamp",
            "Service.Device.Lamp",
            "office101",
            "office",
            4000,
        ),
        Box::new(Lamp {
            on: false,
            brightness: 1.0,
        }),
    )
    .expect("lamp daemon");
    println!("lamp daemon running at {}", lamp.addr());

    // A client: discover by class through the ASD (Fig. 7), then command
    // over the encrypted, authenticated link.
    let me = KeyPair::generate(&mut rand::thread_rng());
    let mut asd = AsdClient::connect(&net, &"core".into(), fw.asd_addr.clone(), &me).unwrap();
    let entry = asd
        .lookup(None, Some("Lamp"), None)
        .unwrap()
        .into_iter()
        .next()
        .expect("lamp discovered");
    println!(
        "discovered `{}` in room {} at {}",
        entry.name, entry.room, entry.addr
    );

    let mut client = ServiceClient::connect(&net, &"core".into(), entry.addr, &me).unwrap();
    client.call_ok(&CmdLine::new("lampOn")).unwrap();
    client
        .call_ok(&CmdLine::new("lampDim").arg("level", 0.4))
        .unwrap();
    let status = client.call(&CmdLine::new("lampStatus")).unwrap();
    println!(
        "lamp status: on={} brightness={}",
        status.get_bool("on").unwrap(),
        status.get_f64("brightness").unwrap()
    );

    // Wire bytes: every command traveled as an encrypted ACE command string.
    let m = net.metrics().snapshot();
    println!(
        "traffic: {} connections, {} frames, {} bytes",
        m.connections, m.frames, m.frame_bytes
    );

    lamp.shutdown();
    fw.shutdown();
    println!("clean shutdown — done.");
}
