//! Robust applications end-to-end: a stateful service checkpoints into the
//! three-replica persistent store, crashes, is detected via ASD lease
//! expiry, relaunched by the watcher, and resumes with its exact pre-crash
//! state — the §5.3/§6/§9 story (experiment E19's subject).
//!
//! ```sh
//! cargo run --example robust_recovery
//! ```

use ace_apps::{wire_watcher, AppClass, RobustCounter, WatchSpec, Watcher};
use ace_core::prelude::*;
use ace_directory::bootstrap;
use ace_security::keys::KeyPair;
use ace_store::spawn_store_cluster;
use std::time::{Duration, Instant};

fn main() {
    let net = SimNet::new();
    for h in ["core", "app", "s1", "s2", "s3"] {
        net.add_host(h);
    }
    // Short leases so failure detection is fast (the paper's knob for how
    // quickly "daemons that become inactive … are automatically removed").
    let lease = Duration::from_millis(400);
    let fw = bootstrap(&net, "core", lease).expect("framework");
    let cluster = spawn_store_cluster(&net, &fw, &["s1", "s2", "s3"], Duration::from_millis(100))
        .expect("store cluster");
    let me = KeyPair::generate(&mut rand::thread_rng());
    println!("store cluster up: {:?}", cluster.addrs);

    // The robust service and its relaunch recipe.
    let replicas = cluster.addrs.clone();
    let cfg = fw
        .service_config("meeting_notes", "Service.Counter", "hawk", "app", 5900)
        .with_lease_renew(Duration::from_millis(100));
    let spawn_notes = {
        let cfg = cfg.clone();
        let replicas = replicas.clone();
        move |net: &SimNet| {
            Daemon::spawn(
                net,
                cfg.clone(),
                Box::new(RobustCounter::new(replicas.clone())),
            )
        }
    };
    let first = spawn_notes(&net).expect("robust service");
    let addr = first.addr().clone();

    let watcher = Daemon::spawn(
        &net,
        fw.service_config("watcher", "Service.Watcher", "machineroom", "core", 5901),
        Box::new(Watcher::new(vec![WatchSpec::new(
            "meeting_notes",
            AppClass::Robust,
            Box::new(spawn_notes),
        )])),
    )
    .expect("watcher");
    wire_watcher(&net, &watcher, &fw.asd_addr, &me).expect("watcher wiring");
    println!("watcher armed on ASD `serviceExpired` events");

    // Accumulate state (each increment checkpoints to the store).
    let mut client = ServiceClient::connect(&net, &"core".into(), addr.clone(), &me).unwrap();
    for _ in 0..42 {
        client.call_ok(&CmdLine::new("increment")).unwrap();
    }
    let value = client
        .call(&CmdLine::new("read"))
        .unwrap()
        .get_int("value")
        .unwrap();
    println!("state built up: count = {value} (checkpointed per write)");
    drop(client);

    // Crash without deregistering.
    println!("\n*** crashing the service (no deregistration) ***");
    let crash_at = Instant::now();
    first.crash();

    // Wait for detection + relaunch + recovery.
    let recovered = loop {
        if let Ok(mut c) = ServiceClient::connect(&net, &"core".into(), addr.clone(), &me) {
            if let Ok(r) = c.call(&CmdLine::new("read")) {
                break r;
            }
        }
        assert!(
            crash_at.elapsed() < Duration::from_secs(30),
            "service never came back"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    let mttr = crash_at.elapsed();
    println!("service back after {mttr:?} (lease {lease:?} + relaunch)");
    println!(
        "recovered state: count = {} (recovered flag = {})",
        recovered.get_int("value").unwrap(),
        recovered.get_bool("recovered").unwrap()
    );
    assert_eq!(recovered.get_int("value"), Some(42));

    let mut w = ServiceClient::connect(&net, &"core".into(), watcher.addr().clone(), &me).unwrap();
    let stats = w.call(&CmdLine::new("watcherStats")).unwrap();
    println!(
        "watcher: {} restart(s), {} ignored expiries",
        stats.get_int("restarts").unwrap(),
        stats.get_int("ignored").unwrap()
    );

    watcher.shutdown();
    cluster.shutdown();
    fw.shutdown();
}
