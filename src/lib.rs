//! Umbrella crate: re-exports the full ACE stack (see README).
pub use ace_apps as apps;
pub use ace_baselines as baselines;
pub use ace_core as core;
pub use ace_directory as directory;
pub use ace_env as env;
pub use ace_identity as identity;
pub use ace_lang as lang;
pub use ace_media as media;
pub use ace_net as net;
pub use ace_resources as resources;
pub use ace_security as security;
pub use ace_store as store;
pub use ace_workspace as workspace;
