//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! MPMC channels with cloneable senders *and* receivers, blocking and
//! timed receives, and disconnection semantics matching crossbeam's:
//! `recv` drains remaining messages after all senders drop and only then
//! reports disconnection; `send` fails once every receiver is gone.
//! Built on `Mutex` + `Condvar` — slower than crossbeam proper but
//! behaviorally equivalent for this workspace's daemon message queues.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Sender::try_send`].
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "Full(..)"),
            TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => write!(f, "channel is disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => write!(f, "channel is disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// A channel of unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// A channel holding at most `cap` messages (`cap == 0` behaves as 1; the
/// workspace never uses rendezvous channels).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

/// The sending half; cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Block until the message is enqueued (or every receiver is gone).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.inner.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .inner
                        .not_full
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue without blocking: a full bounded channel refuses the
    /// message instead of waiting for space.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.inner.capacity {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake blocked receivers so they observe disconnection.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sender")
    }
}

/// The receiving half; cloneable.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Receiver<T> {
    fn pop(&self, state: &mut State<T>) -> Option<T> {
        let value = state.queue.pop_front();
        if value.is_some() {
            self.inner.not_full.notify_one();
        }
        value
    }

    /// Block until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = self.pop(&mut state) {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = self.pop(&mut state) {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .inner
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = self.pop(&mut state) {
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Is the queue empty right now?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator over messages until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            // Wake blocked senders so they observe disconnection.
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Receiver")
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }

    #[test]
    fn disconnection_drains_before_erroring() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_send_refuses_when_full_or_disconnected() {
        let (tx, rx) = bounded(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }
}
