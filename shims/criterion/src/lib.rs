//! Offline stand-in for the `criterion` crate.
//!
//! A minimal benchmark harness exposing the API subset the workspace's
//! benches use.  It times each routine over a fixed sample budget and
//! prints mean per-iteration time — no statistical analysis, plots, or
//! baseline comparisons.  Numbers are indicative, not criterion-grade.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Accepted as a benchmark name: `&str` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Throughput annotation (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Batch sizing for `iter_batched` (advisory only here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    measurement_time: Duration,
    /// (total time, iterations) of the measured run.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine` repeatedly within the measurement budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and calibration: find an iteration count that fills the
        // measurement window without calling Instant::now in the hot loop.
        let calib_start = Instant::now();
        black_box(routine());
        let once = calib_start.elapsed().max(Duration::from_nanos(1));
        let target = self.measurement_time;
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), iters));
    }

    /// Time `routine` on fresh inputs from `setup` (setup excluded from
    /// timing).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let calib_input = setup();
        let calib_start = Instant::now();
        black_box(routine(calib_input));
        let once = calib_start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn report(group: Option<&str>, id: &str, result: Option<(Duration, u64)>) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match result {
        Some((total, iters)) if iters > 0 => {
            let per_iter = total.as_nanos() as f64 / iters as f64;
            let (value, unit) = if per_iter >= 1e9 {
                (per_iter / 1e9, "s")
            } else if per_iter >= 1e6 {
                (per_iter / 1e6, "ms")
            } else if per_iter >= 1e3 {
                (per_iter / 1e3, "µs")
            } else {
                (per_iter, "ns")
            };
            println!("bench {full:<50} {value:>10.3} {unit}/iter  ({iters} iters)");
        }
        _ => println!("bench {full:<50} (no measurement)"),
    }
}

/// The top-level harness.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            // Small budget: these benches run in CI smoke mode, not for
            // statistically rigorous numbers.
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        // Scale down: the shim runs one sample, not `sample_size` of them.
        self.measurement_time = (t / 10).max(Duration::from_millis(50));
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        report(None, &id.into_id(), bencher.result);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = (t / 10).max(Duration::from_millis(50));
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            measurement_time: self.criterion.measurement_time,
            result: None,
        };
        f(&mut bencher);
        report(Some(&self.name), &id.into_id(), bencher.result);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            measurement_time: self.criterion.measurement_time,
            result: None,
        };
        f(&mut bencher, input);
        report(Some(&self.name), &id.into_id(), bencher.result);
        self
    }

    pub fn finish(self) {}
}

/// `criterion_group!` in both plain and `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!`: run every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
