//! String strategies from regex-like patterns.
//!
//! In proptest, a `&str` is itself a strategy: it generates strings
//! matching the pattern.  This shim supports the subset the workspace's
//! tests use — sequences of character classes (`[A-Za-z0-9_]`, with
//! ranges and literals), literal characters, `\PC` (any non-control
//! character), and `{m,n}` / `{n}` / `*` / `+` / `?` quantifiers.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Upper bound substituted for `*`/`+` (generation must terminate).
const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Atom {
    /// Explicit set of candidate characters.
    Class(Vec<char>),
    /// Any printable (non-control) character, `\PC`.
    Printable,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32, // inclusive
}

fn parse_class(body: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    let mut pending: Option<char> = None;
    while let Some(c) = body.next() {
        if c == ']' {
            break;
        }
        if c == '-' {
            // `a-z` range when between two members; literal `-` otherwise.
            if let (Some(lo), Some(&hi)) = (pending, body.peek()) {
                if hi != ']' {
                    body.next();
                    set.pop();
                    for ch in lo..=hi {
                        set.push(ch);
                    }
                    pending = None;
                    continue;
                }
            }
            set.push('-');
            pending = Some('-');
            continue;
        }
        set.push(c);
        pending = Some(c);
    }
    set
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for q in chars.by_ref() {
                if q == '}' {
                    break;
                }
                spec.push(q);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(UNBOUNDED_CAP),
                ),
                None => {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_CAP)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn compile(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => match chars.next() {
                Some('P') => {
                    let _ = chars.next(); // the category letter, e.g. `C`
                    Atom::Printable
                }
                Some('n') => Atom::Class(vec!['\n']),
                Some('t') => Atom::Class(vec!['\t']),
                Some(other) => Atom::Class(vec![other]),
                None => break,
            },
            literal => Atom::Class(vec![literal]),
        };
        let (min, max) = parse_quantifier(&mut chars);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Class(set) => {
            assert!(!set.is_empty(), "empty character class");
            set[rng.below(set.len() as u64) as usize]
        }
        Atom::Printable => loop {
            // Mostly ASCII, occasionally wider unicode — mirrors proptest's
            // bias toward common characters.
            let candidate = if rng.below(4) > 0 {
                char::from_u32(0x20 + rng.below(0x5f) as u32)
            } else {
                char::from_u32(rng.below(0x2500) as u32)
            };
            if let Some(c) = candidate {
                if !c.is_control() {
                    return c;
                }
            }
        },
    }
}

/// A `&str` used as a strategy generates matching strings.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = compile(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_pattern_generates_words() {
        let mut rng = TestRng::seed_from_u64(42);
        for _ in 0..200 {
            let s = "[A-Za-z_][A-Za-z0-9_]{0,11}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 12, "{s:?}");
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "{s:?}");
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'), "{s:?}");
        }
    }

    #[test]
    fn printable_range_pattern_stays_printable() {
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = "[ -~]{0,24}".generate(&mut rng);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn class_with_literal_dash_and_exclusion() {
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..200 {
            let s = "[ -!#-~]{1,8}".generate(&mut rng);
            assert!(
                s.chars().all(|c| c != '"' && (' '..='~').contains(&c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn pc_pattern_is_non_control() {
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = "\\PC{0,64}".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
