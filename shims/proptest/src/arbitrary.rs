//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix edge values in: proptest biases toward boundaries too,
                // and the workspace's codec/parser tests rely on hitting
                // extremes like i16::MIN within a few hundred cases.
                match rng.below(16) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => -1.0,
            4 => f64::INFINITY,
            5 => f64::NEG_INFINITY,
            6 => f64::NAN,
            // Mostly "reasonable" magnitudes, sometimes raw bit soup.
            7 | 8 => f64::from_bits(rng.next_u64()),
            _ => (rng.unit_f64() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        match rng.below(4) {
            0 => char::from_u32(rng.below(0x80) as u32).unwrap_or('a'),
            _ => loop {
                if let Some(c) = char::from_u32(rng.below(0x11000) as u32) {
                    break c;
                }
            },
        }
    }
}

/// The strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}
