//! The case runner and its deterministic RNG.

use std::fmt;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
    /// Give up after this many consecutive `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard and regenerate.
    Reject(String),
    /// `prop_assert*` failed: the property is false.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 generator used for value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn base_seed(test_name: &str) -> u64 {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = seed.trim().parse::<u64>() {
            return n;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Drive one property through `config.cases` successful cases.
pub fn run(test_name: &str, config: &Config, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let seed = base_seed(test_name);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        let case_seed = seed ^ attempt.wrapping_mul(0xA24BAED4963EE407);
        attempt += 1;
        let mut rng = TestRng::seed_from_u64(case_seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest `{test_name}`: too many prop_assume rejections \
                         ({rejected}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{test_name}` failed after {passed} passing case(s) \
                     (case seed {case_seed:#x}, set PROPTEST_SEED to replay):\n{msg}"
                );
            }
        }
    }
}
