//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// How many times `prop_filter` retries before giving up on a case.
const FILTER_RETRIES: usize = 256;

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }

    /// Recursive strategies: at each of `depth` levels, flip between the
    /// shallower strategy and one more application of `recurse`.
    fn prop_recursive<R>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: impl Fn(BoxedStrategy<Self::Value>) -> R,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let shallow = SharedStrategy(std::rc::Rc::new(strat));
            let deeper = recurse(shallow.clone().boxed());
            strat = Union::new(vec![shallow.boxed(), deeper.boxed()]).boxed();
        }
        strat
    }
}

/// Clonable handle over a boxed strategy, so `prop_recursive` can reuse the
/// shallower levels in both union arms.
struct SharedStrategy<T>(std::rc::Rc<BoxedStrategy<T>>);

impl<T> Clone for SharedStrategy<T> {
    fn clone(&self) -> Self {
        SharedStrategy(self.0.clone())
    }
}

impl<T> Strategy for SharedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategies are usable by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` combinator: regenerate until the predicate holds.
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({}) rejected {FILTER_RETRIES} candidates in a row",
            self.reason
        );
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Uniform choice among boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// --- Range strategies -----------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// --- Tuple strategies -----------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
    A, B, C, D, E, F
));
