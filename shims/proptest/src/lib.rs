//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_filter`/
//! `prop_flat_map`/`boxed`, integer-range and regex-literal strategies,
//! `any::<T>()`, `prop::collection::vec`, tuple strategies, `Just`,
//! `prop_oneof!`, and the `proptest!`/`prop_assert*` macros.
//!
//! Differences from proptest proper: generation is seeded
//! deterministically per test case (set `PROPTEST_SEED` to vary it), and
//! failing inputs are reported but **not shrunk** — a failing case prints
//! its values and the case seed instead of a minimized example.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult, TestRng};

/// The `proptest::prelude::prop` module: grouped re-exports.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
    pub use crate::string;
    pub mod num {
        // Range strategies are implemented directly on `Range<T>`.
    }
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{
        Config as ProptestConfig, TestCaseError, TestCaseResult, TestRng,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// `prop_assert!(cond, args...)`: fail the current case without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)`: equality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), format!($($fmt)*), lhs, rhs
        );
    }};
}

/// `prop_assert_ne!(a, b)`: inequality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// `prop_assume!(cond)`: discard the current case when the assumption
/// fails (counted separately from failures).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// `prop_oneof![s1, s2, ...]`: uniform choice among strategies of one
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The `proptest! { ... }` test-definition macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($config) $($rest)*);
    };
    (@body ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::test_runner::run(stringify!($name), &config, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut *__rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::ProptestConfig::default()) $($rest)*);
    };
}
