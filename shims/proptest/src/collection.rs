//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted size arguments for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
