//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny subset of `parking_lot` it actually uses: [`Mutex`] and
//! [`RwLock`] with non-poisoning `lock`/`read`/`write`.  Both wrap the std
//! primitives and recover from poisoning by taking the inner guard — the
//! semantic difference from `parking_lot` proper (no poisoning at all) is
//! unobservable to callers that never inspect poison state.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
