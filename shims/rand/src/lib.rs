//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the `rand` 0.8 API this workspace uses:
//! [`thread_rng`], [`random`], the [`Rng`] trait with `gen_range`/`gen`,
//! and [`seq::SliceRandom::choose`]/`shuffle`.  The generator is
//! splitmix64 — statistically fine for simulations, keys of a *simulated*
//! cipher, and tie-breaking; not cryptographically secure (neither is the
//! use the workspace makes of it).

use std::cell::Cell;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`] / [`random`].
pub trait Standard: Sized {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// The `rand` RNG trait (subset).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

thread_local! {
    static THREAD_RNG_STATE: Cell<u64> = Cell::new(initial_seed());
}

fn initial_seed() -> u64 {
    use std::hash::{BuildHasher, Hash, Hasher};
    // RandomState carries the process-wide random keys; mixing in the
    // thread id decorrelates threads.
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    std::thread::current().id().hash(&mut hasher);
    std::time::SystemTime::UNIX_EPOCH
        .elapsed()
        .map(|d| d.subsec_nanos())
        .unwrap_or(0)
        .hash(&mut hasher);
    hasher.finish() | 1
}

/// Handle to the per-thread generator.
#[derive(Debug, Clone, Copy)]
pub struct ThreadRng;

impl Rng for ThreadRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        THREAD_RNG_STATE.with(|cell| {
            let mut s = cell.get();
            let out = splitmix64(&mut s);
            cell.set(s);
            out
        })
    }
}

/// The per-thread RNG.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

/// One value from the thread RNG.
pub fn random<T: Standard>() -> T {
    thread_rng().gen()
}

/// A deterministic, seedable generator (also usable where `rand::rngs`
/// types would be).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

pub mod rngs {
    pub use super::{SmallRng, ThreadRng};
}

pub mod seq {
    use super::Rng;

    /// Random selection on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = thread_rng();
        for _ in 0..1000 {
            let v = rng.gen_range(2u64..100);
            assert!((2..100).contains(&v));
            let w = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&w));
        }
    }

    #[test]
    fn random_f64_is_unit_interval() {
        for _ in 0..1000 {
            let f = random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_and_shuffle_cover_slice() {
        use seq::SliceRandom;
        let mut v = vec![1, 2, 3, 4, 5];
        let mut rng = thread_rng();
        assert!(v.choose(&mut rng).is_some());
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
        let empty: Vec<i32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
