//! Argument values of the ACE command language.
//!
//! The paper (§2.2) defines six value productions:
//!
//! ```text
//! <ARGVALUE> := <INTEGER> | <FLOAT> | <WORD> | <STRING> | <VECTOR> | <ARRAY>
//! ```
//!
//! A `WORD` is a contiguous run of alphanumerics and underscores, a `STRING`
//! is either a word or a quoted run of printable characters, a `VECTOR` is a
//! brace-enclosed homogeneous list of scalars, and an `ARRAY` is a
//! brace-enclosed list of vectors.  This module is the typed, in-memory form
//! of those productions; the wire form is produced by [`Value::write_wire`]
//! and consumed by the parser in [`crate::parser`].

use std::fmt;

/// A scalar value: the leaf types of the command language.
///
/// Vectors are homogeneous lists of scalars, so scalars get their own type
/// rather than being folded into [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// `<INTEGER>` — any integer-valued number.
    Int(i64),
    /// `<FLOAT>` — any real-valued number.  Always rendered with a decimal
    /// point or exponent so it re-parses as a float.
    Float(f64),
    /// `<WORD>` — contiguous alphanumerics and underscores, written bare.
    Word(String),
    /// Quoted `<STRING>` — printable characters, written inside `"…"`.
    Str(String),
}

/// The type tag of a [`Scalar`], used for vector homogeneity checks and for
/// command semantics (argument type specifications).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    Int,
    Float,
    Word,
    Str,
}

impl Scalar {
    /// The type tag of this scalar.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            Scalar::Int(_) => ScalarType::Int,
            Scalar::Float(_) => ScalarType::Float,
            Scalar::Word(_) => ScalarType::Word,
            Scalar::Str(_) => ScalarType::Str,
        }
    }

    /// Numeric view: integers widen to `f64`, floats pass through.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int(i) => Some(*i as f64),
            Scalar::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Textual view: words and strings expose their content.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Scalar::Word(w) => Some(w),
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write_wire(&self, out: &mut String) {
        match self {
            Scalar::Int(i) => {
                out.push_str(itoa(*i).as_str());
            }
            Scalar::Float(f) => write_float(*f, out),
            Scalar::Word(w) => out.push_str(w),
            Scalar::Str(s) => {
                out.push('"');
                out.push_str(s);
                out.push('"');
            }
        }
    }
}

fn itoa(i: i64) -> String {
    i.to_string()
}

/// Render a float so that it always re-parses as a `<FLOAT>` (never as an
/// `<INTEGER>`): integral values gain a trailing `.0`.  Non-finite floats
/// are outside the grammar ("any real valued number") and degrade to the
/// words `nan`/`inf`/`neginf`.
fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str(if f.is_nan() {
            "nan"
        } else if f > 0.0 {
            "inf"
        } else {
            "neginf"
        });
        return;
    }
    let start = out.len();
    out.push_str(&format!("{f}"));
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// A full argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Word(String),
    Str(String),
    /// `<VECTOR>` — homogeneous list of scalars, e.g. `{1,2,3}`.
    Vector(Vec<Scalar>),
    /// `<ARRAY>` — list of vectors, e.g. `{{1,2},{3,4}}`.  Rows need not be
    /// equal length (the grammar places no such constraint) but every element
    /// across the whole array shares one scalar type.
    Array(Vec<Vec<Scalar>>),
}

/// The type tag of a [`Value`]; vectors and arrays carry their element type
/// when it is known (an empty vector has no element type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    Int,
    Float,
    Word,
    Str,
    Vector(Option<ScalarType>),
    Array(Option<ScalarType>),
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "integer"),
            ValueType::Float => write!(f, "float"),
            ValueType::Word => write!(f, "word"),
            ValueType::Str => write!(f, "string"),
            ValueType::Vector(Some(t)) => write!(f, "vector<{t:?}>"),
            ValueType::Vector(None) => write!(f, "vector<>"),
            ValueType::Array(Some(t)) => write!(f, "array<{t:?}>"),
            ValueType::Array(None) => write!(f, "array<>"),
        }
    }
}

impl Value {
    /// The type tag of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Word(_) => ValueType::Word,
            Value::Str(_) => ValueType::Str,
            Value::Vector(v) => ValueType::Vector(v.first().map(Scalar::scalar_type)),
            Value::Array(a) => ValueType::Array(
                a.iter()
                    .flat_map(|row| row.first())
                    .map(Scalar::scalar_type)
                    .next(),
            ),
        }
    }

    /// Integer view (exact; floats are not truncated).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: integers widen to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Textual view: both `<WORD>` and `<STRING>` expose their content, which
    /// mirrors the grammar's `STRING := WORD | "…"` subsumption.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Word(w) => Some(w),
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Vector view.
    pub fn as_vector(&self) -> Option<&[Scalar]> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Vec<Scalar>]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Append the wire representation of this value to `out`.
    pub fn write_wire(&self, out: &mut String) {
        match self {
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => write_float(*f, out),
            Value::Word(w) => out.push_str(w),
            Value::Str(s) => {
                out.push('"');
                out.push_str(s);
                out.push('"');
            }
            Value::Vector(v) => {
                out.push('{');
                for (i, s) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    s.write_wire(out);
                }
                out.push('}');
            }
            Value::Array(rows) => {
                out.push('{');
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('{');
                    for (j, s) in row.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        s.write_wire(out);
                    }
                    out.push('}');
                }
                out.push('}');
            }
        }
    }

    /// Wire representation as a fresh string.
    pub fn to_wire(&self) -> String {
        let mut s = String::new();
        self.write_wire(&mut s);
        s
    }
}

/// `true` if `s` is a valid `<WORD>`: non-empty, contiguous alphanumerics and
/// underscores.
pub fn is_word(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// `true` if `s` may appear inside a quoted `<STRING>`: printable characters
/// only, and no `"` (the grammar defines no escape sequences).
pub fn is_quotable(s: &str) -> bool {
    s.chars()
        .all(|c| c != '"' && c != '\n' && c != '\r' && !c.is_control())
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Word(if v { "true".into() } else { "false".into() })
    }
}

/// Strings convert to the tightest production that round-trips: a valid
/// `<WORD>` stays a word, anything else becomes a quoted `<STRING>`.
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        if is_word(v) {
            Value::Word(v.to_string())
        } else {
            Value::Str(v.to_string())
        }
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        if is_word(&v) {
            Value::Word(v)
        } else {
            Value::Str(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_types() {
        assert_eq!(Scalar::Int(3).scalar_type(), ScalarType::Int);
        assert_eq!(Scalar::Float(3.0).scalar_type(), ScalarType::Float);
        assert_eq!(Scalar::Word("a".into()).scalar_type(), ScalarType::Word);
        assert_eq!(Scalar::Str("a b".into()).scalar_type(), ScalarType::Str);
    }

    #[test]
    fn float_wire_keeps_decimal_point() {
        assert_eq!(Value::Float(3.0).to_wire(), "3.0");
        assert_eq!(Value::Float(-1.5).to_wire(), "-1.5");
        assert_eq!(Value::Float(0.25).to_wire(), "0.25");
    }

    #[test]
    fn int_wire() {
        assert_eq!(Value::Int(-42).to_wire(), "-42");
        assert_eq!(Value::Int(i64::MAX).to_wire(), i64::MAX.to_string());
    }

    #[test]
    fn string_wire_is_quoted() {
        assert_eq!(
            Value::Str("hello world".into()).to_wire(),
            "\"hello world\""
        );
        assert_eq!(Value::Word("hello".into()).to_wire(), "hello");
    }

    #[test]
    fn vector_wire() {
        let v = Value::Vector(vec![Scalar::Int(1), Scalar::Int(2), Scalar::Int(3)]);
        assert_eq!(v.to_wire(), "{1,2,3}");
    }

    #[test]
    fn array_wire() {
        let a = Value::Array(vec![
            vec![Scalar::Int(1), Scalar::Int(2)],
            vec![Scalar::Int(3), Scalar::Int(4)],
        ]);
        assert_eq!(a.to_wire(), "{{1,2},{3,4}}");
    }

    #[test]
    fn empty_vector_wire() {
        assert_eq!(Value::Vector(vec![]).to_wire(), "{}");
    }

    #[test]
    fn word_detection() {
        assert!(is_word("abc_123"));
        assert!(is_word("3abc"));
        assert!(!is_word(""));
        assert!(!is_word("a b"));
        assert!(!is_word("a-b"));
    }

    #[test]
    fn from_str_picks_tightest_type() {
        assert_eq!(Value::from("word_1"), Value::Word("word_1".into()));
        assert_eq!(Value::from("two words"), Value::Str("two words".into()));
    }

    #[test]
    fn typed_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Float(7.5).as_int(), None);
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Word("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Str("x y".into()).as_text(), Some("x y"));
        assert!(Value::Vector(vec![]).as_vector().is_some());
        assert!(Value::Int(1).as_vector().is_none());
    }

    #[test]
    fn value_type_of_vectors() {
        let v = Value::Vector(vec![Scalar::Word("a".into())]);
        assert_eq!(v.value_type(), ValueType::Vector(Some(ScalarType::Word)));
        assert_eq!(Value::Vector(vec![]).value_type(), ValueType::Vector(None));
    }
}
