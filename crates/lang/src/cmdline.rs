//! The `ACECmdLine` object (§2.2): the in-memory form of a command.
//!
//! "Every command that is to be issued to an ACE service is first built as an
//! ACECmdLine object.  This object is then converted into a string by the
//! issuing client/daemon and is then transmitted over the network to the
//! receiving side."  [`CmdLine::to_wire`] is that conversion;
//! [`CmdLine::parse`] (in `parser.rs`) reconstructs an exact copy on the
//! receiving side.

use crate::error::ParseError;
use crate::value::{Scalar, Value};

/// A parsed or under-construction ACE command: a command name plus an ordered
/// list of `name=value` arguments.
///
/// Argument order is preserved (it is part of the wire form), but lookup by
/// name is the primary access path.  Duplicate argument names are
/// representable here — semantics validation rejects them.
#[derive(Debug, Clone, PartialEq)]
pub struct CmdLine {
    name: String,
    args: Vec<(String, Value)>,
}

impl CmdLine {
    /// Start building a command.  `name` must be a valid `<WORD>`; this is
    /// asserted in debug builds and enforced at parse/validate time.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        debug_assert!(crate::value::is_word(&name), "command name must be a word");
        CmdLine {
            name,
            args: Vec::new(),
        }
    }

    /// Builder-style argument append.
    pub fn arg(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.push_arg(name, value);
        self
    }

    /// In-place argument append.
    pub fn push_arg(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        let name = name.into();
        debug_assert!(crate::value::is_word(&name), "argument name must be a word");
        self.args.push((name, value.into()));
    }

    /// Replace an argument's value, or append it if absent.
    pub fn set_arg(&mut self, name: &str, value: impl Into<Value>) {
        if let Some(slot) = self.args.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value.into();
        } else {
            self.args.push((name.to_string(), value.into()));
        }
    }

    /// Stamp (or tighten) the protocol-level `deadline` header: the
    /// remaining milliseconds the sender will wait for the reply.  Values
    /// clamp at zero so an already-expired budget still travels as a valid
    /// integer and is shed server-side.
    pub fn set_deadline_ms(&mut self, ms: i64) {
        self.set_arg(crate::semantics::DEADLINE_ARG, ms.max(0));
    }

    /// The protocol-level `deadline` header, if stamped.
    pub fn deadline_ms(&self) -> Option<i64> {
        self.get_int(crate::semantics::DEADLINE_ARG)
    }

    /// The command name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All arguments in wire order.
    pub fn args(&self) -> &[(String, Value)] {
        &self.args
    }

    /// Number of arguments.
    pub fn arg_count(&self) -> usize {
        self.args.len()
    }

    /// Look up an argument by name (first occurrence).
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.args.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Integer argument accessor.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_int)
    }

    /// Numeric argument accessor (integers widen).
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_f64)
    }

    /// Textual argument accessor (words and strings).
    pub fn get_text(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_text)
    }

    /// Vector argument accessor.
    pub fn get_vector(&self, name: &str) -> Option<&[Scalar]> {
        self.get(name).and_then(Value::as_vector)
    }

    /// Array argument accessor.
    pub fn get_array(&self, name: &str) -> Option<&[Vec<Scalar>]> {
        self.get(name).and_then(Value::as_array)
    }

    /// Boolean accessor: the words `true`/`false` (as produced by
    /// `Value::from(bool)`).
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        match self.get_text(name) {
            Some("true") => Some(true),
            Some("false") => Some(false),
            _ => None,
        }
    }

    /// Convert to the wire string, terminated with `;` per the grammar:
    /// `<CMND> := <CMNDNAME><space>[<ARGLIST>];`
    pub fn to_wire(&self) -> String {
        // Preallocate roughly: name + per-arg "name=value " with small values.
        let mut out = String::with_capacity(self.name.len() + 16 * self.args.len() + 2);
        out.push_str(&self.name);
        for (name, value) in &self.args {
            out.push(' ');
            out.push_str(name);
            out.push('=');
            value.write_wire(&mut out);
        }
        out.push(';');
        out
    }

    /// Parse a single wire command.  Convenience alias for
    /// [`crate::parser::parse`].
    pub fn parse(src: &str) -> Result<CmdLine, ParseError> {
        crate::parser::parse(src)
    }
}

impl std::fmt::Display for CmdLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_wire())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_encode() {
        let cmd = CmdLine::new("ptzMove")
            .arg("x", 10)
            .arg("y", -3)
            .arg("zoom", 1.5)
            .arg("mode", "absolute");
        assert_eq!(cmd.to_wire(), "ptzMove x=10 y=-3 zoom=1.5 mode=absolute;");
    }

    #[test]
    fn no_args_encodes_bare() {
        assert_eq!(CmdLine::new("ping").to_wire(), "ping;");
    }

    #[test]
    fn accessors() {
        let cmd = CmdLine::new("c")
            .arg("i", 4)
            .arg("f", 2.5)
            .arg("w", "word")
            .arg("s", "two words")
            .arg("b", true);
        assert_eq!(cmd.get_int("i"), Some(4));
        assert_eq!(cmd.get_f64("i"), Some(4.0));
        assert_eq!(cmd.get_f64("f"), Some(2.5));
        assert_eq!(cmd.get_text("w"), Some("word"));
        assert_eq!(cmd.get_text("s"), Some("two words"));
        assert_eq!(cmd.get_bool("b"), Some(true));
        assert_eq!(cmd.get_int("missing"), None);
    }

    #[test]
    fn set_arg_replaces() {
        let mut cmd = CmdLine::new("c").arg("x", 1);
        cmd.set_arg("x", 2);
        cmd.set_arg("y", 3);
        assert_eq!(cmd.get_int("x"), Some(2));
        assert_eq!(cmd.get_int("y"), Some(3));
        assert_eq!(cmd.arg_count(), 2);
    }

    #[test]
    fn display_matches_wire() {
        let cmd = CmdLine::new("c").arg("x", 1);
        assert_eq!(format!("{cmd}"), cmd.to_wire());
    }
}
