//! # ace-lang — the ACE Service Command Language
//!
//! The common control language all ACE services share (§2.2 of the paper):
//! a Unix-flavoured `command arg=value …;` syntax with integers, floats,
//! words, strings, vectors, and arrays.  This crate provides:
//!
//! * [`Value`]/[`Scalar`] — the typed argument values,
//! * [`CmdLine`] — the `ACECmdLine` object built by clients and daemons,
//! * [`parser::parse`]/[`parser::parse_all`] — the ACE Command Parser,
//! * [`Semantics`]/[`CmdSpec`] — per-service command semantic definitions,
//!   with the inheritance mechanism that backs the service hierarchy (Fig. 6),
//! * [`Reply`]/[`ErrorCode`] — the return-command conventions.
//!
//! The design goal stated in the paper — "a very lightweight form of
//! communication … much more lightweight than utilizing something like
//! RMI" — is benchmarked against an RMI-style codec in `crates/baselines`
//! (experiment E3).
//!
//! ```
//! use ace_lang::{CmdLine, Semantics, CmdSpec, ArgType};
//!
//! let sem = Semantics::new().with(
//!     CmdSpec::new("ptzMove", "move the camera")
//!         .required("x", ArgType::Float, "pan angle")
//!         .required("y", ArgType::Float, "tilt angle"),
//! );
//!
//! let cmd = CmdLine::new("ptzMove").arg("x", 10).arg("y", -3);
//! let wire = cmd.to_wire();                 // "ptzMove x=10 y=-3;"
//! let back = CmdLine::parse(&wire).unwrap(); // exact copy on the far side
//! sem.validate(&back).unwrap();
//! assert_eq!(back, cmd);
//! ```

pub mod cmdline;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod reply;
pub mod semantics;
pub mod value;

pub use cmdline::CmdLine;
pub use error::{LangError, ParseError, ParseErrorKind, SemanticError};
pub use parser::{parse, parse_all};
pub use reply::{ErrorCode, Reply};
pub use semantics::{ArgSpec, ArgType, CmdSpec, Semantics};
pub use value::{Scalar, ScalarType, Value, ValueType};

/// Parse and validate in one step — the exact path an ACE daemon's command
/// thread runs for every incoming string.
pub fn parse_checked(src: &str, semantics: &Semantics) -> Result<CmdLine, LangError> {
    let cmd = parser::parse(src)?;
    semantics.validate(&cmd)?;
    Ok(cmd)
}
