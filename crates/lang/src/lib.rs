//! # ace-lang — the ACE Service Command Language
//!
//! The common control language all ACE services share (§2.2 of the paper):
//! a Unix-flavoured `command arg=value …;` syntax with integers, floats,
//! words, strings, vectors, and arrays.  This crate provides:
//!
//! * [`Value`]/[`Scalar`] — the typed argument values,
//! * [`CmdLine`] — the `ACECmdLine` object built by clients and daemons,
//! * [`parser::parse`]/[`parser::parse_all`] — the ACE Command Parser,
//! * [`Semantics`]/[`CmdSpec`] — per-service command semantic definitions,
//!   with the inheritance mechanism that backs the service hierarchy (Fig. 6),
//! * [`Reply`]/[`ErrorCode`] — the return-command conventions.
//!
//! The design goal stated in the paper — "a very lightweight form of
//! communication … much more lightweight than utilizing something like
//! RMI" — is benchmarked against an RMI-style codec in `crates/baselines`
//! (experiment E3).
//!
//! ```
//! use ace_lang::{CmdLine, Semantics, CmdSpec, ArgType};
//!
//! let sem = Semantics::new().with(
//!     CmdSpec::new("ptzMove", "move the camera")
//!         .required("x", ArgType::Float, "pan angle")
//!         .required("y", ArgType::Float, "tilt angle"),
//! );
//!
//! let cmd = CmdLine::new("ptzMove").arg("x", 10).arg("y", -3);
//! let wire = cmd.to_wire();                 // "ptzMove x=10 y=-3;"
//! let back = CmdLine::parse(&wire).unwrap(); // exact copy on the far side
//! sem.validate(&back).unwrap();
//! assert_eq!(back, cmd);
//! ```

pub mod cmdline;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod reply;
pub mod semantics;
pub mod value;

pub use cmdline::CmdLine;
pub use error::{LangError, ParseError, ParseErrorKind, SemanticError};
pub use parser::{parse, parse_all};
pub use reply::{ErrorCode, Reply};
pub use semantics::{ArgSpec, ArgType, CmdSpec, Semantics, DEADLINE_ARG};
pub use value::{Scalar, ScalarType, Value, ValueType};

/// Parse and validate in one step — the exact path an ACE daemon's command
/// thread runs for every incoming string.
pub fn parse_checked(src: &str, semantics: &Semantics) -> Result<CmdLine, LangError> {
    let cmd = parser::parse(src)?;
    semantics.validate(&cmd)?;
    Ok(cmd)
}

/// Fetch a required text argument (word or string) from a [`CmdLine`], or
/// return an [`ErrorCode::Semantics`] error [`Reply`] from the enclosing
/// handler.  Semantic validation normally guarantees presence and type, but
/// handlers must stay panic-free even if spec and accessor drift apart.
#[macro_export]
macro_rules! req_text {
    ($cmd:expr, $name:literal) => {
        match $cmd.get_text($name) {
            Some(v) => v,
            None => {
                return $crate::Reply::err(
                    $crate::ErrorCode::Semantics,
                    concat!("missing or mistyped `", $name, "`"),
                )
            }
        }
    };
}

/// Fetch a required integer argument, or return a Semantics error [`Reply`]
/// from the enclosing handler.  See [`req_text!`].
#[macro_export]
macro_rules! req_int {
    ($cmd:expr, $name:literal) => {
        match $cmd.get_int($name) {
            Some(v) => v,
            None => {
                return $crate::Reply::err(
                    $crate::ErrorCode::Semantics,
                    concat!("missing or mistyped `", $name, "`"),
                )
            }
        }
    };
}

/// Fetch a required float argument (integers widen), or return a Semantics
/// error [`Reply`] from the enclosing handler.  See [`req_text!`].
#[macro_export]
macro_rules! req_f64 {
    ($cmd:expr, $name:literal) => {
        match $cmd.get_f64($name) {
            Some(v) => v,
            None => {
                return $crate::Reply::err(
                    $crate::ErrorCode::Semantics,
                    concat!("missing or mistyped `", $name, "`"),
                )
            }
        }
    };
}
