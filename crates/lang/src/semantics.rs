//! Command semantics (§2.2–2.3): the per-service definition of which
//! commands exist, which arguments they take, and of what types.
//!
//! "For each unique daemon implementation, a set of command and argument
//! semantics must be defined, within the basic language structure, and
//! tailored to fit the specific capabilities of that service daemon."
//!
//! Semantics objects are also how the daemon hierarchy (Fig. 6) works:
//! a child service *extends* its parent's semantics, inheriting every parent
//! command and adding (or overriding) its own.

use crate::cmdline::CmdLine;
use crate::error::SemanticError;
use crate::value::{ScalarType, Value};
use std::collections::HashMap;

/// Protocol-level argument carried by *any* command: the remaining
/// wall-clock budget, in milliseconds, that the sender is still willing to
/// wait for the reply.  Stamped by clients from their call timeout and
/// decremented across hops; a daemon sheds queued commands whose deadline
/// lapsed before execution (`E_DEADLINE`).  Accepted by every [`Semantics`]
/// vocabulary without per-command declaration, the same way transport
/// headers ride below application vocabularies.
pub const DEADLINE_ARG: &str = "deadline";

/// The type specification an argument must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgType {
    /// `<INTEGER>` only.
    Int,
    /// `<FLOAT>`; integers are accepted and widen (`x=3` satisfies a float).
    Float,
    /// `<WORD>` only.
    Word,
    /// `<STRING>` per the grammar: a quoted string *or* a word.
    Str,
    /// A vector whose elements are all of the given scalar type.  An empty
    /// vector satisfies any element type.
    Vector(ScalarType),
    /// An array whose elements are all of the given scalar type.
    Array(ScalarType),
    /// Any value.
    Any,
}

impl ArgType {
    /// Does `value` satisfy this specification?
    pub fn accepts(&self, value: &Value) -> bool {
        match (self, value) {
            (ArgType::Any, _) => true,
            (ArgType::Int, Value::Int(_)) => true,
            (ArgType::Float, Value::Int(_) | Value::Float(_)) => true,
            (ArgType::Word, Value::Word(_)) => true,
            (ArgType::Str, Value::Str(_) | Value::Word(_)) => true,
            (ArgType::Vector(t), Value::Vector(v)) => {
                v.iter().all(|s| scalar_accepts(*t, s.scalar_type()))
            }
            (ArgType::Array(t), Value::Array(rows)) => rows
                .iter()
                .all(|row| row.iter().all(|s| scalar_accepts(*t, s.scalar_type()))),
            _ => false,
        }
    }

    /// Human-readable form for error messages.
    pub fn describe(&self) -> String {
        match self {
            ArgType::Int => "integer".into(),
            ArgType::Float => "float".into(),
            ArgType::Word => "word".into(),
            ArgType::Str => "string".into(),
            ArgType::Vector(t) => format!("vector of {t:?}"),
            ArgType::Array(t) => format!("array of {t:?}"),
            ArgType::Any => "any value".into(),
        }
    }
}

fn scalar_accepts(spec: ScalarType, found: ScalarType) -> bool {
    match (spec, found) {
        (a, b) if a == b => true,
        // Integers widen to float, words narrow into strings — the same
        // coercions as at top level.
        (ScalarType::Float, ScalarType::Int) => true,
        (ScalarType::Str, ScalarType::Word) => true,
        _ => false,
    }
}

/// One argument of a command specification.
#[derive(Debug, Clone)]
pub struct ArgSpec {
    pub name: String,
    pub ty: ArgType,
    pub required: bool,
    /// One-line description, surfaced by the framework `describe` command.
    pub doc: String,
}

/// One command of a service's vocabulary.
#[derive(Debug, Clone)]
pub struct CmdSpec {
    pub name: String,
    pub args: Vec<ArgSpec>,
    pub doc: String,
}

impl CmdSpec {
    /// Start a command specification.
    pub fn new(name: impl Into<String>, doc: impl Into<String>) -> Self {
        CmdSpec {
            name: name.into(),
            args: Vec::new(),
            doc: doc.into(),
        }
    }

    /// Add a required argument.
    pub fn required(
        mut self,
        name: impl Into<String>,
        ty: ArgType,
        doc: impl Into<String>,
    ) -> Self {
        self.args.push(ArgSpec {
            name: name.into(),
            ty,
            required: true,
            doc: doc.into(),
        });
        self
    }

    /// Add an optional argument.
    pub fn optional(
        mut self,
        name: impl Into<String>,
        ty: ArgType,
        doc: impl Into<String>,
    ) -> Self {
        self.args.push(ArgSpec {
            name: name.into(),
            ty,
            required: false,
            doc: doc.into(),
        });
        self
    }

    fn arg(&self, name: &str) -> Option<&ArgSpec> {
        self.args.iter().find(|a| a.name == name)
    }
}

/// A service's full command vocabulary: the "command semantic definitions"
/// the receiving daemon validates every incoming string against.
#[derive(Debug, Clone, Default)]
pub struct Semantics {
    cmds: HashMap<String, CmdSpec>,
}

impl Semantics {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Semantics::default()
    }

    /// Add (or override) a command definition.
    pub fn define(&mut self, spec: CmdSpec) -> &mut Self {
        self.cmds.insert(spec.name.clone(), spec);
        self
    }

    /// Builder-style [`Semantics::define`].
    pub fn with(mut self, spec: CmdSpec) -> Self {
        self.define(spec);
        self
    }

    /// Inherit every command of `parent` that this vocabulary does not
    /// already define.  This is the hierarchy mechanism of Fig. 6: "child
    /// nodes inherit methods, characteristics, and actions from the parent
    /// nodes … child nodes can be developed to be like their parent nodes
    /// but with additional functionalities."
    pub fn extend_from(&mut self, parent: &Semantics) -> &mut Self {
        for (name, spec) in &parent.cmds {
            self.cmds
                .entry(name.clone())
                .or_insert_with(|| spec.clone());
        }
        self
    }

    /// Builder-style [`Semantics::extend_from`].
    pub fn inheriting(mut self, parent: &Semantics) -> Self {
        self.extend_from(parent);
        self
    }

    /// Look up one command's specification.
    pub fn spec(&self, name: &str) -> Option<&CmdSpec> {
        self.cmds.get(name)
    }

    /// Iterate all command specifications (unordered).
    pub fn specs(&self) -> impl Iterator<Item = &CmdSpec> {
        self.cmds.values()
    }

    /// Number of commands defined.
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// `true` if no commands are defined.
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }

    /// Validate a parsed command against this vocabulary: known command name,
    /// no unknown/duplicate arguments, all required arguments present, every
    /// argument of the declared type.
    pub fn validate(&self, cmd: &CmdLine) -> Result<(), SemanticError> {
        let spec = self
            .cmds
            .get(cmd.name())
            .ok_or_else(|| SemanticError::UnknownCommand(cmd.name().to_string()))?;
        let mut seen: Vec<&str> = Vec::with_capacity(cmd.arg_count());
        for (name, value) in cmd.args() {
            if seen.contains(&name.as_str()) {
                return Err(SemanticError::DuplicateArg {
                    cmd: cmd.name().to_string(),
                    arg: name.clone(),
                });
            }
            seen.push(name);
            // The protocol-level deadline header is legal on every command
            // unless the vocabulary explicitly redefines it.
            if name == DEADLINE_ARG && spec.arg(name).is_none() {
                if !ArgType::Int.accepts(value) {
                    return Err(SemanticError::TypeMismatch {
                        cmd: cmd.name().to_string(),
                        arg: name.clone(),
                        expected: ArgType::Int.describe(),
                        found: value.value_type(),
                    });
                }
                continue;
            }
            let arg_spec = spec.arg(name).ok_or_else(|| SemanticError::UnknownArg {
                cmd: cmd.name().to_string(),
                arg: name.clone(),
            })?;
            if !arg_spec.ty.accepts(value) {
                return Err(SemanticError::TypeMismatch {
                    cmd: cmd.name().to_string(),
                    arg: name.clone(),
                    expected: arg_spec.ty.describe(),
                    found: value.value_type(),
                });
            }
        }
        for arg_spec in &spec.args {
            if arg_spec.required && !seen.contains(&arg_spec.name.as_str()) {
                return Err(SemanticError::MissingArg {
                    cmd: cmd.name().to_string(),
                    arg: arg_spec.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Render the vocabulary as a set of `command` reply lines, used by the
    /// built-in `describe` command.
    pub fn describe(&self) -> Vec<CmdLine> {
        let mut names: Vec<&String> = self.cmds.keys().collect();
        names.sort();
        names
            .iter()
            .map(|n| {
                let spec = &self.cmds[*n];
                let mut c = CmdLine::new("command")
                    .arg("name", spec.name.as_str())
                    .arg("doc", spec.doc.as_str());
                let args: Vec<crate::value::Scalar> = spec
                    .args
                    .iter()
                    .map(|a| crate::value::Scalar::Word(a.name.clone()))
                    .collect();
                c.push_arg("args", Value::Vector(args));
                c
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptz_semantics() -> Semantics {
        Semantics::new().with(
            CmdSpec::new("ptzMove", "move the camera")
                .required("x", ArgType::Float, "pan")
                .required("y", ArgType::Float, "tilt")
                .optional("zoom", ArgType::Float, "zoom factor")
                .optional("mode", ArgType::Word, "absolute|relative"),
        )
    }

    #[test]
    fn validate_ok() {
        let sem = ptz_semantics();
        let cmd = CmdLine::new("ptzMove")
            .arg("x", 1.0)
            .arg("y", 2)
            .arg("mode", "absolute");
        assert!(sem.validate(&cmd).is_ok());
    }

    #[test]
    fn int_satisfies_float() {
        let sem = ptz_semantics();
        let cmd = CmdLine::new("ptzMove").arg("x", 1).arg("y", 2);
        assert!(sem.validate(&cmd).is_ok());
    }

    #[test]
    fn unknown_command_rejected() {
        let sem = ptz_semantics();
        let err = sem.validate(&CmdLine::new("fly")).unwrap_err();
        assert!(matches!(err, SemanticError::UnknownCommand(_)));
    }

    #[test]
    fn missing_required_rejected() {
        let sem = ptz_semantics();
        let err = sem
            .validate(&CmdLine::new("ptzMove").arg("x", 1))
            .unwrap_err();
        assert!(matches!(err, SemanticError::MissingArg { .. }));
    }

    #[test]
    fn unknown_arg_rejected() {
        let sem = ptz_semantics();
        let cmd = CmdLine::new("ptzMove")
            .arg("x", 1)
            .arg("y", 2)
            .arg("speed", 3);
        let err = sem.validate(&cmd).unwrap_err();
        assert!(matches!(err, SemanticError::UnknownArg { .. }));
    }

    #[test]
    fn type_mismatch_rejected() {
        let sem = ptz_semantics();
        let cmd = CmdLine::new("ptzMove").arg("x", "left").arg("y", 2);
        let err = sem.validate(&cmd).unwrap_err();
        assert!(matches!(err, SemanticError::TypeMismatch { .. }));
    }

    #[test]
    fn duplicate_arg_rejected() {
        let sem = ptz_semantics();
        let mut cmd = CmdLine::new("ptzMove").arg("x", 1).arg("y", 2);
        cmd.push_arg("x", 3);
        let err = sem.validate(&cmd).unwrap_err();
        assert!(matches!(err, SemanticError::DuplicateArg { .. }));
    }

    #[test]
    fn word_satisfies_str_spec() {
        let sem = Semantics::new().with(CmdSpec::new("log", "log").required(
            "msg",
            ArgType::Str,
            "message",
        ));
        assert!(sem
            .validate(&CmdLine::new("log").arg("msg", "bareword"))
            .is_ok());
        assert!(sem
            .validate(&CmdLine::new("log").arg("msg", "two words"))
            .is_ok());
    }

    #[test]
    fn str_does_not_satisfy_word_spec() {
        let sem = Semantics::new().with(CmdSpec::new("c", "").required("w", ArgType::Word, ""));
        let err = sem
            .validate(&CmdLine::new("c").arg("w", "two words"))
            .unwrap_err();
        assert!(matches!(err, SemanticError::TypeMismatch { .. }));
    }

    #[test]
    fn vector_typing() {
        let sem = Semantics::new().with(CmdSpec::new("c", "").required(
            "v",
            ArgType::Vector(ScalarType::Float),
            "",
        ));
        let ints = CmdLine::parse("c v={1,2};").unwrap();
        assert!(sem.validate(&ints).is_ok(), "ints widen to float elements");
        let words = CmdLine::parse("c v={a,b};").unwrap();
        assert!(sem.validate(&words).is_err());
        let empty = CmdLine::parse("c v={};").unwrap();
        assert!(
            sem.validate(&empty).is_ok(),
            "empty vector satisfies any element type"
        );
    }

    #[test]
    fn hierarchy_inheritance() {
        let base = Semantics::new().with(CmdSpec::new("ping", "liveness"));
        let child = Semantics::new()
            .with(CmdSpec::new("zoom", "camera-only").required("z", ArgType::Float, ""))
            .inheriting(&base);
        assert!(child.validate(&CmdLine::new("ping")).is_ok());
        assert!(child.validate(&CmdLine::new("zoom").arg("z", 2)).is_ok());
        // Parent does not gain child commands.
        assert!(base.validate(&CmdLine::new("zoom").arg("z", 2)).is_err());
    }

    #[test]
    fn child_overrides_win() {
        let base = Semantics::new().with(CmdSpec::new("set", "").required("a", ArgType::Int, ""));
        let child = Semantics::new()
            .with(CmdSpec::new("set", "").required("a", ArgType::Word, ""))
            .inheriting(&base);
        assert!(child.validate(&CmdLine::new("set").arg("a", "w")).is_ok());
        assert!(child.validate(&CmdLine::new("set").arg("a", 1)).is_err());
    }

    #[test]
    fn deadline_header_accepted_everywhere() {
        let sem = ptz_semantics();
        let cmd = CmdLine::new("ptzMove")
            .arg("x", 1)
            .arg("y", 2)
            .arg(DEADLINE_ARG, 250);
        assert!(sem.validate(&cmd).is_ok());
        // Still typed: a non-integer deadline is rejected.
        let bad = CmdLine::new("ptzMove")
            .arg("x", 1)
            .arg("y", 2)
            .arg(DEADLINE_ARG, "soon");
        assert!(matches!(
            sem.validate(&bad).unwrap_err(),
            SemanticError::TypeMismatch { .. }
        ));
        // And still subject to the duplicate rule.
        let mut dup = CmdLine::new("ptzMove")
            .arg("x", 1)
            .arg("y", 2)
            .arg(DEADLINE_ARG, 250);
        dup.push_arg(DEADLINE_ARG, 300);
        assert!(matches!(
            sem.validate(&dup).unwrap_err(),
            SemanticError::DuplicateArg { .. }
        ));
    }

    #[test]
    fn explicit_deadline_spec_overrides_header() {
        // A vocabulary that declares its own `deadline` arg wins: the
        // declared type is enforced instead of the protocol Int.
        let sem = Semantics::new().with(CmdSpec::new("plan", "").required(
            DEADLINE_ARG,
            ArgType::Word,
            "symbolic deadline",
        ));
        assert!(sem
            .validate(&CmdLine::new("plan").arg(DEADLINE_ARG, "tonight"))
            .is_ok());
        assert!(sem
            .validate(&CmdLine::new("plan").arg(DEADLINE_ARG, 5))
            .is_err());
    }

    #[test]
    fn describe_lists_commands_sorted() {
        let sem = ptz_semantics();
        let d = sem.describe();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].get_text("name"), Some("ptzMove"));
    }
}
