//! Reply conventions: "return commands are used to reply on the status of
//! the attempted command such as successful or failed" (§2.2).
//!
//! Every ACE reply is itself a command: `ok …;` carrying result arguments,
//! or `error code=<word> msg=<string>;`.  The error codes follow the
//! project's internal `ACEErrorConventionSpecs` naming (E_…).

use crate::cmdline::CmdLine;
use crate::value::Value;
use std::fmt;

/// Standard ACE error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The command string did not parse.
    Parse,
    /// The command failed semantic validation.
    Semantics,
    /// KeyNote denied the action ("NOT OK", §3.2).
    Denied,
    /// The requester is not an identified/registered ACE user.
    Unidentified,
    /// The target entity (service, user, workspace, key, …) does not exist.
    NotFound,
    /// The service exists but cannot serve right now (lease lapsed, replica
    /// down, resource exhausted).
    Unavailable,
    /// The command is valid but its preconditions are not met.
    BadState,
    /// The service is quiescing for a live upgrade; the command was *not*
    /// executed and is safe to retry — the replacement incarnation
    /// re-registers under the same name within the upgrade pause.
    Upgrading,
    /// The daemon's admission queue is saturated; the command was shed
    /// *before* execution and is safe to retry after backing off.
    Busy,
    /// The command's `deadline=` budget expired while it waited in queue;
    /// it was shed *before* execution and is safe to retry with a fresh
    /// deadline.
    Deadline,
    /// Internal daemon failure.
    Internal,
}

impl ErrorCode {
    /// Wire form of the code (a `<WORD>`).
    pub fn as_word(&self) -> &'static str {
        match self {
            ErrorCode::Parse => "E_PARSE",
            ErrorCode::Semantics => "E_SEMANTICS",
            ErrorCode::Denied => "E_DENIED",
            ErrorCode::Unidentified => "E_UNIDENTIFIED",
            ErrorCode::NotFound => "E_NOTFOUND",
            ErrorCode::Unavailable => "E_UNAVAILABLE",
            ErrorCode::BadState => "E_BADSTATE",
            ErrorCode::Upgrading => "E_UPGRADING",
            ErrorCode::Busy => "E_BUSY",
            ErrorCode::Deadline => "E_DEADLINE",
            ErrorCode::Internal => "E_INTERNAL",
        }
    }

    /// Parse the wire form back into a code.
    pub fn from_word(w: &str) -> Option<ErrorCode> {
        Some(match w {
            "E_PARSE" => ErrorCode::Parse,
            "E_SEMANTICS" => ErrorCode::Semantics,
            "E_DENIED" => ErrorCode::Denied,
            "E_UNIDENTIFIED" => ErrorCode::Unidentified,
            "E_NOTFOUND" => ErrorCode::NotFound,
            "E_UNAVAILABLE" => ErrorCode::Unavailable,
            "E_BADSTATE" => ErrorCode::BadState,
            "E_UPGRADING" => ErrorCode::Upgrading,
            "E_BUSY" => ErrorCode::Busy,
            "E_DEADLINE" => ErrorCode::Deadline,
            "E_INTERNAL" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// `true` for codes that guarantee the command was *not* executed, so
    /// a retry cannot double-apply side effects: quiesce bounces
    /// (`E_UPGRADING`), admission sheds (`E_BUSY`) and in-queue deadline
    /// expiry (`E_DEADLINE`).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ErrorCode::Upgrading | ErrorCode::Busy | ErrorCode::Deadline
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_word())
    }
}

/// A decoded reply: success with result arguments, or a coded failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    Ok(CmdLine),
    Err { code: ErrorCode, msg: String },
}

impl Reply {
    /// A bare success reply.
    pub fn ok() -> Reply {
        Reply::Ok(CmdLine::new("ok"))
    }

    /// A success reply carrying result arguments.
    pub fn ok_with(build: impl FnOnce(CmdLine) -> CmdLine) -> Reply {
        Reply::Ok(build(CmdLine::new("ok")))
    }

    /// A failure reply.
    pub fn err(code: ErrorCode, msg: impl Into<String>) -> Reply {
        Reply::Err {
            code,
            msg: msg.into(),
        }
    }

    /// `true` for `ok` replies.
    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::Ok(_))
    }

    /// The result command of an `ok` reply.
    pub fn result(&self) -> Option<&CmdLine> {
        match self {
            Reply::Ok(c) => Some(c),
            Reply::Err { .. } => None,
        }
    }

    /// Convert into the return command that travels on the wire.
    pub fn to_cmdline(&self) -> CmdLine {
        match self {
            Reply::Ok(c) => c.clone(),
            Reply::Err { code, msg } => CmdLine::new("error")
                .arg("code", Value::Word(code.as_word().to_string()))
                .arg(
                    "msg",
                    // Strings containing '"' cannot travel in quoted strings
                    // (the grammar has no escapes); degrade to `'`.
                    Value::Str(msg.replace('"', "'")),
                ),
        }
    }

    /// Wire string of the return command.
    pub fn to_wire(&self) -> String {
        self.to_cmdline().to_wire()
    }

    /// Decode a return command into a reply.  Unknown shapes decode as
    /// internal errors so that callers always get *something* typed.
    pub fn from_cmdline(cmd: &CmdLine) -> Reply {
        match cmd.name() {
            "ok" => Reply::Ok(cmd.clone()),
            "error" => {
                let code = cmd
                    .get_text("code")
                    .and_then(ErrorCode::from_word)
                    .unwrap_or(ErrorCode::Internal);
                let msg = cmd.get_text("msg").unwrap_or("").to_string();
                Reply::Err { code, msg }
            }
            other => Reply::Err {
                code: ErrorCode::Internal,
                msg: format!("malformed reply command `{other}`"),
            },
        }
    }

    /// Convert to a `Result`, mapping failure replies to `(code, msg)`.
    pub fn into_result(self) -> Result<CmdLine, (ErrorCode, String)> {
        match self {
            Reply::Ok(c) => Ok(c),
            Reply::Err { code, msg } => Err((code, msg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_roundtrip() {
        let r = Reply::ok_with(|c| c.arg("port", 1234).arg("host", "bar"));
        let wire = r.to_wire();
        let decoded = Reply::from_cmdline(&CmdLine::parse(&wire).unwrap());
        assert_eq!(r, decoded);
        assert_eq!(decoded.result().unwrap().get_int("port"), Some(1234));
    }

    #[test]
    fn err_roundtrip() {
        let r = Reply::err(ErrorCode::Denied, "no credentials for ptzMove");
        let wire = r.to_wire();
        let decoded = Reply::from_cmdline(&CmdLine::parse(&wire).unwrap());
        assert_eq!(r, decoded);
        assert!(!decoded.is_ok());
    }

    #[test]
    fn err_with_quote_in_message_degrades() {
        let r = Reply::err(ErrorCode::Internal, "bad \"thing\"");
        let wire = r.to_wire();
        let decoded = Reply::from_cmdline(&CmdLine::parse(&wire).unwrap());
        match decoded {
            Reply::Err { msg, .. } => assert_eq!(msg, "bad 'thing'"),
            _ => panic!(),
        }
    }

    #[test]
    fn all_codes_roundtrip() {
        for code in [
            ErrorCode::Parse,
            ErrorCode::Semantics,
            ErrorCode::Denied,
            ErrorCode::Unidentified,
            ErrorCode::NotFound,
            ErrorCode::Unavailable,
            ErrorCode::BadState,
            ErrorCode::Upgrading,
            ErrorCode::Busy,
            ErrorCode::Deadline,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_word(code.as_word()), Some(code));
        }
        assert_eq!(ErrorCode::from_word("E_BOGUS"), None);
    }

    #[test]
    fn retryable_codes_were_not_executed() {
        assert!(ErrorCode::Busy.is_retryable());
        assert!(ErrorCode::Deadline.is_retryable());
        assert!(ErrorCode::Upgrading.is_retryable());
        assert!(!ErrorCode::Internal.is_retryable());
        assert!(!ErrorCode::NotFound.is_retryable());
        assert!(!ErrorCode::Denied.is_retryable());
    }

    #[test]
    fn malformed_reply_decodes_as_internal() {
        let cmd = CmdLine::new("banana");
        match Reply::from_cmdline(&cmd) {
            Reply::Err { code, .. } => assert_eq!(code, ErrorCode::Internal),
            _ => panic!(),
        }
    }

    #[test]
    fn into_result() {
        assert!(Reply::ok().into_result().is_ok());
        let (code, _) = Reply::err(ErrorCode::NotFound, "x")
            .into_result()
            .unwrap_err();
        assert_eq!(code, ErrorCode::NotFound);
    }
}
