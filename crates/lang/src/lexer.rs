//! Lexer for the ACE command language wire form.
//!
//! Tokenizes a command string into the terminals of the §2.2 grammar:
//! bare atoms (words and numbers), quoted strings, and the punctuation
//! `=` `,` `{` `}` `;`.  Classification of bare atoms into
//! `<INTEGER>`/`<FLOAT>`/`<WORD>` happens here so the parser only deals with
//! typed tokens.

use crate::error::{ParseError, ParseErrorKind};

/// A lexical token with its byte offset in the source (for error reporting).
///
/// Text tokens borrow from the source string — the hot parse path (every
/// command crossing every secure link) allocates nothing until a token is
/// promoted into an owned [`crate::value::Value`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Token<'a> {
    Int(i64),
    Float(f64),
    Word(&'a str),
    /// Quoted string, quotes stripped.
    Str(&'a str),
    Equals,
    Comma,
    OpenBrace,
    CloseBrace,
    Semicolon,
}

impl Token<'_> {
    /// Short human name used in "expected X, found Y" errors.
    pub fn describe(&self) -> &'static str {
        match self {
            Token::Int(_) => "integer",
            Token::Float(_) => "float",
            Token::Word(_) => "word",
            Token::Str(_) => "string",
            Token::Equals => "'='",
            Token::Comma => "','",
            Token::OpenBrace => "'{'",
            Token::CloseBrace => "'}'",
            Token::Semicolon => "';'",
        }
    }
}

/// Characters that may start or continue a bare atom.  Beyond the word
/// charset this includes the sign, decimal point, and exponent characters of
/// numbers ('e'/'E' are already alphanumeric).
fn is_atom_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '+' | '.')
}

/// Classify a bare atom per the grammar: integers first, then floats, then
/// words.  Anything else (e.g. `1.2.3` or a stray `-`) is a lex error.
fn classify_atom(atom: &str, pos: usize) -> Result<Token<'_>, ParseError> {
    if let Ok(i) = atom.parse::<i64>() {
        return Ok(Token::Int(i));
    }
    // A float must actually look like a number (digit somewhere) and parse.
    if atom.bytes().any(|b| b.is_ascii_digit()) {
        if let Ok(f) = atom.parse::<f64>() {
            return Ok(Token::Float(f));
        }
    }
    if crate::value::is_word(atom) {
        return Ok(Token::Word(atom));
    }
    Err(ParseError::new(
        ParseErrorKind::BadAtom(atom.to_string()),
        pos,
    ))
}

/// Tokenize `src` into a vector of `(token, byte_offset)` pairs.
pub fn lex(src: &str) -> Result<Vec<(Token<'_>, usize)>, ParseError> {
    let mut out = Vec::with_capacity(16);
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '=' => {
                out.push((Token::Equals, i));
                i += 1;
            }
            ',' => {
                out.push((Token::Comma, i));
                i += 1;
            }
            '{' => {
                out.push((Token::OpenBrace, i));
                i += 1;
            }
            '}' => {
                out.push((Token::CloseBrace, i));
                i += 1;
            }
            ';' => {
                out.push((Token::Semicolon, i));
                i += 1;
            }
            '"' => {
                let start = i;
                i += 1;
                let content_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    let b = bytes[i];
                    if b == b'\n' || b == b'\r' {
                        return Err(ParseError::new(ParseErrorKind::UnterminatedString, start));
                    }
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(ParseError::new(ParseErrorKind::UnterminatedString, start));
                }
                // Safety of slicing: '"' is a single-byte delimiter, so the
                // content is a valid UTF-8 substring.
                let content = &src[content_start..i];
                out.push((Token::Str(content), start));
                i += 1;
            }
            c if is_atom_char(c) => {
                let start = i;
                while i < bytes.len() && is_atom_char(bytes[i] as char) {
                    i += 1;
                }
                let atom = &src[start..i];
                out.push((classify_atom(atom, start)?, start));
            }
            other => {
                return Err(ParseError::new(ParseErrorKind::UnexpectedChar(other), i));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token<'_>> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn lex_simple_command() {
        assert_eq!(
            toks("move x=1 y=2;"),
            vec![
                Token::Word("move"),
                Token::Word("x"),
                Token::Equals,
                Token::Int(1),
                Token::Word("y"),
                Token::Equals,
                Token::Int(2),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(toks("-3"), vec![Token::Int(-3)]);
        assert_eq!(toks("3.5"), vec![Token::Float(3.5)]);
        assert_eq!(toks("-0.25"), vec![Token::Float(-0.25)]);
        assert_eq!(toks("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(toks("+7"), vec![Token::Int(7)]);
    }

    #[test]
    fn lex_word_that_starts_with_digit() {
        // "3abc" is a legal <WORD> per the grammar (contiguous alphanumerics).
        assert_eq!(toks("3abc"), vec![Token::Word("3abc")]);
    }

    #[test]
    fn lex_quoted_string() {
        assert_eq!(toks("\"hello world\""), vec![Token::Str("hello world")]);
        assert_eq!(toks("\"\""), vec![Token::Str("")]);
    }

    #[test]
    fn lex_braces_and_commas() {
        assert_eq!(
            toks("{1,2}"),
            vec![
                Token::OpenBrace,
                Token::Int(1),
                Token::Comma,
                Token::Int(2),
                Token::CloseBrace,
            ]
        );
    }

    #[test]
    fn lex_unterminated_string() {
        let err = lex("\"abc").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnterminatedString));
    }

    #[test]
    fn lex_bad_atom() {
        let err = lex("1.2.3").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadAtom(_)));
        let err = lex("a-b").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadAtom(_)));
    }

    #[test]
    fn lex_unexpected_char() {
        let err = lex("cmd @x;").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedChar('@')));
    }

    #[test]
    fn offsets_are_byte_positions() {
        let lexed = lex("ab cd").unwrap();
        assert_eq!(lexed[0].1, 0);
        assert_eq!(lexed[1].1, 3);
    }

    #[test]
    fn newline_inside_string_rejected() {
        let err = lex("\"a\nb\"").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnterminatedString));
    }
}
