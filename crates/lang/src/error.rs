//! Error types for the ACE command language: lexical/syntactic errors from
//! the parser and semantic errors from command validation.

use crate::value::ValueType;
use std::fmt;

/// What went wrong while lexing/parsing a command string.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A bare atom that is neither a number nor a `<WORD>` (e.g. `1.2.3`).
    BadAtom(String),
    /// A character outside the language's alphabet.
    UnexpectedChar(char),
    /// A `"` with no closing `"` on the same line.
    UnterminatedString,
    /// The input ended where a token was required.
    UnexpectedEnd(&'static str),
    /// A token appeared where a different one was required.
    Unexpected {
        expected: &'static str,
        found: String,
    },
    /// A vector mixed scalar types, e.g. `{1,foo}`.
    MixedVector {
        expected: &'static str,
        found: &'static str,
    },
    /// Extra input after the terminating `;`.
    TrailingInput,
    /// The command string was empty.
    Empty,
}

/// A lexical or syntactic error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub kind: ParseErrorKind,
    /// Byte offset into the source string.
    pub pos: usize,
}

impl ParseError {
    pub fn new(kind: ParseErrorKind, pos: usize) -> Self {
        ParseError { kind, pos }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::BadAtom(a) => write!(f, "bad token `{a}` at byte {}", self.pos),
            ParseErrorKind::UnexpectedChar(c) => {
                write!(f, "unexpected character `{c}` at byte {}", self.pos)
            }
            ParseErrorKind::UnterminatedString => {
                write!(f, "unterminated string starting at byte {}", self.pos)
            }
            ParseErrorKind::UnexpectedEnd(what) => {
                write!(f, "input ended while expecting {what}")
            }
            ParseErrorKind::Unexpected { expected, found } => {
                write!(f, "expected {expected}, found {found} at byte {}", self.pos)
            }
            ParseErrorKind::MixedVector { expected, found } => write!(
                f,
                "vector mixes element types ({expected} then {found}) at byte {}",
                self.pos
            ),
            ParseErrorKind::TrailingInput => {
                write!(f, "trailing input after `;` at byte {}", self.pos)
            }
            ParseErrorKind::Empty => write!(f, "empty command string"),
        }
    }
}

impl std::error::Error for ParseError {}

/// What went wrong while validating a parsed command against a service's
/// command semantics (§2.2: "checks the incoming string for syntactic and
/// semantic correctness against those parameters defined within the
/// receiving daemon").
#[derive(Debug, Clone, PartialEq)]
pub enum SemanticError {
    /// The command name is not defined for this service.
    UnknownCommand(String),
    /// An argument name is not defined for this command.
    UnknownArg { cmd: String, arg: String },
    /// A required argument is missing.
    MissingArg { cmd: String, arg: String },
    /// An argument has the wrong type.
    TypeMismatch {
        cmd: String,
        arg: String,
        expected: String,
        found: ValueType,
    },
    /// The same argument appeared twice.
    DuplicateArg { cmd: String, arg: String },
}

impl fmt::Display for SemanticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticError::UnknownCommand(c) => write!(f, "unknown command `{c}`"),
            SemanticError::UnknownArg { cmd, arg } => {
                write!(f, "command `{cmd}` has no argument `{arg}`")
            }
            SemanticError::MissingArg { cmd, arg } => {
                write!(f, "command `{cmd}` requires argument `{arg}`")
            }
            SemanticError::TypeMismatch {
                cmd,
                arg,
                expected,
                found,
            } => write!(
                f,
                "argument `{arg}` of `{cmd}` must be {expected}, got {found}"
            ),
            SemanticError::DuplicateArg { cmd, arg } => {
                write!(f, "argument `{arg}` of `{cmd}` given more than once")
            }
        }
    }
}

impl std::error::Error for SemanticError {}

/// Either kind of language error; returned by the combined
/// parse-and-validate entry point used by daemons.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    Parse(ParseError),
    Semantic(SemanticError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse(e) => write!(f, "parse error: {e}"),
            LangError::Semantic(e) => write!(f, "semantic error: {e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<ParseError> for LangError {
    fn from(e: ParseError) -> Self {
        LangError::Parse(e)
    }
}
impl From<SemanticError> for LangError {
    fn from(e: SemanticError) -> Self {
        LangError::Semantic(e)
    }
}
