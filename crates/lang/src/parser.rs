//! The ACE Command Parser (§2.2): reconstructs an [`CmdLine`] from its wire
//! string.
//!
//! Grammar (verbatim from the paper):
//!
//! ```text
//! <CMND>     := <CMNDNAME><space>[<ARGLIST>];
//! <CMNDNAME> := <WORD>
//! <ARGLIST>  := | <ARGUMENT> | <ARGUMENT><space><ARGLIST> | <ARGUMENT>','<ARGLIST>
//! <ARGUMENT> := <ARGNAME>'='<ARGVALUE>
//! <ARGVALUE> := <INTEGER> | <FLOAT> | <WORD> | <STRING> | <VECTOR> | <ARRAY>
//! <VECTOR>   := homogeneous '{'-list of scalars
//! <ARRAY>    := '{'-list of vectors
//! ```
//!
//! Arguments may be separated by spaces or commas.  Commands terminate with
//! `;`; [`parse_all`] accepts several commands in one string (the framing
//! used on ACE sockets).

use crate::cmdline::CmdLine;
use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::{lex, Token};
use crate::value::{Scalar, Value};

struct Cursor<'a> {
    toks: Vec<(Token<'a>, usize)>,
    i: usize,
    end: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&Token<'a>> {
        self.toks.get(self.i).map(|(t, _)| t)
    }
    fn pos(&self) -> usize {
        self.toks.get(self.i).map(|(_, p)| *p).unwrap_or(self.end)
    }
    fn next(&mut self) -> Option<Token<'a>> {
        // Tokens are `Copy` (they borrow the source), so this is free.
        let t = self.toks.get(self.i).map(|(t, _)| *t);
        if t.is_some() {
            self.i += 1;
        }
        t
    }
    fn expect_end_or(&self) -> bool {
        self.i >= self.toks.len()
    }
}

/// Parse exactly one command; trailing input after its `;` is an error.
pub fn parse(src: &str) -> Result<CmdLine, ParseError> {
    let mut cur = Cursor {
        toks: lex(src)?,
        i: 0,
        end: src.len(),
    };
    let cmd = parse_one(&mut cur)?;
    if !cur.expect_end_or() {
        return Err(ParseError::new(ParseErrorKind::TrailingInput, cur.pos()));
    }
    Ok(cmd)
}

/// Parse a sequence of `;`-terminated commands (socket framing may batch
/// several per read).
pub fn parse_all(src: &str) -> Result<Vec<CmdLine>, ParseError> {
    let mut cur = Cursor {
        toks: lex(src)?,
        i: 0,
        end: src.len(),
    };
    let mut cmds = Vec::new();
    while !cur.expect_end_or() {
        cmds.push(parse_one(&mut cur)?);
    }
    if cmds.is_empty() {
        return Err(ParseError::new(ParseErrorKind::Empty, 0));
    }
    Ok(cmds)
}

fn parse_one(cur: &mut Cursor<'_>) -> Result<CmdLine, ParseError> {
    let pos = cur.pos();
    let name = match cur.next() {
        Some(Token::Word(w)) => w,
        Some(other) => {
            return Err(ParseError::new(
                ParseErrorKind::Unexpected {
                    expected: "command name (word)",
                    found: other.describe().to_string(),
                },
                pos,
            ))
        }
        None => return Err(ParseError::new(ParseErrorKind::Empty, pos)),
    };
    let mut cmd = CmdLine::new(name);
    loop {
        let pos = cur.pos();
        match cur.next() {
            Some(Token::Semicolon) => return Ok(cmd),
            // Commas between arguments are permitted by <ARGLIST>.
            Some(Token::Comma) => continue,
            Some(Token::Word(arg_name)) => {
                let pos = cur.pos();
                match cur.next() {
                    Some(Token::Equals) => {}
                    Some(other) => {
                        return Err(ParseError::new(
                            ParseErrorKind::Unexpected {
                                expected: "'=' after argument name",
                                found: other.describe().to_string(),
                            },
                            pos,
                        ))
                    }
                    None => {
                        return Err(ParseError::new(
                            ParseErrorKind::UnexpectedEnd("'=' after argument name"),
                            pos,
                        ))
                    }
                }
                let value = parse_value(cur)?;
                cmd.push_arg(arg_name, value);
            }
            Some(other) => {
                return Err(ParseError::new(
                    ParseErrorKind::Unexpected {
                        expected: "argument name or ';'",
                        found: other.describe().to_string(),
                    },
                    pos,
                ))
            }
            None => {
                return Err(ParseError::new(
                    ParseErrorKind::UnexpectedEnd("';' terminating the command"),
                    pos,
                ))
            }
        }
    }
}

fn parse_value(cur: &mut Cursor<'_>) -> Result<Value, ParseError> {
    let pos = cur.pos();
    match cur.next() {
        Some(Token::Int(i)) => Ok(Value::Int(i)),
        Some(Token::Float(f)) => Ok(Value::Float(f)),
        Some(Token::Word(w)) => Ok(Value::Word(w.to_string())),
        Some(Token::Str(s)) => Ok(Value::Str(s.to_string())),
        Some(Token::OpenBrace) => parse_braced(cur, pos),
        Some(other) => Err(ParseError::new(
            ParseErrorKind::Unexpected {
                expected: "argument value",
                found: other.describe().to_string(),
            },
            pos,
        )),
        None => Err(ParseError::new(
            ParseErrorKind::UnexpectedEnd("argument value"),
            pos,
        )),
    }
}

/// Parse the interior of a `{…}`: either a vector of scalars or an array of
/// vectors, decided by the first token after the brace.
fn parse_braced(cur: &mut Cursor<'_>, open_pos: usize) -> Result<Value, ParseError> {
    match cur.peek() {
        Some(Token::CloseBrace) => {
            cur.next();
            Ok(Value::Vector(Vec::new()))
        }
        Some(Token::OpenBrace) => {
            // Array: one or more vectors.
            let mut rows = Vec::new();
            loop {
                let pos = cur.pos();
                match cur.next() {
                    Some(Token::OpenBrace) => rows.push(parse_scalar_list(cur)?),
                    Some(other) => {
                        return Err(ParseError::new(
                            ParseErrorKind::Unexpected {
                                expected: "'{' starting a vector",
                                found: other.describe().to_string(),
                            },
                            pos,
                        ))
                    }
                    None => {
                        return Err(ParseError::new(
                            ParseErrorKind::UnexpectedEnd("vector inside array"),
                            pos,
                        ))
                    }
                }
                let pos = cur.pos();
                match cur.next() {
                    Some(Token::Comma) => continue,
                    Some(Token::CloseBrace) => break,
                    Some(other) => {
                        return Err(ParseError::new(
                            ParseErrorKind::Unexpected {
                                expected: "',' or '}' in array",
                                found: other.describe().to_string(),
                            },
                            pos,
                        ))
                    }
                    None => {
                        return Err(ParseError::new(
                            ParseErrorKind::UnexpectedEnd("'}' closing the array"),
                            pos,
                        ))
                    }
                }
            }
            // Arrays are homogeneous across all rows.
            enforce_array_homogeneity(&rows, open_pos)?;
            Ok(Value::Array(rows))
        }
        _ => {
            let scalars = parse_scalar_list(cur)?;
            Ok(Value::Vector(scalars))
        }
    }
}

/// Parse scalars up to and including the closing `}`.  Enforces vector
/// homogeneity per `<VECTOR> := {[<INTEGER>]','…} | {[<FLOAT>]','…} | …`.
fn parse_scalar_list(cur: &mut Cursor<'_>) -> Result<Vec<Scalar>, ParseError> {
    let mut out = Vec::new();
    // Empty vector inside an array: `{}`.
    if matches!(cur.peek(), Some(Token::CloseBrace)) {
        cur.next();
        return Ok(out);
    }
    loop {
        let pos = cur.pos();
        let scalar = match cur.next() {
            Some(Token::Int(i)) => Scalar::Int(i),
            Some(Token::Float(f)) => Scalar::Float(f),
            Some(Token::Word(w)) => Scalar::Word(w.to_string()),
            Some(Token::Str(s)) => Scalar::Str(s.to_string()),
            Some(other) => {
                return Err(ParseError::new(
                    ParseErrorKind::Unexpected {
                        expected: "scalar vector element",
                        found: other.describe().to_string(),
                    },
                    pos,
                ))
            }
            None => {
                return Err(ParseError::new(
                    ParseErrorKind::UnexpectedEnd("vector element"),
                    pos,
                ))
            }
        };
        if let Some(first) = out.first() {
            let a: &Scalar = first;
            if a.scalar_type() != scalar.scalar_type() {
                return Err(ParseError::new(
                    ParseErrorKind::MixedVector {
                        expected: type_name(a),
                        found: type_name(&scalar),
                    },
                    pos,
                ));
            }
        }
        out.push(scalar);
        let pos = cur.pos();
        match cur.next() {
            Some(Token::Comma) => continue,
            Some(Token::CloseBrace) => return Ok(out),
            Some(other) => {
                return Err(ParseError::new(
                    ParseErrorKind::Unexpected {
                        expected: "',' or '}' in vector",
                        found: other.describe().to_string(),
                    },
                    pos,
                ))
            }
            None => {
                return Err(ParseError::new(
                    ParseErrorKind::UnexpectedEnd("'}' closing the vector"),
                    pos,
                ))
            }
        }
    }
}

fn enforce_array_homogeneity(rows: &[Vec<Scalar>], pos: usize) -> Result<(), ParseError> {
    let mut first: Option<&Scalar> = None;
    for row in rows {
        for s in row {
            match first {
                None => first = Some(s),
                Some(f) => {
                    if f.scalar_type() != s.scalar_type() {
                        return Err(ParseError::new(
                            ParseErrorKind::MixedVector {
                                expected: type_name(f),
                                found: type_name(s),
                            },
                            pos,
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

fn type_name(s: &Scalar) -> &'static str {
    match s {
        Scalar::Int(_) => "integer",
        Scalar::Float(_) => "float",
        Scalar::Word(_) => "word",
        Scalar::Str(_) => "string",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let cmd = parse("ptzMove x=10 y=-3 zoom=1.5;").unwrap();
        assert_eq!(cmd.name(), "ptzMove");
        assert_eq!(cmd.get_int("x"), Some(10));
        assert_eq!(cmd.get_int("y"), Some(-3));
        assert_eq!(cmd.get_f64("zoom"), Some(1.5));
    }

    #[test]
    fn parse_no_args() {
        let cmd = parse("ping;").unwrap();
        assert_eq!(cmd.name(), "ping");
        assert_eq!(cmd.arg_count(), 0);
    }

    #[test]
    fn parse_comma_separated_args() {
        let cmd = parse("c a=1,b=2, c=3;").unwrap();
        assert_eq!(cmd.arg_count(), 3);
        assert_eq!(cmd.get_int("c"), Some(3));
    }

    #[test]
    fn parse_quoted_string() {
        let cmd = parse("say text=\"hello, world; ok={}\";").unwrap();
        assert_eq!(cmd.get_text("text"), Some("hello, world; ok={}"));
    }

    #[test]
    fn parse_vector() {
        let cmd = parse("c v={1,2,3};").unwrap();
        assert_eq!(
            cmd.get_vector("v").unwrap(),
            &[Scalar::Int(1), Scalar::Int(2), Scalar::Int(3)]
        );
    }

    #[test]
    fn parse_word_vector() {
        let cmd = parse("c v={red,green,blue};").unwrap();
        assert_eq!(cmd.get_vector("v").unwrap().len(), 3);
    }

    #[test]
    fn parse_empty_vector() {
        let cmd = parse("c v={};").unwrap();
        assert_eq!(cmd.get_vector("v").unwrap().len(), 0);
    }

    #[test]
    fn parse_array() {
        let cmd = parse("c m={{1,2},{3,4}};").unwrap();
        let rows = cmd.get_array("m").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec![Scalar::Int(3), Scalar::Int(4)]);
    }

    #[test]
    fn parse_array_with_empty_row() {
        let cmd = parse("c m={{},{1}};").unwrap();
        let rows = cmd.get_array("m").unwrap();
        assert_eq!(rows[0].len(), 0);
        assert_eq!(rows[1].len(), 1);
    }

    #[test]
    fn mixed_vector_rejected() {
        let err = parse("c v={1,foo};").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MixedVector { .. }));
    }

    #[test]
    fn mixed_array_rejected() {
        let err = parse("c m={{1},{foo}};").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MixedVector { .. }));
    }

    #[test]
    fn int_and_float_do_not_mix_in_vectors() {
        let err = parse("c v={1,2.5};").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MixedVector { .. }));
    }

    #[test]
    fn missing_semicolon_rejected() {
        let err = parse("c a=1").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedEnd(_)));
    }

    #[test]
    fn missing_equals_rejected() {
        let err = parse("c a 1;").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Unexpected { .. }));
    }

    #[test]
    fn trailing_input_rejected() {
        let err = parse("a; b;").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TrailingInput));
    }

    #[test]
    fn parse_all_accepts_batches() {
        let cmds = parse_all("a; b x=1; c;").unwrap();
        assert_eq!(cmds.len(), 3);
        assert_eq!(cmds[1].get_int("x"), Some(1));
    }

    #[test]
    fn parse_all_empty_rejected() {
        assert!(parse_all("   ").is_err());
    }

    #[test]
    fn command_name_must_be_word() {
        let err = parse("42 x=1;").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Unexpected { .. }));
    }

    #[test]
    fn roundtrip_examples() {
        for src in [
            "ping;",
            "move x=1 y=2;",
            "say text=\"a b c\";",
            "cfg v={1,2,3} m={{1},{2,3}} f=1.5 w=word;",
        ] {
            let cmd = parse(src).unwrap();
            let re = parse(&cmd.to_wire()).unwrap();
            assert_eq!(cmd, re);
        }
    }

    #[test]
    fn value_after_equals_required() {
        let err = parse("c a=;").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Unexpected { .. }));
    }
}
