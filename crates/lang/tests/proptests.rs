//! Property-based tests on the command language: the wire form must
//! round-trip exactly (§2.2: the parser constructs "an exact copy of the
//! ACECmdLine object"), and the parser must never panic on arbitrary input.

use ace_lang::{parse, parse_all, CmdLine, Scalar, Value};
use proptest::prelude::*;

/// `<WORD>` generator: contiguous alphanumerics and underscores.
fn word() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_]{0,11}".prop_map(|s| s)
}

/// Quoted-string content: printable, no `"` (the grammar has no escapes).
fn quotable() -> impl Strategy<Value = String> {
    "[ -!#-~]{0,24}".prop_map(|s| s)
}

/// Floats that survive a text round-trip exactly (shortest-repr printing in
/// Rust guarantees read-back equality for finite values).
fn wire_float() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<i32>().prop_map(|i| i as f64 / 16.0),
        any::<f64>().prop_filter("finite", |f| f.is_finite()),
    ]
}

fn scalar(ty: u8) -> BoxedStrategy<Scalar> {
    match ty % 4 {
        0 => any::<i64>().prop_map(Scalar::Int).boxed(),
        1 => wire_float().prop_map(Scalar::Float).boxed(),
        2 => word().prop_map(Scalar::Word).boxed(),
        _ => quotable().prop_map(Scalar::Str).boxed(),
    }
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        wire_float().prop_map(Value::Float),
        word().prop_map(Value::Word),
        quotable().prop_map(Value::Str),
        // Homogeneous vector: pick one scalar type, then a list of it.
        (0u8..4)
            .prop_flat_map(|ty| prop::collection::vec(scalar(ty), 0..6).prop_map(Value::Vector)),
        // Homogeneous array: one scalar type across all rows.
        (0u8..4).prop_flat_map(|ty| {
            prop::collection::vec(prop::collection::vec(scalar(ty), 0..4), 1..4)
                .prop_map(Value::Array)
        }),
    ]
}

fn cmdline() -> impl Strategy<Value = CmdLine> {
    (word(), prop::collection::vec((word(), value()), 0..8)).prop_map(|(name, args)| {
        let mut cmd = CmdLine::new(name);
        // Deduplicate argument names: duplicates are representable but
        // rejected by semantics, and equality-after-reparse still holds;
        // keep them distinct so `get` comparisons are unambiguous.
        let mut seen = std::collections::HashSet::new();
        for (n, v) in args {
            if seen.insert(n.clone()) {
                cmd.push_arg(n, v);
            }
        }
        cmd
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Encode→parse is the identity on command lines.
    #[test]
    fn wire_roundtrip(cmd in cmdline()) {
        let wire = cmd.to_wire();
        let back = parse(&wire).expect("generated wire form must parse");
        prop_assert_eq!(back, cmd);
    }

    /// Batched framing round-trips too.
    #[test]
    fn batch_roundtrip(cmds in prop::collection::vec(cmdline(), 1..5)) {
        let wire: String = cmds.iter().map(|c| c.to_wire()).collect::<Vec<_>>().join(" ");
        let back = parse_all(&wire).expect("batch must parse");
        prop_assert_eq!(back, cmds);
    }

    /// The parser is total: arbitrary input never panics, it returns
    /// Ok or Err.
    #[test]
    fn parser_never_panics(src in "\\PC{0,64}") {
        let _ = parse(&src);
        let _ = parse_all(&src);
    }

    /// Arbitrary ASCII soup never panics either (denser in metacharacters
    /// than general unicode).
    #[test]
    fn parser_never_panics_ascii(src in "[ -~]{0,64}") {
        let _ = parse(&src);
    }

    /// Parsing is deterministic.
    #[test]
    fn parse_deterministic(src in "[ -~]{0,64}") {
        prop_assert_eq!(parse(&src), parse(&src));
    }

    /// Double round-trip is stable: parse(encode(parse(encode(c)))) == parse(encode(c)).
    #[test]
    fn encode_is_canonical(cmd in cmdline()) {
        let once = parse(&cmd.to_wire()).unwrap();
        let twice = parse(&once.to_wire()).unwrap();
        prop_assert_eq!(once, twice);
    }
}
