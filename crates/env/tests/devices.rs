//! Device-simulator tests: the Fig. 6 hierarchy's behavioural differences
//! between camera models, and projector state rules.

use ace_core::prelude::*;
use ace_directory::bootstrap;
use ace_env::{CameraModel, Projector, PtzCamera};
use ace_security::keys::KeyPair;
use std::time::Duration;

fn world() -> (SimNet, ace_directory::Framework, KeyPair) {
    let net = SimNet::new();
    net.add_host("core");
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    (net, fw, KeyPair::generate(&mut rand::thread_rng()))
}

#[test]
fn vcc3_lacks_presets_vcc4_has_them() {
    let (net, fw, me) = world();
    let vcc3 = Daemon::spawn(
        &net,
        fw.service_config("cam3", CameraModel::Vcc3.class_path(), "hawk", "core", 6000),
        Box::new(PtzCamera::new(CameraModel::Vcc3)),
    )
    .unwrap();
    let vcc4 = Daemon::spawn(
        &net,
        fw.service_config("cam4", CameraModel::Vcc4.class_path(), "hawk", "core", 6001),
        Box::new(PtzCamera::new(CameraModel::Vcc4)),
    )
    .unwrap();

    let mut c3 = ServiceClient::connect(&net, &"core".into(), vcc3.addr().clone(), &me).unwrap();
    let mut c4 = ServiceClient::connect(&net, &"core".into(), vcc4.addr().clone(), &me).unwrap();

    // The VCC3 rejects the VCC4-only command at the *semantics* layer —
    // it is simply not in its vocabulary (Fig. 6 inheritance).
    let err = c3
        .call(&CmdLine::new("ptzPresetStore").arg("name", "door"))
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Semantics));

    c4.call_ok(&CmdLine::new("ptzOn")).unwrap();
    c4.call_ok(&CmdLine::new("ptzMove").arg("x", 20.0)).unwrap();
    c4.call_ok(&CmdLine::new("ptzPresetStore").arg("name", "door"))
        .unwrap();
    c4.call_ok(&CmdLine::new("ptzMove").arg("x", 0.0)).unwrap();
    let recalled = c4
        .call(&CmdLine::new("ptzPresetRecall").arg("name", "door"))
        .unwrap();
    assert_eq!(recalled.get_f64("x"), Some(20.0));
    // Unknown preset.
    let err = c4
        .call(&CmdLine::new("ptzPresetRecall").arg("name", "roof"))
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::NotFound));

    vcc3.shutdown();
    vcc4.shutdown();
    fw.shutdown();
}

#[test]
fn camera_model_limits_differ() {
    let (net, fw, me) = world();
    let vcc3 = Daemon::spawn(
        &net,
        fw.service_config("cam3", CameraModel::Vcc3.class_path(), "hawk", "core", 6000),
        Box::new(PtzCamera::new(CameraModel::Vcc3)),
    )
    .unwrap();
    let mut c3 = ServiceClient::connect(&net, &"core".into(), vcc3.addr().clone(), &me).unwrap();
    c3.call_ok(&CmdLine::new("ptzOn")).unwrap();
    let moved = c3
        .call(&CmdLine::new("ptzMove").arg("x", 500.0).arg("zoom", 99.0))
        .unwrap();
    // VCC3: ±90 pan, 10x zoom (vs VCC4's ±100/16x).
    assert_eq!(moved.get_f64("x"), Some(90.0));
    assert_eq!(moved.get_f64("zoom"), Some(10.0));
    vcc3.shutdown();
    fw.shutdown();
}

#[test]
fn camera_relative_mode_and_power_rules() {
    let (net, fw, me) = world();
    let cam = Daemon::spawn(
        &net,
        fw.service_config("cam", CameraModel::Vcc4.class_path(), "hawk", "core", 6000),
        Box::new(PtzCamera::new(CameraModel::Vcc4)),
    )
    .unwrap();
    let mut c = ServiceClient::connect(&net, &"core".into(), cam.addr().clone(), &me).unwrap();

    // Powered off: movement refused.
    let err = c.call(&CmdLine::new("ptzMove").arg("x", 1.0)).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::BadState));

    c.call_ok(&CmdLine::new("ptzOn")).unwrap();
    c.call_ok(&CmdLine::new("ptzMove").arg("x", 10.0).arg("y", 5.0))
        .unwrap();
    let moved = c
        .call(
            &CmdLine::new("ptzMove")
                .arg("x", -4.0)
                .arg("y", 2.0)
                .arg("mode", "relative"),
        )
        .unwrap();
    assert_eq!(moved.get_f64("x"), Some(6.0));
    assert_eq!(moved.get_f64("y"), Some(7.0));

    let status = c.call(&CmdLine::new("ptzStatus")).unwrap();
    assert_eq!(status.get_int("moves"), Some(2));

    cam.shutdown();
    fw.shutdown();
}

#[test]
fn projector_state_rules() {
    let (net, fw, me) = world();
    let proj = Daemon::spawn(
        &net,
        fw.service_config("proj", Projector::CLASS, "hawk", "core", 6000),
        Box::new(Projector::new()),
    )
    .unwrap();
    let mut p = ServiceClient::connect(&net, &"core".into(), proj.addr().clone(), &me).unwrap();

    // Input selection requires power.
    let err = p
        .call(&CmdLine::new("projInput").arg("source", "workspace"))
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::BadState));

    p.call_ok(&CmdLine::new("projOn")).unwrap();
    p.call_ok(&CmdLine::new("projInput").arg("source", "workspace"))
        .unwrap();
    p.call_ok(&CmdLine::new("projPip").arg("source", "camera"))
        .unwrap();
    let status = p.call(&CmdLine::new("projStatus")).unwrap();
    assert_eq!(status.get_bool("powered"), Some(true));
    assert_eq!(status.get_text("pip"), Some("camera"));

    // PiP off.
    p.call_ok(&CmdLine::new("projPip").arg("source", "off"))
        .unwrap();
    let status = p.call(&CmdLine::new("projStatus")).unwrap();
    assert_eq!(status.get_text("pip"), Some("off"));

    proj.shutdown();
    fw.shutdown();
}
