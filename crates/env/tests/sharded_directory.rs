//! The canonical environment can grow a sharded directory plane alongside
//! its bootstrap ASD: the framework tier keeps resolving through the
//! single `asd`, while high-volume workloads route through the plane.

use ace_core::prelude::*;
use ace_core::protocol::ServiceEntry;
use ace_env::{AceEnvironment, EnvConfig};
use std::sync::Arc;

#[test]
fn environment_grows_a_sharded_directory_plane() {
    let env = AceEnvironment::build(EnvConfig::default()).unwrap();
    let dir = env.spawn_sharded_directory(2, 2).unwrap();
    assert_eq!(dir.map.shard_count(), 2);

    // Replicas land on the environment's compute hosts only.
    for addr in dir.map.all_replicas() {
        assert!(
            env.config
                .compute_hosts
                .iter()
                .any(|h| HostId::from(h.as_str()) == addr.host),
            "replica {addr} placed off the compute hosts"
        );
    }

    // Register + resolve through the plane.
    let pool = Arc::new(LinkPool::new(&env.net, "core", env.admin));
    let mut client = dir.client(Arc::clone(&pool));
    for i in 0..20 {
        let entry = ServiceEntry {
            name: format!("sensor{i}"),
            addr: Addr::new("podium", 6200 + i as u16),
            class: "Service.Device.Sensor".into(),
            room: "hawk".into(),
        };
        client.register(&entry, 1).unwrap();
    }
    let found = client.find("sensor7").unwrap().expect("sensor7 registered");
    assert_eq!(found.addr, Addr::new("podium", 6207));
    let in_hawk = client.lookup(None, None, Some("hawk")).unwrap();
    assert!(in_hawk.len() >= 20, "room fan-out must see every sensor");

    // The bootstrap ASD is a separate plane: the framework tier's own
    // registrations are there, the sensors are not.
    let mut boot = ServiceClient::connect(
        &env.net,
        &"core".into(),
        env.fw.asd_addr.clone(),
        &env.admin,
    )
    .unwrap();
    let reply = boot
        .call(&CmdLine::new("lookup").arg("name", "sensor7"))
        .unwrap();
    let entries = ace_core::protocol::entries_from_value(reply.get("services").unwrap()).unwrap();
    assert!(
        entries.is_empty(),
        "the bootstrap ASD must not see the sharded plane's registrations"
    );

    dir.shutdown();
    env.shutdown();
}
