//! Building-wide rolling upgrades over a running [`AceEnvironment`].
//!
//! The environment-level face of the live-upgrade subsystem
//! (`ace_core::supervise::live_upgrade`): every daemon is hot-swapped
//! one at a time — quiesce, snapshot, restore-validate, retire, respawn
//! under the next incarnation — while the rest of the building keeps
//! serving.  Sealed snapshots are persisted through the store cluster
//! (namespace `upgrade`, key = service name) before each swap commits,
//! so state survives even a botched replacement.

use crate::environment::AceEnvironment;
use ace_core::prelude::*;
use ace_directory::{Asd, NetLogger, RoomDb};
use ace_resources::{Hal, HostProfile, Hrm, Sal, Srm};
use ace_store::StoreReplica;

/// Builds the replacement behavior for one daemon in a rolling sweep;
/// `None` skips that daemon.
pub type ReplacementFactory<'a> =
    &'a mut dyn FnMut(&AceEnvironment, &DaemonHandle) -> Option<Box<dyn ServiceBehavior>>;

/// The upgrade-pause record of one daemon in a rolling sweep.
#[derive(Debug, Clone)]
pub struct RollingEntry {
    pub name: String,
    pub stats: UpgradeStats,
    /// Incarnation the replacement is serving under.
    pub incarnation: u64,
}

impl AceEnvironment {
    /// Hot-swap one named daemon (including store replicas addressed as
    /// `store_1`…) with `replacement`, persisting its sealed snapshot to
    /// the store cluster when one exists.  On success the environment's
    /// handle is replaced; every error except a replacement-spawn failure
    /// leaves the old incarnation serving.
    pub fn upgrade_daemon(
        &mut self,
        name: &str,
        replacement: Box<dyn ServiceBehavior>,
    ) -> Result<UpgradeStats, UpgradeError> {
        // The persist hook writes through the replica quorum; a quiesced
        // replica bounces its own copy with E_UPGRADING, and the other
        // two still make the majority.
        let mut store = self.store_client(self.admin);
        let mut persist = |svc: &str, bytes: &[u8]| -> Result<(), String> {
            match &mut store {
                Some(client) => client
                    .put("upgrade", svc, bytes)
                    .map(|_| ())
                    .map_err(|e| e.to_string()),
                None => Ok(()),
            }
        };
        let from: HostId = "core".into();

        if self.daemons.contains_key(name) {
            let old = &self.daemons[name];
            let (fresh, stats) = ace_core::live_upgrade(
                &self.net,
                &from,
                &self.admin,
                old,
                old.config().clone(),
                replacement,
                Some(&mut persist),
            )?;
            self.daemons.insert(name.to_string(), fresh);
            return Ok(stats);
        }
        if let Some(cluster) = &mut self.store {
            if let Some(idx) = cluster
                .replicas
                .iter()
                .position(|(handle, _)| handle.name() == name)
            {
                let old = &cluster.replicas[idx].0;
                let (fresh, stats) = ace_core::live_upgrade(
                    &self.net,
                    &from,
                    &self.admin,
                    old,
                    old.config().clone(),
                    replacement,
                    Some(&mut persist),
                )?;
                cluster.replicas[idx].0 = fresh;
                return Ok(stats);
            }
        }
        if let Some(old) = match name {
            "asd" => Some(&self.fw.asd),
            "roomdb" => Some(&self.fw.roomdb),
            "netlogger" => Some(&self.fw.logger),
            _ => None,
        } {
            let (fresh, stats) = ace_core::live_upgrade(
                &self.net,
                &from,
                &self.admin,
                old,
                old.config().clone(),
                replacement,
                Some(&mut persist),
            )?;
            match name {
                "asd" => self.fw.asd = fresh,
                "roomdb" => self.fw.roomdb = fresh,
                _ => self.fw.logger = fresh,
            }
            return Ok(stats);
        }
        Err(UpgradeError::Protocol(format!("no daemon named {name}")))
    }

    /// The stock replacement behavior for a daemon, by service class.
    /// Covers every service whose state is either carried by the upgrade
    /// snapshot or reconstructible from scratch (monitors, launchers, the
    /// framework tier); `None` means "this class holds state the snapshot
    /// protocol does not carry — supply your own replacement".
    pub fn default_replacement(&self, handle: &DaemonHandle) -> Option<Box<dyn ServiceBehavior>> {
        match handle.config().class.as_str() {
            "Service.Monitor.HRM" => Some(Box::new(Hrm::new(HostProfile::default()))),
            "Service.Launcher.HAL" => Some(Box::new(Hal::new())),
            "Service.Monitor.SRM" => Some(Box::new(Srm::default())),
            "Service.Launcher.SAL" => Some(Box::new(Sal::new())),
            "Service.ServiceDirectory" => Some(Box::new(Asd::new(self.config.lease))),
            "Service.Database.Room" => Some(Box::new(RoomDb::new())),
            "Service.Logger" => Some(Box::new(NetLogger::default())),
            "Service.Database.PersistentStore" => {
                let cluster = self.store.as_ref()?;
                let disk = cluster
                    .replicas
                    .iter()
                    .find(|(h, _)| h.name() == handle.name())
                    .map(|(_, disk)| disk.clone())?;
                Some(Box::new(StoreReplica::new(disk, self.config.store_sync)))
            }
            _ => None,
        }
    }

    /// Roll an upgrade across the whole building, one daemon at a time:
    /// every service daemon in spawn order, then the store replicas.
    /// `factory` builds each replacement (see [`Self::default_replacement`]
    /// for the stock ones); returning `None` skips that daemon.  The sweep
    /// stops at the first failed swap.
    pub fn rolling_upgrade(
        &mut self,
        factory: ReplacementFactory<'_>,
    ) -> Result<Vec<RollingEntry>, UpgradeError> {
        let mut rolled = Vec::new();
        let names: Vec<String> = self.teardown_order.clone();
        for name in names {
            let Some(old) = self.daemons.get(&name) else {
                continue;
            };
            let Some(replacement) = factory(self, old) else {
                continue;
            };
            let stats = self.upgrade_daemon(&name, replacement)?;
            rolled.push(RollingEntry {
                incarnation: self.daemons[&name].incarnation(),
                name,
                stats,
            });
        }
        let replica_names: Vec<String> = self
            .store
            .iter()
            .flat_map(|c| c.replicas.iter().map(|(h, _)| h.name().to_string()))
            .collect();
        for name in replica_names {
            let handle = &self
                .store
                .as_ref()
                .expect("store exists: names came from it")
                .replicas
                .iter()
                .find(|(h, _)| h.name() == name)
                .expect("replica exists")
                .0;
            let Some(replacement) = factory(self, handle) else {
                continue;
            };
            let stats = self.upgrade_daemon(&name, replacement)?;
            let incarnation = self
                .store
                .as_ref()
                .and_then(|c| c.replicas.iter().find(|(h, _)| h.name() == name))
                .map(|(h, _)| h.incarnation())
                .unwrap_or(0);
            rolled.push(RollingEntry {
                name,
                stats,
                incarnation,
            });
        }
        // Framework tier last — Net Logger, Room DB, then the ASD itself:
        // during the ASD's quiesce window every other daemon's lease
        // renewal bounces with retryable E_UPGRADING, and the restored
        // leases come back with fresh deadlines.
        for name in ["netlogger", "roomdb", "asd"] {
            let handle = match name {
                "asd" => &self.fw.asd,
                "roomdb" => &self.fw.roomdb,
                _ => &self.fw.logger,
            };
            let Some(replacement) = factory(self, handle) else {
                continue;
            };
            let stats = self.upgrade_daemon(name, replacement)?;
            let incarnation = match name {
                "asd" => self.fw.asd.incarnation(),
                "roomdb" => self.fw.roomdb.incarnation(),
                _ => self.fw.logger.incarnation(),
            };
            rolled.push(RollingEntry {
                name: name.to_string(),
                stats,
                incarnation,
            });
        }
        Ok(rolled)
    }
}
