//! The canonical ACE environment: every service of the paper, assembled.
//!
//! Builds the building of Fig. 18: framework tier (ASD, Room DB, Logger),
//! identity tier (AUD, AuthDB, FIU, iButton, ID Monitor), resource tier
//! (HRM/HAL per host, SRM/SAL), workspace tier (VNC hosts, WSS), persistent
//! store cluster, and the conference-room devices — fully wired so the §7
//! scenarios run end-to-end.

use crate::devices::{CameraModel, Projector, PtzCamera};
use ace_core::prelude::*;
use ace_core::SpawnError;
use ace_directory::{bootstrap, Framework, RoomDbClient};
use ace_identity::{AuthDb, Fiu, IButtonReader, IdMonitor, ScannerDevice, UserDb, UserDbClient};
use ace_resources::{spawn_host_services, spawn_system_services, HostProfile};
use ace_security::keys::KeyPair;
use ace_store::{spawn_store_cluster, StoreClient, StoreCluster};
use ace_workspace::{wire_wss, VncHost, Wss};
use std::collections::HashMap;
use std::time::Duration;

/// Tuning of the built environment.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// ASD lease duration.
    pub lease: Duration,
    /// Store anti-entropy interval.
    pub store_sync: Duration,
    /// Compute hosts (each gets HRM/HAL; the first two also VNC hosts and
    /// the first three the store replicas).
    pub compute_hosts: Vec<String>,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            lease: Duration::from_secs(10),
            store_sync: Duration::from_millis(200),
            compute_hosts: vec!["bar".into(), "tube".into(), "rod".into()],
        }
    }
}

/// The assembled environment.
pub struct AceEnvironment {
    pub net: SimNet,
    pub fw: Framework,
    pub store: Option<StoreCluster>,
    /// All service daemons by name.
    pub daemons: HashMap<String, DaemonHandle>,
    /// The administrator identity (fully trusted in examples/scenarios).
    pub admin: KeyPair,
    /// The tuning the environment was built with (rolling upgrades rebuild
    /// replacement behaviors from it).
    pub config: EnvConfig,
    pub(crate) teardown_order: Vec<String>,
}

impl AceEnvironment {
    /// Build the canonical environment.
    pub fn build(config: EnvConfig) -> Result<AceEnvironment, SpawnError> {
        let net = SimNet::new();
        net.add_host("core");
        net.add_host("podium"); // the conference-room access point
        for h in &config.compute_hosts {
            net.add_host(h.as_str());
        }

        let fw = bootstrap(&net, "core", config.lease)?;
        let admin = KeyPair::generate(&mut rand::thread_rng());
        let mut daemons: HashMap<String, DaemonHandle> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        let add = |daemons: &mut HashMap<String, DaemonHandle>,
                   order: &mut Vec<String>,
                   handle: DaemonHandle| {
            order.push(handle.name().to_string());
            daemons.insert(handle.name().to_string(), handle);
        };

        // Resource tier.
        for h in &config.compute_hosts {
            let (hrm, hal) = spawn_host_services(&net, &fw, h, HostProfile::default())?;
            add(&mut daemons, &mut order, hrm);
            add(&mut daemons, &mut order, hal);
        }
        let (srm, sal) = spawn_system_services(&net, &fw, "core")?;
        add(&mut daemons, &mut order, srm);
        add(&mut daemons, &mut order, sal);

        // Persistent store on the first three compute hosts.
        let store_hosts: Vec<&str> = config
            .compute_hosts
            .iter()
            .take(3)
            .map(String::as_str)
            .collect();
        let store = if store_hosts.len() == 3 {
            Some(spawn_store_cluster(
                &net,
                &fw,
                &store_hosts,
                config.store_sync,
            )?)
        } else {
            None
        };

        // Identity tier.
        add(
            &mut daemons,
            &mut order,
            Daemon::spawn(
                &net,
                fw.service_config("aud", "Service.Database.User", "machineroom", "core", 5200),
                Box::new(UserDb::new()),
            )?,
        );
        add(
            &mut daemons,
            &mut order,
            Daemon::spawn(
                &net,
                fw.service_config(
                    "authdb",
                    "Service.Database.Authorization",
                    "machineroom",
                    "core",
                    5400,
                ),
                Box::new(AuthDb::new()),
            )?,
        );
        add(
            &mut daemons,
            &mut order,
            Daemon::spawn(
                &net,
                fw.service_config(
                    "idmonitor",
                    "Service.IDMonitor",
                    "machineroom",
                    "core",
                    5301,
                ),
                Box::new(IdMonitor::new()),
            )?,
        );

        // Workspace tier: VNC hosts on the first two compute hosts.
        for h in config.compute_hosts.iter().take(2) {
            add(
                &mut daemons,
                &mut order,
                Daemon::spawn(
                    &net,
                    fw.service_config(
                        &format!("vnc_{h}"),
                        "Service.VNCHost",
                        "machineroom",
                        h,
                        5500,
                    ),
                    Box::new(VncHost::new()),
                )?,
            );
        }
        add(
            &mut daemons,
            &mut order,
            Daemon::spawn(
                &net,
                fw.service_config(
                    "wss",
                    "Service.WorkspaceServer",
                    "machineroom",
                    "core",
                    5600,
                ),
                Box::new(Wss::new()),
            )?,
        );

        // Conference room "hawk": identification devices + camera + projector.
        add(
            &mut daemons,
            &mut order,
            Daemon::spawn(
                &net,
                fw.service_config("fiu_hawk", "Service.Device.FIU", "hawk", "podium", 5300),
                Box::new(Fiu::new(ScannerDevice::default())),
            )?,
        );
        add(
            &mut daemons,
            &mut order,
            Daemon::spawn(
                &net,
                fw.service_config(
                    "ibutton_hawk",
                    "Service.Device.IButton",
                    "hawk",
                    "podium",
                    5310,
                ),
                Box::new(IButtonReader::new()),
            )?,
        );
        let camera_host = config
            .compute_hosts
            .first()
            .cloned()
            .unwrap_or_else(|| "core".into());
        add(
            &mut daemons,
            &mut order,
            Daemon::spawn(
                &net,
                fw.service_config(
                    "camera_hawk",
                    CameraModel::Vcc4.class_path(),
                    "hawk",
                    camera_host.as_str(),
                    5320,
                ),
                Box::new(PtzCamera::new(CameraModel::Vcc4)),
            )?,
        );
        add(
            &mut daemons,
            &mut order,
            Daemon::spawn(
                &net,
                fw.service_config(
                    "projector_hawk",
                    Projector::CLASS,
                    "hawk",
                    camera_host.as_str(),
                    5321,
                ),
                Box::new(Projector::new()),
            )?,
        );

        let env = AceEnvironment {
            net,
            fw,
            store,
            daemons,
            admin,
            config,
            teardown_order: order,
        };

        // Wiring (Fig. 18): ID Monitor listens to the identification
        // devices; the WSS listens to the AUD and the ID Monitor.
        IdMonitor::subscribe_to_devices(
            &env.net,
            &env.daemons["idmonitor"],
            &[&env.daemons["fiu_hawk"], &env.daemons["ibutton_hawk"]],
            &env.admin,
        )
        .map_err(|error| SpawnError::Register {
            step: "idmonitor wiring",
            error,
        })?;
        wire_wss(
            &env.net,
            &env.daemons["wss"],
            &env.daemons["aud"],
            Some(&env.daemons["idmonitor"]),
            &env.admin,
        )
        .map_err(|error| SpawnError::Register {
            step: "wss wiring",
            error,
        })?;

        // Seed the floor plan.
        let mut roomdb = RoomDbClient::connect(
            &env.net,
            &"core".into(),
            env.fw.roomdb_addr.clone(),
            &env.admin,
        )
        .map_err(|error| SpawnError::Register {
            step: "floor plan",
            error,
        })?;
        roomdb
            .define_room("hawk", "nichols", (8.0, 6.0, 3.0))
            .map_err(|error| SpawnError::Register {
                step: "floor plan",
                error,
            })?;

        Ok(env)
    }

    /// Address of a named service.
    pub fn addr_of(&self, name: &str) -> Option<Addr> {
        self.daemons.get(name).map(|d| d.addr().clone())
    }

    /// Connect a client (as the admin) to a named service.
    pub fn client(&self, name: &str) -> Result<ServiceClient, ClientError> {
        self.client_as(name, &self.admin)
    }

    /// Connect a client with a specific identity.
    pub fn client_as(&self, name: &str, identity: &KeyPair) -> Result<ServiceClient, ClientError> {
        let addr = self.addr_of(name).ok_or(ClientError::Service {
            code: ErrorCode::NotFound,
            msg: format!("no daemon {name}"),
        })?;
        ServiceClient::connect(&self.net, &"core".into(), addr, identity)
    }

    /// Register an ACE user end-to-end: AUD record plus fingerprint
    /// enrolment on the room scanner (Scenario 1's administrator steps).
    pub fn register_user(
        &self,
        username: &str,
        fullname: &str,
        password: &str,
        user_key: &KeyPair,
        fingerprint: Option<&str>,
        ibutton: Option<&str>,
    ) -> Result<(), ClientError> {
        let mut aud = UserDbClient::connect(
            &self.net,
            &"core".into(),
            self.addr_of("aud").expect("aud exists"),
            &self.admin,
        )?;
        aud.add_user(
            username,
            fullname,
            password,
            &user_key.principal(),
            fingerprint,
            ibutton,
        )?;
        if let Some(template) = fingerprint {
            let mut fiu = self.client("fiu_hawk")?;
            fiu.call_ok(
                &CmdLine::new("enrollTemplate")
                    .arg("template", Value::Str(template.into()))
                    .arg("quality", 0.95),
            )?;
        }
        Ok(())
    }

    /// A user presses their finger on the hawk-room scanner (Scenario 2).
    pub fn press_finger(&self, template: &str) -> Result<CmdLine, ClientError> {
        let mut fiu = self.client("fiu_hawk")?;
        fiu.call(&CmdLine::new("press").arg("template", Value::Str(template.into())))
    }

    /// Bring up a sharded, replicated directory plane on the environment's
    /// compute hosts (ports 5900+), for workloads whose registration or
    /// lookup volume outgrows the single bootstrap ASD.  The plane uses
    /// the environment's lease duration; callers route through
    /// [`ace_directory::ShardedAsdClient`] (the framework tier keeps using
    /// the bootstrap ASD).
    pub fn spawn_sharded_directory(
        &self,
        shards: usize,
        replication: usize,
    ) -> Result<ace_directory::ShardedDirectory, SpawnError> {
        let hosts: Vec<HostId> = self
            .config
            .compute_hosts
            .iter()
            .map(|h| HostId::from(h.as_str()))
            .collect();
        ace_directory::spawn_sharded_asd(
            &self.net,
            &hosts,
            shards,
            replication,
            self.config.lease,
            5900,
        )
    }

    /// Bring up a sharded store plane on the environment's compute hosts
    /// (ports 6100+), for workloads whose write volume outgrows a single
    /// quorum group.  Keys place by rendezvous hash of `namespace/key`;
    /// callers route through [`ace_store::ShardedStoreClient`] (see
    /// [`AceEnvironment::sharded_store_client`]).  The unsharded cluster
    /// keeps serving framework state.
    pub fn spawn_sharded_store(
        &self,
        shards: usize,
        replication: usize,
    ) -> Result<ace_store::ShardedStoreCluster, SpawnError> {
        let hosts: Vec<HostId> = self
            .config
            .compute_hosts
            .iter()
            .map(|h| HostId::from(h.as_str()))
            .collect();
        ace_store::spawn_sharded_store(
            &self.net,
            &hosts,
            shards,
            replication,
            self.config.store_sync,
            ace_store::WalConfig::default(),
        )
    }

    /// A routing client over a sharded store plane spawned with
    /// [`AceEnvironment::spawn_sharded_store`].
    pub fn sharded_store_client(
        &self,
        cluster: &ace_store::ShardedStoreCluster,
        identity: KeyPair,
    ) -> ace_store::ShardedStoreClient {
        cluster.client(
            &self.net,
            "core",
            identity,
            std::sync::Arc::new(LinkPool::new(&self.net, "core", identity)),
        )
    }

    /// A store client over the environment's replica cluster.
    pub fn store_client(&self, identity: KeyPair) -> Option<StoreClient> {
        self.store.as_ref().map(|cluster| {
            StoreClient::new(self.net.clone(), "core", identity, cluster.addrs.clone())
        })
    }

    /// Graceful teardown in reverse spawn order.
    pub fn shutdown(mut self) {
        for name in self.teardown_order.iter().rev() {
            if let Some(handle) = self.daemons.remove(name) {
                handle.shutdown();
            }
        }
        if let Some(store) = self.store.take() {
            store.shutdown();
        }
        self.fw.shutdown();
    }
}

impl std::fmt::Debug for AceEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AceEnvironment({} daemons + framework)",
            self.daemons.len()
        )
    }
}
