//! # ace-env — assembled ACE environments
//!
//! Everything needed to stand up a whole Ambient Computational Environment
//! in one call and run the paper's §7 scenarios against it:
//!
//! * [`AceEnvironment`] — the Fig. 18 building: framework tier, identity
//!   tier, resource tier, workspace tier, persistent store, and the
//!   conference-room devices, fully wired;
//! * [`devices`] — the ACE-enabled device simulators (Canon VCC3/VCC4 PTZ
//!   cameras, Epson 7350 projector) behind the Fig. 6 hierarchy.

pub mod devices;
pub mod environment;
pub mod upgrade;

pub use devices::{CameraModel, Projector, PtzCamera};
pub use environment::{AceEnvironment, EnvConfig};
pub use upgrade::{ReplacementFactory, RollingEntry};
