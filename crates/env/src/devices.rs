//! ACE-enabled device simulators (§1.2, Fig. 1–3).
//!
//! "For a device to be ACE enabled, it must have low-level interface
//! software developed for it so that ACE services may communicate with
//! them."  The Canon VCC3/VCC4 PTZ cameras and the Epson 7350 projector of
//! Fig. 6 are simulated as state machines behind the exact service-daemon
//! hierarchy the paper draws: both camera models share the PTZ command set,
//! the VCC4 extends it (presets), and the projector has its own vocabulary.

use ace_core::prelude::*;

/// Camera model — the leaves of the Fig. 6 `PTZCamera` subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CameraModel {
    /// Canon VCC3: ±90° pan, ±25° tilt, 10× zoom.
    Vcc3,
    /// Canon VCC4: ±100° pan, ±30° tilt, 16× zoom, position presets.
    Vcc4,
}

impl CameraModel {
    /// `(pan, tilt, zoom)` limits.
    pub fn limits(&self) -> (f64, f64, f64) {
        match self {
            CameraModel::Vcc3 => (90.0, 25.0, 10.0),
            CameraModel::Vcc4 => (100.0, 30.0, 16.0),
        }
    }

    /// Class path in the service hierarchy.
    pub fn class_path(&self) -> &'static str {
        match self {
            CameraModel::Vcc3 => "Service.Device.PTZCamera.VCC3",
            CameraModel::Vcc4 => "Service.Device.PTZCamera.VCC4",
        }
    }
}

/// A pan-tilt-zoom camera simulator.
pub struct PtzCamera {
    model: CameraModel,
    powered: bool,
    pan: f64,
    tilt: f64,
    zoom: f64,
    /// Stored presets (VCC4 only).
    presets: Vec<(String, f64, f64, f64)>,
    moves: u64,
}

impl PtzCamera {
    pub fn new(model: CameraModel) -> PtzCamera {
        PtzCamera {
            model,
            powered: false,
            pan: 0.0,
            tilt: 0.0,
            zoom: 1.0,
            presets: Vec::new(),
            moves: 0,
        }
    }

    /// Shared PTZ command set (the `PTZCamera` level of the hierarchy).
    fn ptz_semantics() -> Semantics {
        Semantics::new()
            .with(CmdSpec::new("ptzOn", "power the camera on"))
            .with(CmdSpec::new("ptzOff", "power the camera off"))
            .with(
                CmdSpec::new("ptzMove", "move the camera")
                    .optional("x", ArgType::Float, "pan angle (degrees)")
                    .optional("y", ArgType::Float, "tilt angle (degrees)")
                    .optional("zoom", ArgType::Float, "zoom factor")
                    .optional("mode", ArgType::Word, "absolute (default) | relative"),
            )
            .with(CmdSpec::new("ptzStatus", "position and power state"))
    }
}

impl ServiceBehavior for PtzCamera {
    fn semantics(&self) -> Semantics {
        // Fig. 6: VCC4 = PTZCamera + presets; VCC3 = PTZCamera as-is.
        let base = Self::ptz_semantics();
        match self.model {
            CameraModel::Vcc3 => base,
            CameraModel::Vcc4 => Semantics::new()
                .with(
                    CmdSpec::new("ptzPresetStore", "store the current position as a preset")
                        .required("name", ArgType::Word, "preset name"),
                )
                .with(
                    CmdSpec::new("ptzPresetRecall", "recall a stored preset").required(
                        "name",
                        ArgType::Word,
                        "preset name",
                    ),
                )
                .inheriting(&base),
        }
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "ptzOn" => {
                self.powered = true;
                Reply::ok()
            }
            "ptzOff" => {
                self.powered = false;
                Reply::ok()
            }
            "ptzMove" => {
                if !self.powered {
                    return Reply::err(ErrorCode::BadState, "camera is powered off");
                }
                let (pan_max, tilt_max, zoom_max) = self.model.limits();
                let relative = cmd.get_text("mode") == Some("relative");
                let (mut pan, mut tilt, mut zoom) = (self.pan, self.tilt, self.zoom);
                if let Some(x) = cmd.get_f64("x") {
                    pan = if relative { pan + x } else { x };
                }
                if let Some(y) = cmd.get_f64("y") {
                    tilt = if relative { tilt + y } else { y };
                }
                if let Some(z) = cmd.get_f64("zoom") {
                    zoom = if relative { zoom * z } else { z };
                }
                pan = pan.clamp(-pan_max, pan_max);
                tilt = tilt.clamp(-tilt_max, tilt_max);
                zoom = zoom.clamp(1.0, zoom_max);
                (self.pan, self.tilt, self.zoom) = (pan, tilt, zoom);
                self.moves += 1;
                ctx.fire_event(
                    CmdLine::new("ptzMoved")
                        .arg("x", pan)
                        .arg("y", tilt)
                        .arg("zoom", zoom),
                );
                Reply::ok_with(|c| c.arg("x", pan).arg("y", tilt).arg("zoom", zoom))
            }
            "ptzStatus" => Reply::ok_with(|c| {
                c.arg("powered", self.powered)
                    .arg("x", self.pan)
                    .arg("y", self.tilt)
                    .arg("zoom", self.zoom)
                    .arg("moves", self.moves as i64)
                    .arg(
                        "model",
                        match self.model {
                            CameraModel::Vcc3 => "VCC3",
                            CameraModel::Vcc4 => "VCC4",
                        },
                    )
            }),
            "ptzPresetStore" if self.model == CameraModel::Vcc4 => {
                let name = cmd.get_text("name").expect("validated").to_string();
                self.presets.retain(|(n, _, _, _)| n != &name);
                self.presets.push((name, self.pan, self.tilt, self.zoom));
                Reply::ok()
            }
            "ptzPresetRecall" if self.model == CameraModel::Vcc4 => {
                if !self.powered {
                    return Reply::err(ErrorCode::BadState, "camera is powered off");
                }
                let name = cmd.get_text("name").expect("validated");
                match self.presets.iter().find(|(n, _, _, _)| n == name) {
                    Some(&(_, pan, tilt, zoom)) => {
                        (self.pan, self.tilt, self.zoom) = (pan, tilt, zoom);
                        self.moves += 1;
                        ctx.fire_event(
                            CmdLine::new("ptzMoved")
                                .arg("x", pan)
                                .arg("y", tilt)
                                .arg("zoom", zoom),
                        );
                        Reply::ok_with(|c| c.arg("x", pan).arg("y", tilt).arg("zoom", zoom))
                    }
                    None => Reply::err(ErrorCode::NotFound, format!("no preset {name}")),
                }
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// An Epson 7350 projector simulator.
pub struct Projector {
    powered: bool,
    input: String,
    pip: Option<String>,
}

impl Projector {
    pub fn new() -> Projector {
        Projector {
            powered: false,
            input: "none".into(),
            pip: None,
        }
    }

    /// Class path of the Fig. 6 `Projector.Epson7350` leaf.
    pub const CLASS: &'static str = "Service.Device.Projector.Epson7350";
}

impl Default for Projector {
    fn default() -> Self {
        Projector::new()
    }
}

impl ServiceBehavior for Projector {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(CmdSpec::new("projOn", "power the projector on"))
            .with(CmdSpec::new("projOff", "power the projector off"))
            .with(
                CmdSpec::new("projInput", "select the projected source").required(
                    "source",
                    ArgType::Word,
                    "e.g. workspace | camera",
                ),
            )
            .with(
                CmdSpec::new("projPip", "picture-in-picture source (or off)").required(
                    "source",
                    ArgType::Word,
                    "source name or `off`",
                ),
            )
            .with(CmdSpec::new("projStatus", "power and source state"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "projOn" => {
                self.powered = true;
                ctx.fire_event(CmdLine::new("projectorChanged").arg("powered", true));
                Reply::ok()
            }
            "projOff" => {
                self.powered = false;
                ctx.fire_event(CmdLine::new("projectorChanged").arg("powered", false));
                Reply::ok()
            }
            "projInput" => {
                if !self.powered {
                    return Reply::err(ErrorCode::BadState, "projector is powered off");
                }
                self.input = cmd.get_text("source").expect("validated").to_string();
                let input = self.input.clone();
                ctx.fire_event(CmdLine::new("projectorChanged").arg("input", input.as_str()));
                Reply::ok()
            }
            "projPip" => {
                if !self.powered {
                    return Reply::err(ErrorCode::BadState, "projector is powered off");
                }
                let source = cmd.get_text("source").expect("validated");
                self.pip = (source != "off").then(|| source.to_string());
                Reply::ok()
            }
            "projStatus" => Reply::ok_with(|c| {
                c.arg("powered", self.powered)
                    .arg("input", self.input.as_str())
                    .arg("pip", self.pip.clone().unwrap_or_else(|| "off".into()))
            }),
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}
