//! # ace-bench — the experiment harness
//!
//! One module per group of experiments from DESIGN.md's index; the
//! `experiments` binary runs them all and prints the tables recorded in
//! EXPERIMENTS.md.  Criterion micro-benchmarks for the stable kernels live
//! in `benches/`.

pub mod exp_directory;
pub mod exp_framework;
pub mod exp_lang;
pub mod exp_media;
pub mod exp_resources;
pub mod exp_scenarios;
pub mod exp_security;
pub mod exp_store;
pub mod exp_workspace;
pub mod util;

/// Every experiment, in id order: `(id, runner)`.
pub fn all_experiments() -> Vec<(&'static str, fn())> {
    vec![
        ("e01", exp_framework::e01 as fn()),
        ("e02", exp_lang::e02),
        ("e03", exp_lang::e03),
        ("e04", exp_framework::e04),
        ("e05", exp_directory::e05),
        ("e06", exp_framework::e06),
        ("e07", exp_framework::e07),
        ("e08", exp_security::e08),
        ("e09", exp_resources::e09),
        ("e10", exp_resources::e10),
        ("e11", exp_media::e11),
        ("e12", exp_media::e12),
        ("e13", exp_media::e13),
        ("e14", exp_workspace::e14),
        ("e15", exp_store::e15),
        ("e16", exp_scenarios::e16),
        ("e17", exp_scenarios::e17),
        ("e18", exp_framework::e18),
        ("e19", exp_store::e19),
        ("e20", exp_directory::e20),
    ]
}
