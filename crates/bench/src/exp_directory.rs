//! E5 + E20 — service discovery (Fig. 7) vs the Jini baseline, and the
//! three-architecture comparison (§8).

use crate::util::*;
use ace_baselines::{CentralClient, CentralServer, JiniClient, JiniLookup, JiniProxy};
use ace_core::prelude::*;
use ace_core::protocol::ServiceEntry;
use ace_directory::{bootstrap, AsdClient};
use ace_env::{CameraModel, PtzCamera};
use ace_security::keys::KeyPair;
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

/// E5 (Fig. 7): ASD lookup latency vs registry size, against Jini-style
/// multicast discovery + proxy lookup.
pub fn e05() {
    header(
        "E5",
        "Fig. 7",
        "service discovery: ASD vs Jini-style baseline",
    );
    row("registry size", &["ASD lookup".into(), "ASD bytes".into()]);
    let me = keypair();
    for size in [10usize, 100, 1000, 10000] {
        let net = SimNet::new();
        net.add_host("core");
        let fw = bootstrap(&net, "core", Duration::from_secs(600)).unwrap();
        let mut asd = AsdClient::connect(&net, &"core".into(), fw.asd_addr.clone(), &me).unwrap();
        for i in 0..size {
            asd.register(&ServiceEntry {
                name: format!("svc{i}"),
                addr: Addr::new("core", 30000 + (i % 30000) as u16),
                class: if i == size / 2 {
                    "Service.Device.PTZCamera.VCC4".into()
                } else {
                    "Service.Filler".into()
                },
                room: "warehouse".into(),
            })
            .unwrap();
        }
        let before = net.metrics().snapshot();
        let latency = time_median(50, || {
            let found = asd.lookup(None, Some("PTZCamera"), None).unwrap();
            assert_eq!(found.len(), 1);
        });
        let delta = net.metrics().snapshot().since(&before);
        row(
            &format!("{size} services"),
            &[
                fmt_dur(latency),
                format!("{}", delta.frame_bytes / (delta.frames / 2).max(1)),
            ],
        );
        fw.shutdown();
    }

    // The Jini baseline: discovery (multicast rounds) + lookup via RMI.
    println!("  -- Jini-style baseline --");
    let net = SimNet::new();
    net.add_host("registrar");
    net.add_host("client");
    let lookup_svc = JiniLookup::start(&net, "registrar", 4500).unwrap();
    // One registered proxy.
    let mut reg_client =
        JiniClient::connect(&net, &"client".into(), lookup_svc.addr().clone()).unwrap();
    reg_client
        .register(&JiniProxy {
            name: "cam1".into(),
            interface: "edu.ku.ittc.ace.PTZCamera".into(),
            host: "bar".into(),
            port: 1234,
        })
        .unwrap();

    let mut port = 4600u16;
    let discovery = time_median(10, || {
        let (_, rounds) =
            ace_baselines::discover(&net, &"client".into(), port, Duration::from_millis(20), 10)
                .unwrap();
        assert!(rounds >= 1);
        port += 1;
    });
    let before = net.metrics().snapshot();
    let lookup_latency = time_median(50, || {
        std::hint::black_box(reg_client.lookup("cam1").unwrap());
    });
    let delta = net.metrics().snapshot().since(&before);
    row(
        "Jini multicast discovery (registrar up)",
        &[fmt_dur(discovery), String::new()],
    );
    row(
        "Jini proxy lookup (RMI, plaintext)",
        &[
            fmt_dur(lookup_latency),
            format!("{}", delta.frame_bytes / (delta.frames / 2).max(1)),
        ],
    );
    lookup_svc.shutdown();

    // The multicast cost the ASD's known socket avoids: when the registrar
    // is not up yet, discovery burns announcement rounds (real Jini
    // announces every few seconds; 50 ms here).
    {
        let net = SimNet::new();
        net.add_host("registrar");
        net.add_host("client");
        let net2 = net.clone();
        let starter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            JiniLookup::start(&net2, "registrar", 4500).unwrap()
        });
        let t = std::time::Instant::now();
        let (_, rounds) =
            ace_baselines::discover(&net, &"client".into(), 4600, Duration::from_millis(50), 100)
                .unwrap();
        row(
            "Jini discovery, registrar 150ms late",
            &[fmt_dur(t.elapsed()), format!("{rounds} rounds")],
        );
        starter.join().unwrap().shutdown();
    }
    println!("  note: ACE lookups run over encrypted, identity-proven links;");
    println!("        the Jini baseline's RMI frames are plaintext — compare bytes,");
    println!("        and the discovery rows, not raw lookup latency.");
}

/// E20 (§8): the same device-control workload against the three
/// architectures — ACE distributed daemons, a WebSphere-style central
/// server, and Jini-style lookup (setup cost) — under increasing client
/// concurrency.
pub fn e20() {
    header(
        "E20",
        "§8",
        "architecture comparison under concurrent clients",
    );
    row(
        "clients",
        &["ACE daemons ops/s".into(), "central server ops/s".into()],
    );
    const OPS: usize = 100;
    for clients in [1usize, 2, 4, 8] {
        // ── ACE: one camera daemon per client host (distributed state) ──
        let ace_ops = {
            let net = SimNet::new();
            net.add_host("core");
            let fw = bootstrap(&net, "core", Duration::from_secs(120)).unwrap();
            let mut daemons = Vec::new();
            for i in 0..clients {
                let host = format!("h{i}");
                net.add_host(host.as_str());
                daemons.push(
                    Daemon::spawn(
                        &net,
                        fw.service_config(
                            &format!("cam{i}"),
                            CameraModel::Vcc3.class_path(),
                            "hawk",
                            host.as_str(),
                            6000,
                        ),
                        Box::new(PtzCamera::new(CameraModel::Vcc3)),
                    )
                    .unwrap(),
                );
            }
            let addrs: Vec<Addr> = daemons.iter().map(|d| d.addr().clone()).collect();
            let total = time_once(|| {
                let mut joins = Vec::new();
                for (i, addr) in addrs.iter().enumerate() {
                    let net = net.clone();
                    let addr = addr.clone();
                    joins.push(std::thread::spawn(move || {
                        let me = keypair();
                        let host: HostId = format!("h{i}").into();
                        let mut client = ServiceClient::connect(&net, &host, addr, &me).unwrap();
                        client.call_ok(&CmdLine::new("ptzOn")).unwrap();
                        for j in 0..OPS {
                            client
                                .call(&CmdLine::new("ptzMove").arg("x", (j % 90) as i64))
                                .unwrap();
                        }
                    }));
                }
                for j in joins {
                    j.join().unwrap();
                }
            });
            let ops = ops_per_sec(clients * OPS, total);
            for d in daemons {
                d.shutdown();
            }
            fw.shutdown();
            ops
        };

        // ── Central server: all device state behind one dispatcher ──
        let central_ops = {
            let net = SimNet::new();
            net.add_host("server");
            for i in 0..clients {
                net.add_host(format!("h{i}"));
            }
            let server = CentralServer::start(&net, "server", 8080).unwrap();
            let total = time_once(|| {
                let mut joins = Vec::new();
                for i in 0..clients {
                    let net = net.clone();
                    let addr = server.addr().clone();
                    joins.push(std::thread::spawn(move || {
                        let host: HostId = format!("h{i}").into();
                        let mut client = CentralClient::connect(&net, &host, addr).unwrap();
                        for j in 0..OPS {
                            assert!(client.put(&format!("cam{i}"), "pan", &j.to_string()));
                        }
                    }));
                }
                for j in joins {
                    j.join().unwrap();
                }
            });
            let ops = ops_per_sec(clients * OPS, total);
            server.shutdown();
            ops
        };

        row(
            &format!("{clients}"),
            &[format!("{ace_ops:.0}"), format!("{central_ops:.0}")],
        );
    }
}
