//! E11, E12, E13 — conversion throughput (Fig. 13), distribution fan-out
//! (Fig. 14), and the audio-conferencing graph (Fig. 15).

use crate::util::*;
use ace_core::prelude::*;
use ace_core::protocol::hex_encode;
use ace_directory::bootstrap;
use ace_media::dsp;
use ace_media::{AudioMixer, AudioSink, Converter, Distribution, EchoCancel, Format};
use ace_security::keys::KeyPair;
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

struct MediaWorld {
    net: SimNet,
    fw: ace_directory::Framework,
    daemons: Vec<DaemonHandle>,
    me: KeyPair,
}

impl MediaWorld {
    fn new() -> MediaWorld {
        let net = SimNet::new();
        net.add_host("core");
        net.add_host("media");
        let fw = bootstrap(&net, "core", Duration::from_secs(120)).unwrap();
        MediaWorld {
            net,
            fw,
            daemons: Vec::new(),
            me: keypair(),
        }
    }

    fn spawn(&mut self, name: &str, b: Box<dyn ace_core::ServiceBehavior>, port: u16) -> Addr {
        let d = Daemon::spawn(
            &self.net,
            self.fw
                .service_config(name, "Service.Media", "hawk", "media", port),
            b,
        )
        .unwrap();
        let addr = d.addr().clone();
        self.daemons.push(d);
        addr
    }

    fn client(&self, addr: &Addr) -> ServiceClient {
        ServiceClient::connect(&self.net, &"core".into(), addr.clone(), &self.me).unwrap()
    }

    fn teardown(self) {
        for d in self.daemons.into_iter().rev() {
            d.shutdown();
        }
        self.fw.shutdown();
    }
}

fn add_sink(c: &mut ServiceClient, sink: &Addr) {
    c.call_ok(
        &CmdLine::new("addSink")
            .arg("host", sink.host.as_str())
            .arg("port", sink.port),
    )
    .unwrap();
}

/// E11 (Fig. 13): conversion throughput and compression ratios through a
/// converter daemon, for flat and noisy "video" frames and µ-law audio.
pub fn e11() {
    header("E11", "Fig. 13", "converter throughput and compression");
    row(
        "workload",
        &[
            "frames/s".into(),
            "in bytes".into(),
            "out bytes".into(),
            "ratio".into(),
        ],
    );
    const FRAMES: usize = 40;

    let flat_frame = vec![0x20u8; 4096];
    let noisy_frame: Vec<u8> = (0..4096u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect();
    let audio_frame = dsp::samples_to_bytes(&dsp::sine(800.0, 0.5, 2048, 0.0));

    for (label, from, to, frame) in [
        ("flat video raw→rle", Format::Raw, Format::Rle, &flat_frame),
        (
            "noisy video raw→rle",
            Format::Raw,
            Format::Rle,
            &noisy_frame,
        ),
        (
            "audio pcm16→ulaw",
            Format::Pcm16,
            Format::Ulaw,
            &audio_frame,
        ),
    ] {
        let mut w = MediaWorld::new();
        let sink = w.spawn("sink", Box::new(AudioSink::new()), 6000);
        let conv = w.spawn("conv", Box::new(Converter::new(from, to)), 6001);
        let mut c = w.client(&conv);
        // µ-law output is not PCM16; skip the sink for that case to keep
        // frames/s comparable (terminal converter).
        if to != Format::Ulaw {
            let _ = &sink;
        } else {
            add_sink(&mut c, &sink); // AudioSink rejects odd lengths only
        }
        let push = CmdLine::new("push")
            .arg("stream", "s")
            .arg("seq", 0)
            .arg("data", hex_encode(frame));
        let total = time_once(|| {
            for _ in 0..FRAMES {
                c.call(&push).unwrap();
            }
        });
        let stats = c.call(&CmdLine::new("convertStats")).unwrap();
        let bytes_in = stats.get_int("bytesIn").unwrap() as f64;
        let bytes_out = stats.get_int("bytesOut").unwrap() as f64;
        row(
            label,
            &[
                format!("{:.0}", ops_per_sec(FRAMES, total)),
                format!("{}", frame.len()),
                format!("{:.0}", bytes_out / FRAMES as f64),
                format!("{:.1}x", bytes_in / bytes_out.max(1.0)),
            ],
        );
        w.teardown();
    }
}

/// E12 (Fig. 14): distribution fan-out throughput vs sink count.
pub fn e12() {
    header("E12", "Fig. 14", "distribution fan-out");
    row("sinks", &["frames/s".into(), "deliveries/s".into()]);
    const FRAMES: usize = 30;
    let frame = dsp::samples_to_bytes(&dsp::sine(440.0, 0.4, 512, 0.0));
    for sinks in [1usize, 4, 16, 64] {
        let mut w = MediaWorld::new();
        let sink_addrs: Vec<Addr> = (0..sinks)
            .map(|i| {
                w.spawn(
                    &format!("sink{i}"),
                    Box::new(AudioSink::new()),
                    6100 + i as u16,
                )
            })
            .collect();
        let dist = w.spawn("dist", Box::new(Distribution::new()), 6000);
        let mut d = w.client(&dist);
        for s in &sink_addrs {
            add_sink(&mut d, s);
        }
        let push = CmdLine::new("push")
            .arg("stream", "s")
            .arg("seq", 0)
            .arg("data", hex_encode(&frame));
        let total = time_once(|| {
            for _ in 0..FRAMES {
                d.call(&push).unwrap();
            }
        });
        row(
            &format!("{sinks}"),
            &[
                format!("{:.0}", ops_per_sec(FRAMES, total)),
                format!("{:.0}", ops_per_sec(FRAMES * sinks, total)),
            ],
        );
        w.teardown();
    }
}

/// E13 (Fig. 15): the conferencing graph — per-frame latency through the
/// mixer→echo→distribution chain and the achieved echo suppression.
pub fn e13() {
    header("E13", "Fig. 15", "audio conferencing graph");
    const FRAME: usize = 160;
    const FRAMES: usize = 32;
    const DELAY: usize = 40;

    let mut w = MediaWorld::new();
    let recorder = w.spawn("recorder", Box::new(AudioSink::new()), 6000);
    let echo = w.spawn("echo", Box::new(EchoCancel::new(DELAY)), 6001);
    let mixer_addr = w.spawn("micmix", Box::new(AudioMixer::new("mic")), 6002);
    let dist = w.spawn("dist", Box::new(Distribution::new()), 6003);

    let mut mixer = w.client(&mixer_addr);
    mixer
        .call_ok(&CmdLine::new("addInput").arg("stream", "voice"))
        .unwrap();
    mixer
        .call_ok(&CmdLine::new("addInput").arg("stream", "echopath"))
        .unwrap();
    add_sink(&mut mixer, &echo);
    let mut echo_c = w.client(&echo);
    add_sink(&mut echo_c, &dist);
    let mut dist_c = w.client(&dist);
    add_sink(&mut dist_c, &recorder);

    let voice = dsp::sine(700.0, 0.3, FRAME * FRAMES, 0.0);
    let far_end = dsp::sine(1900.0, 0.4, FRAME * FRAMES, 1.0);
    let echoed = dsp::delay(&far_end, DELAY);

    let push = |c: &mut ServiceClient, cmd: &str, stream: &str, seq: usize, s: &[i16]| {
        c.call(
            &CmdLine::new(cmd)
                .arg("stream", stream)
                .arg("seq", seq as i64)
                .arg("data", hex_encode(&dsp::samples_to_bytes(s))),
        )
        .unwrap();
    };

    let total = time_once(|| {
        for seq in 0..FRAMES {
            let range = seq * FRAME..(seq + 1) * FRAME;
            push(&mut echo_c, "pushRef", "ref", seq, &far_end[range.clone()]);
            push(&mut mixer, "push", "voice", seq, &voice[range.clone()]);
            push(&mut mixer, "push", "echopath", seq, &echoed[range]);
        }
    });

    let mut rec = w.client(&recorder);
    let power = |c: &mut ServiceClient, freq: f64| -> f64 {
        c.call(&CmdLine::new("sinkPower").arg("freq", freq))
            .unwrap()
            .get_f64("power")
            .unwrap()
    };
    let p_voice = power(&mut rec, 700.0);
    let p_residual = power(&mut rec, 1900.0);
    let suppression_db = 10.0 * (0.16 / p_residual.max(1e-12)).log10();

    row(
        "per mic frame (3 hops)",
        &[fmt_dur(total / (FRAMES as u32 * 3))],
    );
    row(
        "frames/s (20ms frames)",
        &[format!("{:.0}", ops_per_sec(FRAMES, total))],
    );
    row("voice power at recorder", &[format!("{p_voice:.4}")]);
    row("echo residual power", &[format!("{p_residual:.6}")]);
    row("echo suppression", &[format!("{suppression_db:.0} dB")]);
    w.teardown();
}
