//! E16 + E17 — the §7 scenario chains with per-step latencies (Fig. 18 and
//! the numbered steps of Fig. 19).

use crate::util::*;
use ace_core::prelude::*;
use ace_env::{AceEnvironment, EnvConfig};
use ace_security::keys::KeyPair;
use std::time::{Duration, Instant};

fn wait_for(mut probe: impl FnMut() -> bool) -> Duration {
    let start = Instant::now();
    let deadline = start + Duration::from_secs(30);
    loop {
        if probe() {
            return start.elapsed();
        }
        assert!(Instant::now() < deadline, "step never completed");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// E16 (Fig. 18 / Scenario 1): new-user provisioning chain, step by step.
pub fn e16() {
    header("E16", "Fig. 18", "scenario 1: new user & default workspace");
    let build = Instant::now();
    let ace = AceEnvironment::build(EnvConfig::default()).unwrap();
    row(
        "environment build",
        &[
            fmt_dur(build.elapsed()),
            format!("{} daemons", ace.daemons.len()),
        ],
    );

    let john = KeyPair::generate(&mut rand::thread_rng());
    let t = Instant::now();
    ace.register_user("jdoe", "John Doe", "pw", &john, Some("fp_jdoe"), None)
        .unwrap();
    row(
        "AUD registration + FIU enrolment",
        &[fmt_dur(t.elapsed()), String::new()],
    );

    let mut wss = ace.client("wss").unwrap();
    let took = wait_for(|| {
        wss.call(&CmdLine::new("wssList").arg("user", "jdoe"))
            .map(|r| r.get_int("count") == Some(1))
            .unwrap_or(false)
    });
    row(
        "default workspace (AUD→WSS→SAL→SRM→HAL→VNC)",
        &[fmt_dur(took), String::new()],
    );
    ace.shutdown();
}

/// E17 (Fig. 19 / Scenarios 2–3): identification → workspace display, with
/// the figure's numbered steps timed individually.
pub fn e17() {
    header(
        "E17",
        "Fig. 19",
        "scenarios 2–3: identification to workspace display",
    );
    let ace = AceEnvironment::build(EnvConfig::default()).unwrap();
    let john = KeyPair::generate(&mut rand::thread_rng());
    ace.register_user("jdoe", "John Doe", "pw", &john, Some("fp_jdoe"), None)
        .unwrap();
    let mut wss = ace.client("wss").unwrap();
    wait_for(|| {
        wss.call(&CmdLine::new("wssList").arg("user", "jdoe"))
            .map(|r| r.get_int("count") == Some(1))
            .unwrap_or(false)
    });

    // Step 1-2: the press and FIU match (synchronous round-trip).
    let t = Instant::now();
    let reply = ace.press_finger("fp_jdoe").unwrap();
    let press = t.elapsed();
    assert_eq!(reply.get_bool("identified"), Some(true));
    row("[1-2] press → FIU match → AUD resolve", &[fmt_dur(press)]);

    // Step 3-4: ID Monitor notified, AUD location updated.
    let mut aud = ace.client("aud").unwrap();
    let took = wait_for(|| {
        aud.call(&CmdLine::new("getLocation").arg("username", "jdoe"))
            .map(|r| r.get_text("room") == Some("hawk"))
            .unwrap_or(false)
    });
    row(
        "[3-4] notification → ID Monitor → AUD update",
        &[fmt_dur(took)],
    );

    // Step 5-7: WSS shows the workspace at the access point.
    let took = wait_for(|| {
        wss.call(&CmdLine::new("wssStats"))
            .map(|r| r.get_int("shows").unwrap_or(0) >= 1)
            .unwrap_or(false)
    });
    row("[5-7] userAt → WSS → SAL viewer launch", &[fmt_dur(took)]);

    // Whole chain, repeated now that all connections are warm.
    let t = Instant::now();
    ace.press_finger("fp_jdoe").unwrap();
    let shows_target = wss
        .call(&CmdLine::new("wssStats"))
        .unwrap()
        .get_int("shows")
        .unwrap()
        + 1;
    let warm = wait_for(|| {
        wss.call(&CmdLine::new("wssStats"))
            .map(|r| r.get_int("shows").unwrap_or(0) >= shows_target)
            .unwrap_or(false)
    }) + t.elapsed();
    row("whole chain, warm (press → shown)", &[fmt_dur(warm)]);

    ace.shutdown();
}
