//! E14 — VNC-like workspaces (Fig. 16): attach latency and framebuffer
//! update throughput.

use crate::util::*;
use ace_core::prelude::*;
use ace_core::protocol::hex_encode;
use ace_directory::bootstrap;
use ace_security::keys::KeyPair;
use ace_workspace::{VncHost, VncViewer};
use std::time::Duration;

pub fn e14() {
    header(
        "E14",
        "Fig. 16",
        "workspace attach latency and update throughput",
    );
    let net = SimNet::new();
    net.add_host("core");
    net.add_host("vhost");
    net.add_host("podium");
    let fw = bootstrap(&net, "core", Duration::from_secs(120)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let vnc = Daemon::spawn(
        &net,
        fw.service_config("vnc", "Service.VNCHost", "machineroom", "vhost", 5500),
        Box::new(VncHost::new()),
    )
    .unwrap();
    let mut host = ServiceClient::connect(&net, &"core".into(), vnc.addr().clone(), &me).unwrap();
    let created = host
        .call(
            &CmdLine::new("vncCreate")
                .arg("user", "jdoe")
                .arg("password", Value::Str("pw".into()))
                .arg("width", 1024)
                .arg("height", 768),
        )
        .unwrap();
    let session = created.get_text("session").unwrap().to_string();

    // Paint the whole desktop so the attach transfer is a full 64×48 grid.
    host.call(
        &CmdLine::new("vncDraw")
            .arg("session", session.as_str())
            .arg("x", 0)
            .arg("y", 0)
            .arg("w", 1024)
            .arg("h", 768)
            .arg("data", hex_encode(b"desktop")),
    )
    .unwrap();

    // Attach latency (includes the 3072-tile full transfer).
    let mut viewer_port = 6000u16;
    let attach = time_median(10, || {
        let mut viewer = VncViewer::attach(
            &net,
            &"podium".into(),
            viewer_port,
            vnc.addr(),
            &session,
            "pw",
            &me,
        )
        .unwrap();
        // Drain the full frame.
        while viewer.pump_wait(Duration::from_millis(100)) > 0 {}
        viewer_port += 1;
        std::hint::black_box(viewer);
    });
    row("attach + full transfer (1024x768)", &[fmt_dur(attach)]);

    // Steady-state update throughput: repaint a window region repeatedly
    // with an attached viewer consuming the updates.
    let mut viewer = VncViewer::attach(
        &net,
        &"podium".into(),
        6999,
        vnc.addr(),
        &session,
        "pw",
        &me,
    )
    .unwrap();
    while viewer.pump_wait(Duration::from_millis(100)) > 0 {}

    const REPAINTS: usize = 100;
    let mut tiles_pushed = 0i64;
    let total = time_once(|| {
        for i in 0..REPAINTS {
            let reply = host
                .call(
                    &CmdLine::new("vncDraw")
                        .arg("session", session.as_str())
                        .arg("x", 64)
                        .arg("y", 64)
                        .arg("w", 320)
                        .arg("h", 240)
                        .arg("data", hex_encode(&(i as u64).to_le_bytes())),
                )
                .unwrap();
            tiles_pushed += reply.get_int("tiles").unwrap();
        }
    });
    // Let the viewer converge and check it did.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let server_sum = loop {
        viewer.pump_wait(Duration::from_millis(50));
        let state = host
            .call(&CmdLine::new("vncState").arg("session", session.as_str()))
            .unwrap();
        let sum = state.get_text("checksum").unwrap().to_string();
        if format!("x{:016x}", viewer.checksum()) == sum {
            break sum;
        }
        assert!(std::time::Instant::now() < deadline, "viewer diverged");
    };
    let _ = server_sum;

    row(
        "window repaints (320x240)",
        &[format!("{:.0}/s", ops_per_sec(REPAINTS, total))],
    );
    row(
        "tile updates pushed",
        &[format!(
            "{:.0}/s",
            ops_per_sec(tiles_pushed as usize, total)
        )],
    );
    row("viewer converged", &["yes".into()]);

    vnc.shutdown();
    fw.shutdown();
}
