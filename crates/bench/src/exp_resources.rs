//! E9 + E10 — placement quality (Fig. 11 ablation) and user-database
//! throughput (Fig. 12).

use crate::util::*;
use ace_core::prelude::*;
use ace_directory::bootstrap;
use ace_identity::{UserDb, UserDbClient};
use ace_resources::{spawn_host_services, spawn_system_services, HostProfile};
use ace_security::keys::KeyPair;
use std::collections::HashMap;
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

/// E9 (Fig. 11): launch a batch of equal jobs through the SAL under each
/// placement policy and compare the final per-host load distribution.
/// Expected shape: resource-aware placement has far lower load variance.
pub fn e09() {
    header(
        "E9",
        "Fig. 11",
        "SAL placement: random vs resource-aware (ablation)",
    );
    const HOSTS: usize = 8;
    const JOBS: usize = 96;
    row(
        "policy",
        &[
            "mean load".into(),
            "stddev".into(),
            "max-min".into(),
            "hosts used".into(),
        ],
    );
    for policy in ["random", "resource"] {
        let net = SimNet::new();
        net.add_host("core");
        let fw = bootstrap(&net, "core", Duration::from_secs(120)).unwrap();
        let mut host_daemons = Vec::new();
        for i in 0..HOSTS {
            let host = format!("h{i}");
            net.add_host(host.as_str());
            host_daemons
                .push(spawn_host_services(&net, &fw, &host, HostProfile::default()).unwrap());
        }
        let (srm, sal) = spawn_system_services(&net, &fw, "core").unwrap();
        let me = keypair();
        let mut sal_client =
            ServiceClient::connect(&net, &"core".into(), sal.addr().clone(), &me).unwrap();

        let mut per_host: HashMap<String, usize> = HashMap::new();
        for j in 0..JOBS {
            let r = sal_client
                .call(
                    &CmdLine::new("launch")
                        .arg("app", Value::Str(format!("job{j}")))
                        .arg("policy", policy)
                        .arg("load", 1.0),
                )
                .unwrap();
            *per_host
                .entry(r.get_text("host").unwrap().to_string())
                .or_default() += 1;
        }
        let loads: Vec<f64> = (0..HOSTS)
            .map(|i| *per_host.get(&format!("h{i}")).unwrap_or(&0) as f64)
            .collect();
        let (mean, std) = mean_std(&loads);
        let max = loads.iter().cloned().fold(f64::MIN, f64::max);
        let min = loads.iter().cloned().fold(f64::MAX, f64::min);
        row(
            policy,
            &[
                format!("{mean:.1}"),
                format!("{std:.2}"),
                format!("{:.0}", max - min),
                format!("{}", per_host.len()),
            ],
        );

        sal.shutdown();
        srm.shutdown();
        for (hrm, hal) in host_daemons {
            hal.shutdown();
            hrm.shutdown();
        }
        fw.shutdown();
    }
}

/// E10 (Fig. 12): AUD query throughput with a populated database and
/// concurrent clients.
pub fn e10() {
    header("E10", "Fig. 12", "user database query throughput");
    const USERS: usize = 2000;
    const OPS: usize = 200;
    let net = SimNet::new();
    net.add_host("core");
    for i in 0..8 {
        net.add_host(format!("c{i}"));
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(120)).unwrap();
    let aud = Daemon::spawn(
        &net,
        fw.service_config("aud", "Service.Database.User", "machineroom", "core", 5200),
        Box::new(UserDb::new()),
    )
    .unwrap();
    let me = keypair();
    let mut seed = UserDbClient::connect(&net, &"core".into(), aud.addr().clone(), &me).unwrap();
    let load_time = time_once(|| {
        for i in 0..USERS {
            seed.add_user(
                &format!("user{i}"),
                &format!("User Number {i}"),
                "pw",
                "rsa:0:0",
                Some(&format!("fp_{i}")),
                None,
            )
            .unwrap();
        }
    });
    row(
        &format!("load {USERS} users"),
        &[
            fmt_dur(load_time),
            format!("{:.0} adds/s", ops_per_sec(USERS, load_time)),
        ],
    );

    row("clients", &["getUser ops/s".into(), "per-op".into()]);
    for clients in [1usize, 2, 4, 8] {
        let addr = aud.addr().clone();
        let total = time_once(|| {
            let mut joins = Vec::new();
            for c in 0..clients {
                let net = net.clone();
                let addr = addr.clone();
                joins.push(std::thread::spawn(move || {
                    let me = keypair();
                    let host: HostId = format!("c{c}").into();
                    let mut client = UserDbClient::connect(&net, &host, addr, &me).unwrap();
                    for i in 0..OPS {
                        let user = (c * 7919 + i * 104729) % USERS;
                        client.get_user(&format!("user{user}")).unwrap();
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        });
        let ops = clients * OPS;
        row(
            &format!("{clients}"),
            &[
                format!("{:.0}", ops_per_sec(ops, total)),
                fmt_dur(total / ops as u32),
            ],
        );
    }

    aud.shutdown();
    fw.shutdown();
}
