//! Shared helpers for the experiment harness: timing and table printing.

use std::time::{Duration, Instant};

/// Median of timing `runs` executions of `f` (after one warmup).
pub fn time_median(runs: usize, mut f: impl FnMut()) -> Duration {
    f(); // warmup
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Wall time of one execution.
pub fn time_once(f: impl FnOnce()) -> Duration {
    let t = Instant::now();
    f();
    t.elapsed()
}

/// Operations per second over `total` elapsed.
pub fn ops_per_sec(ops: usize, total: Duration) -> f64 {
    ops as f64 / total.as_secs_f64().max(1e-9)
}

/// Print an experiment header.
pub fn header(id: &str, figure: &str, title: &str) {
    println!();
    println!("== {id} ({figure}) — {title}");
}

/// Print one row of a table: label + cells.
pub fn row(label: &str, cells: &[String]) {
    print!("  {label:<34}");
    for c in cells {
        print!(" {c:>14}");
    }
    println!();
}

/// Format a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1e6)
    }
}

/// Mean and standard deviation.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-9);
        assert!((s - 2.0).abs() < 1e-9);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn fmt_dur_units() {
        assert!(fmt_dur(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_dur(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(5)).ends_with('s'));
    }
}
