//! E15 + E19 — the persistent store (Fig. 17): latency by replica health,
//! recovery/resync time, replication-factor ablation, and robust-service
//! MTTR.

use crate::util::*;
use ace_apps::{wire_watcher, AppClass, RobustCounter, WatchSpec, Watcher};
use ace_core::prelude::*;
use ace_directory::bootstrap;
use ace_security::keys::KeyPair;
use ace_store::{
    respawn_replica, spawn_store_cluster, DiskImage, MemStorage, StorageHandle, StoreClient,
    WalConfig,
};
use std::time::{Duration, Instant};

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

/// E15: put/get latency with 3, 2, and 1 replicas alive; replication-factor
/// ablation; and crash-recovery resync time.
pub fn e15() {
    header("E15", "Fig. 17", "persistent store under replica failures");
    row(
        "cluster state",
        &["put".into(), "get".into(), "writes OK?".into()],
    );

    // Replication-factor ablation: 1 vs 2 vs 3 replicas (Fig. 17 argues for
    // three).
    for replicas in [1usize, 2, 3] {
        let net = SimNet::new();
        net.add_host("core");
        let hosts: Vec<String> = (0..replicas).map(|i| format!("s{}", i + 1)).collect();
        for h in &hosts {
            net.add_host(h.as_str());
        }
        let fw = bootstrap(&net, "core", Duration::from_secs(120)).unwrap();
        let host_refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        let cluster =
            spawn_store_cluster(&net, &fw, &host_refs, Duration::from_millis(200)).unwrap();
        let mut client = StoreClient::new(net.clone(), "core", keypair(), cluster.addrs.clone());
        let mut i = 0u64;
        let put = time_median(50, || {
            client
                .put("bench", &format!("k{i}"), b"value bytes")
                .unwrap();
            i += 1;
        });
        client.put("bench", "fixed", b"v").unwrap();
        let get = time_median(50, || {
            client.get("bench", "fixed").unwrap();
        });
        row(
            &format!("replication factor {replicas}, all up"),
            &[fmt_dur(put), fmt_dur(get), "yes".into()],
        );
        cluster.shutdown();
        fw.shutdown();
    }

    // Degraded modes on the canonical 3-replica cluster.
    let net = SimNet::new();
    net.add_host("core");
    for h in ["s1", "s2", "s3"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(120)).unwrap();
    let cluster =
        spawn_store_cluster(&net, &fw, &["s1", "s2", "s3"], Duration::from_millis(100)).unwrap();
    let mut client = StoreClient::new(net.clone(), "core", keypair(), cluster.addrs.clone());
    client.put("bench", "fixed", b"v").unwrap();

    net.kill_host(&"s1".into());
    let mut i = 0u64;
    let put = time_median(30, || {
        client.put("bench", &format!("d{i}"), b"v").unwrap();
        i += 1;
    });
    let get = time_median(30, || {
        client.get("bench", "fixed").unwrap();
    });
    row(
        "3 replicas, 1 down",
        &[fmt_dur(put), fmt_dur(get), "yes (quorum 2)".into()],
    );

    net.kill_host(&"s2".into());
    let get = time_median(30, || {
        client.get("bench", "fixed").unwrap();
    });
    let write_fails = client.put("bench", "x", b"v").is_err();
    row(
        "3 replicas, 2 down",
        &[
            "-".into(),
            fmt_dur(get),
            if write_fails {
                "no (reads only)".into()
            } else {
                "BUG".into()
            },
        ],
    );

    // Recovery: revive s1 (s2 stays dead), see how long anti-entropy takes
    // to resync the missed writes.
    const MISSED: usize = 200;
    // s1 and s2 are down; the surviving quorum is 1 — relax quorum for the
    // backfill writes so the experiment can create divergence.
    let mut loose =
        StoreClient::new(net.clone(), "core", keypair(), cluster.addrs.clone()).with_quorum(1);
    for i in 0..MISSED {
        loose
            .put("recovery", &format!("m{i}"), b"written while down")
            .unwrap();
    }
    let s1_disk = cluster.replicas[0].1.clone();
    net.revive_host(&"s1".into());
    let revived = respawn_replica(
        &net,
        &fw,
        0,
        "s1",
        s1_disk.clone(),
        Duration::from_millis(100),
    )
    .unwrap();
    let resync = time_once(|| {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let caught_up =
                (0..MISSED).all(|i| s1_disk.get(&("recovery".into(), format!("m{i}"))).is_some());
            if caught_up {
                break;
            }
            assert!(Instant::now() < deadline, "resync never completed");
            std::thread::sleep(Duration::from_millis(10));
        }
    });
    row(
        &format!("resync {MISSED} missed writes"),
        &[fmt_dur(resync), String::new(), String::new()],
    );

    revived.shutdown();
    for (handle, _) in cluster.replicas {
        if handle.addr().host.as_str() == "s3" {
            handle.shutdown();
        } else {
            handle.crash();
        }
    }
    fw.shutdown();

    // WAL recovery time: what a respawned replica pays before serving,
    // replaying an N-update history over 64 keys from (a) the raw log and
    // (b) a compacted snapshot + log tail.
    row(
        "WAL recovery (N updates / 64 keys)",
        &["log only".into(), "snapshot+tail".into(), String::new()],
    );
    for n in [1_000u64, 10_000] {
        let mut timings = Vec::new();
        for threshold in [u64::MAX, 64 << 10] {
            let handle = StorageHandle::Memory(MemStorage::new());
            let config = WalConfig {
                fsync_on_commit: false,
                compact_threshold: threshold,
                ..WalConfig::default()
            };
            let (disk, _) = DiskImage::open(&handle, config.clone()).unwrap();
            for i in 0..n {
                disk.apply(
                    ("bench".into(), format!("k{}", i % 64)),
                    ace_store::Versioned {
                        data: vec![0xab; 64],
                        version: i + 1,
                        writer: "w".into(),
                        deleted: false,
                    },
                )
                .unwrap();
            }
            let replay = time_median(10, || {
                let (recovered, _) = DiskImage::open(&handle, config.clone()).unwrap();
                assert_eq!(recovered.len(), 64);
            });
            timings.push(replay);
        }
        row(
            &format!("recover from {n} updates"),
            &[fmt_dur(timings[0]), fmt_dur(timings[1]), String::new()],
        );
    }

    // Durability policy: the per-write cost of fsync-on-commit against
    // group-commit-style lazy sync (MemStorage, so this isolates the WAL
    // bookkeeping itself; real disks widen the gap).
    row(
        "WAL append policy",
        &["fsync on".into(), "fsync off".into(), String::new()],
    );
    let mut costs = Vec::new();
    for fsync in [true, false] {
        let handle = StorageHandle::Memory(MemStorage::new());
        let config = WalConfig {
            fsync_on_commit: fsync,
            compact_threshold: u64::MAX,
            ..WalConfig::default()
        };
        let (disk, _) = DiskImage::open(&handle, config).unwrap();
        let mut i = 0u64;
        costs.push(time_median(200, || {
            disk.apply(
                ("bench".into(), format!("k{i}")),
                ace_store::Versioned {
                    data: vec![0xcd; 64],
                    version: 1,
                    writer: "w".into(),
                    deleted: false,
                },
            )
            .unwrap();
            i += 1;
        }));
    }
    row(
        "logged put (local apply)",
        &[fmt_dur(costs[0]), fmt_dur(costs[1]), String::new()],
    );
}

/// E19 (§9): robust-service mean time to recovery across lease durations —
/// crash → lease expiry → `serviceExpired` → watcher relaunch → state
/// restore from the store.
pub fn e19() {
    header("E19", "§9", "robust application recovery (MTTR vs lease)");
    row("ASD lease", &["MTTR".into(), "state intact?".into()]);
    for lease_ms in [200u64, 400, 800] {
        let net = SimNet::new();
        for h in ["core", "app", "s1", "s2", "s3"] {
            net.add_host(h);
        }
        let fw = bootstrap(&net, "core", Duration::from_millis(lease_ms)).unwrap();
        let cluster =
            spawn_store_cluster(&net, &fw, &["s1", "s2", "s3"], Duration::from_millis(100))
                .unwrap();
        let me = keypair();
        let replicas = cluster.addrs.clone();
        let cfg = fw
            .service_config("robust", "Service.Counter", "hawk", "app", 5900)
            .with_lease_renew(Duration::from_millis(lease_ms / 4));
        let spawner = {
            let cfg = cfg.clone();
            let replicas = replicas.clone();
            move |net: &SimNet| {
                Daemon::spawn(
                    net,
                    cfg.clone(),
                    Box::new(RobustCounter::new(replicas.clone())),
                )
            }
        };
        let first = spawner(&net).unwrap();
        let addr = first.addr().clone();
        let watcher = Daemon::spawn(
            &net,
            fw.service_config("watcher", "Service.Watcher", "machineroom", "core", 5901),
            Box::new(Watcher::new(vec![WatchSpec::new(
                "robust",
                AppClass::Robust,
                Box::new(spawner),
            )])),
        )
        .unwrap();
        wire_watcher(&net, &watcher, &fw.asd_addr, &me).unwrap();

        let mut client = ServiceClient::connect(&net, &"core".into(), addr.clone(), &me).unwrap();
        for _ in 0..10 {
            client.call_ok(&CmdLine::new("increment")).unwrap();
        }
        drop(client);

        let crash_at = Instant::now();
        first.crash();
        let reply = loop {
            if let Ok(mut c) = ServiceClient::connect(&net, &"core".into(), addr.clone(), &me) {
                if let Ok(r) = c.call(&CmdLine::new("read")) {
                    break r;
                }
            }
            assert!(
                crash_at.elapsed() < Duration::from_secs(30),
                "never recovered"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        let mttr = crash_at.elapsed();
        let intact =
            reply.get_int("value") == Some(10) && reply.get_bool("recovered") == Some(true);
        row(
            &format!("{lease_ms} ms"),
            &[
                fmt_dur(mttr),
                if intact { "yes".into() } else { "NO".into() },
            ],
        );

        watcher.shutdown();
        cluster.shutdown();
        fw.shutdown();
    }
}
