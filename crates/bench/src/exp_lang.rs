//! E2 + E3 — the command language (Fig. 5) and the lightweight-vs-RMI
//! claim (§2.2, §8.1).

use crate::util::*;
use ace_baselines::RmiCall;
use ace_lang::{CmdLine, Value};

fn commands() -> Vec<(&'static str, CmdLine)> {
    vec![
        ("ping (0 args)", CmdLine::new("ping")),
        (
            "ptzMove (4 scalar args)",
            CmdLine::new("ptzMove")
                .arg("x", 10)
                .arg("y", -3)
                .arg("zoom", 1.5)
                .arg("mode", "absolute"),
        ),
        (
            "register (5 args)",
            CmdLine::new("register")
                .arg("name", "camera_hawk")
                .arg("host", "bar")
                .arg("port", 5320)
                .arg("room", "hawk")
                .arg("class", Value::Str("Service.Device.PTZCamera.VCC4".into())),
        ),
        ("trajectory (vector of 16)", {
            let mut c = CmdLine::new("ptzPath");
            c.push_arg(
                "points",
                Value::Vector((0..16).map(ace_lang::Scalar::Int).collect()),
            );
            c
        }),
    ]
}

/// E2: build → string → parse round-trip cost per command shape.
pub fn e02() {
    header("E2", "Fig. 5", "command build/transmit/parse round-trip");
    row(
        "command",
        &["wire bytes".into(), "encode".into(), "parse".into()],
    );
    for (label, cmd) in commands() {
        let wire = cmd.to_wire();
        let encode = time_median(200, || {
            std::hint::black_box(cmd.to_wire());
        });
        let parse = time_median(200, || {
            std::hint::black_box(CmdLine::parse(&wire).unwrap());
        });
        row(
            label,
            &[wire.len().to_string(), fmt_dur(encode), fmt_dur(parse)],
        );
    }
    // Arg-count scaling series.
    row("-- scaling --", &[]);
    for n in [0usize, 4, 8, 16, 32] {
        let mut cmd = CmdLine::new("cfg");
        for i in 0..n {
            cmd.push_arg(format!("a{i}"), i as i64);
        }
        let wire = cmd.to_wire();
        let roundtrip = time_median(200, || {
            let w = cmd.to_wire();
            std::hint::black_box(CmdLine::parse(&w).unwrap());
        });
        row(
            &format!("{n} integer args"),
            &[wire.len().to_string(), fmt_dur(roundtrip), String::new()],
        );
    }
}

/// E3: the same logical calls in the ACE command language vs the RMI-style
/// codec — bytes and encode+decode time.  The paper's claim is that ACE is
/// "much more lightweight"; the expected shape is ACE several times smaller
/// and faster at every size.
pub fn e03() {
    header(
        "E3",
        "Fig. 5 / §2.2",
        "ACE command language vs RMI-style serialization",
    );
    row(
        "call",
        &[
            "ACE bytes".into(),
            "RMI bytes".into(),
            "ratio".into(),
            "ACE rt".into(),
            "RMI rt".into(),
        ],
    );
    for (label, cmd) in commands() {
        let ace_wire = cmd.to_wire();
        let rmi = RmiCall::from_cmdline("edu.ku.ittc.ace.Service", &cmd);
        let rmi_wire = rmi.encode();

        let ace_rt = time_median(200, || {
            let w = cmd.to_wire();
            std::hint::black_box(CmdLine::parse(&w).unwrap());
        });
        let rmi_rt = time_median(200, || {
            let w = rmi.encode();
            std::hint::black_box(RmiCall::decode(&w).unwrap());
        });
        row(
            label,
            &[
                ace_wire.len().to_string(),
                rmi_wire.len().to_string(),
                format!("{:.1}x", rmi_wire.len() as f64 / ace_wire.len() as f64),
                fmt_dur(ace_rt),
                fmt_dur(rmi_rt),
            ],
        );
    }
}
