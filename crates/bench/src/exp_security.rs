//! E8 — per-command authorization cost (Fig. 10): delegation-chain length
//! and the verification-cache ablation.

use crate::util::*;
use ace_core::{action_env_for, Authorizer};
use ace_lang::CmdLine;
use ace_security::keynote::{Assertion, KeyNoteEngine, Licensees, POLICY};
use ace_security::keys::KeyPair;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

/// Build an engine whose authority reaches `user` through a chain of
/// `chain_len` delegations: POLICY → k1 → k2 → … → user.
fn engine_with_chain(chain_len: usize, user: &KeyPair) -> KeyNoteEngine {
    let mut engine = KeyNoteEngine::new();
    let mut links: Vec<KeyPair> = (0..chain_len).map(|_| keypair()).collect();
    links.push(*user);
    engine
        .add_policy(
            Assertion::new(
                POLICY,
                Licensees::Principal(links[0].principal()),
                "app_domain == \"ace\"",
            )
            .unwrap(),
        )
        .unwrap();
    for pair in links.windows(2) {
        let (from, to) = (&pair[0], &pair[1]);
        engine
            .add_credential(
                Assertion::new(
                    from.principal(),
                    Licensees::Principal(to.principal()),
                    "cmd == \"ptzMove\"",
                )
                .unwrap()
                .sign(from)
                .unwrap(),
            )
            .unwrap();
    }
    engine
}

/// E8: compliance-check latency vs chain length, cache on/off, plus the
/// signature-verification cost paid at credential install time.
pub fn e08() {
    header("E8", "Fig. 10", "KeyNote authorization cost");
    row(
        "delegation chain",
        &[
            "uncached check".into(),
            "cached check".into(),
            "speedup".into(),
        ],
    );
    let user = keypair();
    let cmd = CmdLine::new("ptzMove").arg("x", 10).arg("zoom", 2);
    let env = action_env_for("camera_hawk", "PTZCamera", "hawk", &cmd);
    let principal = user.principal();

    for chain in [0usize, 1, 2, 4, 8] {
        let engine = engine_with_chain(chain, &user);
        let uncached = Authorizer::local(engine.clone()).without_cache();
        let cached = Authorizer::local(engine);
        assert!(uncached.check(&principal, &env), "grant must hold");

        let t_uncached = time_median(200, || {
            std::hint::black_box(uncached.check(&principal, &env));
        });
        // Prime, then measure hits.
        cached.check(&principal, &env);
        let t_cached = time_median(200, || {
            std::hint::black_box(cached.check(&principal, &env));
        });
        row(
            &format!("{chain} intermediate link(s)"),
            &[
                fmt_dur(t_uncached),
                fmt_dur(t_cached),
                format!(
                    "{:.0}x",
                    t_uncached.as_secs_f64() / t_cached.as_secs_f64().max(1e-9)
                ),
            ],
        );
    }

    // Install-time signature verification (RSA) and denial cost.
    let admin = keypair();
    let cred = Assertion::new(
        admin.principal(),
        Licensees::Principal(user.principal()),
        "true",
    )
    .unwrap()
    .sign(&admin)
    .unwrap();
    let verify = time_median(200, || {
        cred.verify().unwrap();
    });
    row(
        "credential signature verify",
        &[fmt_dur(verify), String::new(), String::new()],
    );

    let engine = engine_with_chain(4, &user);
    let uncached = Authorizer::local(engine).without_cache();
    let stranger = keypair().principal();
    let deny = time_median(200, || {
        assert!(!uncached.check(&stranger, &env));
    });
    row(
        "denial (no path, chain 4)",
        &[fmt_dur(deny), String::new(), String::new()],
    );
}
