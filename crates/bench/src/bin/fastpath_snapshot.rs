//! Turn `connect_storm` bench output plus a live fast-path workload into
//! the `BENCH_pr5.json` artifact.
//!
//! ```sh
//! cargo bench -p ace-bench --bench connect_storm | tee bench_connect_storm.txt
//! cargo run --release -p ace-bench --bin fastpath_snapshot -- \
//!     -o BENCH_pr5.json bench_connect_storm.txt
//! ```
//!
//! The artifact carries three sections: the raw bench rows, the derived
//! speedup ratios (resumption alone, pooling alone, and the whole fast
//! path against the pre-PR resolve-and-dial cost), and the fast-path
//! counters from a short live storm (client side: pool and resolution
//! cache; server side: resume hits vs full handshakes via `aceStats`).

use ace_core::prelude::*;
use ace_directory::bootstrap;
use ace_security::keys::KeyPair;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

struct Echo;
impl ServiceBehavior for Echo {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("echo", "echo").optional("x", ArgType::Int, "payload"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        let x = cmd.get_int("x").unwrap_or(0);
        Reply::ok_with(|c| c.arg("x", x))
    }
}

/// One `bench <name> <value> <unit>/iter (<iters> iters)` line, with the
/// value normalised to microseconds.
fn parse_bench_line(line: &str) -> Option<(String, f64, u64)> {
    let rest = line.strip_prefix("bench ")?;
    let mut tokens = rest.split_whitespace();
    let name = tokens.next()?.to_string();
    let value: f64 = tokens.next()?.parse().ok()?;
    let unit = tokens.next()?.strip_suffix("/iter")?;
    let micros = match unit {
        "s" => value * 1e6,
        "ms" => value * 1e3,
        "µs" | "us" => value,
        "ns" => value / 1e3,
        _ => return None,
    };
    let iters: u64 = tokens.next()?.trim_start_matches('(').parse().ok()?;
    Some((name, micros, iters))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut out_path = String::from("BENCH_pr5.json");
    let mut bench_files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "-o" {
            out_path = args.next().expect("-o needs a path");
        } else {
            bench_files.push(arg);
        }
    }

    let mut rows: Vec<(String, f64, u64)> = Vec::new();
    for path in &bench_files {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read bench file {path}: {e}"));
        rows.extend(text.lines().filter_map(parse_bench_line));
    }
    let micros = |name: &str| -> Option<f64> {
        rows.iter()
            .find(|(n, _, _)| n == &format!("connect_storm/{name}"))
            .map(|(_, us, _)| *us)
    };
    let ratio = |slow: &str, fast: &str| -> Option<f64> {
        match (micros(slow), micros(fast)) {
            (Some(s), Some(f)) if f > 0.0 => Some(s / f),
            _ => None,
        }
    };
    let speedups = [
        // Handshake skip alone: same dial, DH + signature replaced by one
        // MAC round trip.
        (
            "resumed_vs_full_dial",
            ratio("full_handshake_dial", "resumed_dial"),
        ),
        // Pool hit: no dial at all.
        (
            "pooled_vs_full_dial",
            ratio("full_handshake_dial", "pooled_checkout"),
        ),
        // The headline: what a reconnecting client pays pre-PR (ASD
        // resolve over a fresh link + full-handshake dial) vs the warm
        // fast path (cached resolution + pooled link).
        (
            "fastpath_vs_full_resolve",
            ratio("cold_client_full_resolve", "cold_client_fastpath"),
        ),
    ];

    // Live storm: 200 short-lived clients over one shared pool + cache.
    let net = SimNet::new();
    net.add_host("core");
    net.add_host("svc");
    let fw = bootstrap(&net, "core", Duration::from_secs(600)).expect("bootstrap");
    let daemon = Daemon::spawn(
        &net,
        fw.service_config("echo", "Service.Echo", "hawk", "svc", 6000),
        Box::new(Echo),
    )
    .expect("spawn echo");
    let me = KeyPair::generate(&mut rand::thread_rng());
    let metrics = MetricsRegistry::new();
    let pool = Arc::new(LinkPool::with_metrics(&net, "core", me, &metrics));
    let cache = Arc::new(ResolutionCache::with_metrics(&metrics));
    for i in 0..200 {
        let mut client = FailoverClient::bind(net.clone(), "core", me, fw.asd_addr.clone(), "echo")
            .with_pool(Arc::clone(&pool))
            .with_resolution_cache(Arc::clone(&cache));
        client
            .call(&CmdLine::new("echo").arg("x", i as i64))
            .expect("storm call");
    }
    let client_side = metrics.snapshot();
    let mut stats_client = ServiceClient::connect(&net, &"core".into(), daemon.addr().clone(), &me)
        .expect("stats client");
    let reply = stats_client
        .call(&CmdLine::new("aceStats"))
        .expect("aceStats");
    let server_side = StatsReport::from_cmdline(&reply);

    let mut json = String::from("{\n  \"benches\": [\n");
    let bench_rows: Vec<String> = rows
        .iter()
        .map(|(name, us, iters)| {
            format!(
                "    {{\"name\": \"{}\", \"micros_per_iter\": {us:.3}, \"iters\": {iters}}}",
                json_escape(name)
            )
        })
        .collect();
    json.push_str(&bench_rows.join(",\n"));
    json.push_str("\n  ],\n  \"speedups\": {\n");
    let speedup_rows: Vec<String> = speedups
        .iter()
        .map(|(name, r)| match r {
            Some(r) => format!("    \"{name}\": {r:.2}"),
            None => format!("    \"{name}\": null"),
        })
        .collect();
    json.push_str(&speedup_rows.join(",\n"));
    json.push_str("\n  },\n  \"storm\": {\n    \"client\": {\n");
    let counter_rows: Vec<String> = client_side
        .counters
        .iter()
        .map(|(k, v)| format!("      \"{}\": {v}", json_escape(k)))
        .collect();
    json.push_str(&counter_rows.join(",\n"));
    json.push_str("\n    },\n    \"server\": {\n");
    let server_rows: Vec<String> = server_side
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("link.") || k.starts_with("cmd.") || k.starts_with("auth."))
        .map(|(k, v)| format!("      \"{}\": {v}", json_escape(k)))
        .collect();
    json.push_str(&server_rows.join(",\n"));
    json.push_str("\n    }\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("write artifact");

    let mut summary = String::new();
    for (name, r) in &speedups {
        if let Some(r) = r {
            let _ = write!(summary, " {name}={r:.1}x");
        }
    }
    println!("wrote {out_path}: {} bench rows,{summary}", rows.len());
    println!(
        "storm client counters: checkouts={} reused={} resume_hits={} full_handshakes={} \
         cache_hits={} cache_misses={}",
        client_side.counters.get("pool.checkouts").unwrap_or(&0),
        client_side.counters.get("pool.reused").unwrap_or(&0),
        client_side.counters.get("link.resume_hits").unwrap_or(&0),
        client_side
            .counters
            .get("link.full_handshakes")
            .unwrap_or(&0),
        client_side.counters.get("resolve.cache_hits").unwrap_or(&0),
        client_side
            .counters
            .get("resolve.cache_misses")
            .unwrap_or(&0),
    );

    daemon.shutdown();
    fw.shutdown();
}
