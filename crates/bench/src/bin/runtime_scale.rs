//! Daemon-density benchmark for the shared cooperative runtime, and the
//! `BENCH_pr8.json` artifact.
//!
//! ```sh
//! cargo run --release -p ace-bench --bin runtime_scale -- -o BENCH_pr8.json
//! cargo run --release -p ace-bench --bin runtime_scale -- --threads   # ablation
//! cargo run --release -p ace-bench --bin runtime_scale -- --sizes 1000,2000
//! ```
//!
//! Each arm spawns N Echo daemons (full Fig. 9 startup: Room DB + ASD +
//! Net Logger registration) and records what one process pays for them:
//!
//! * **os_threads_delta** — OS threads created for the N daemons.  The
//!   threaded shell pays 4 per daemon plus a notifier worker; the shared
//!   runtime pays one fixed worker pool for all of them.
//! * **bytes_per_daemon** — RSS growth across the spawns, per daemon.
//! * **spawn p50/p99** — per-daemon spawn latency, registration included.
//! * **ping p50/p99** — command round-trip against a sample of the fleet,
//!   measured while all N daemons are live.
//!
//! The `--threads` flag runs only the threaded-shell ablation (capped at
//! 1,000 daemons — 4,000+ threads is exactly the ceiling the runtime
//! removes).  The default run takes a 500-daemon threaded baseline plus
//! shared-runtime arms at 1k/5k/10k and derives the density ratios.

use ace_core::prelude::*;
use ace_security::keys::KeyPair;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Echo;
impl ServiceBehavior for Echo {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("touch", "no-op"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        Reply::ok()
    }
}

/// One numeric field from `/proc/self/status` (`Threads` count, `VmRSS`
/// in kB).  Zero off Linux — the artifact is produced on CI runners.
fn proc_status(key: &str) -> u64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            if let Some(num) = rest.trim_start_matches(':').split_whitespace().next() {
                return num.parse().unwrap_or(0);
            }
        }
    }
    0
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0) * (sorted_us.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted_us[lo] + (sorted_us[hi] - sorted_us[lo]) * frac
}

struct Row {
    mode: &'static str,
    daemons: usize,
    os_threads_delta: u64,
    daemons_per_os_thread: f64,
    bytes_per_daemon: f64,
    spawn_p50_us: f64,
    spawn_p99_us: f64,
    spawn_total_s: f64,
    ping_p50_us: f64,
    ping_p99_us: f64,
    ping_samples: usize,
}

/// How many daemons to ping for the latency quantiles.
const PING_SAMPLE: usize = 500;
const HOSTS: usize = 64;

fn run_arm(mode: RuntimeMode, daemons: usize) -> Row {
    let net = SimNet::new();
    net.add_host("core");
    for i in 0..HOSTS {
        net.add_host(format!("b{i}"));
    }
    let fw = ace_directory::bootstrap(&net, "core", Duration::from_secs(300)).unwrap();
    // The shared arms get their own pool (sized like the global default:
    // available parallelism) so each arm starts from a clean worker set.
    let pool = match mode {
        RuntimeMode::Shared => Some(ace_core::Runtime::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )),
        RuntimeMode::Threads => None,
    };

    let threads_before = proc_status("Threads");
    let rss_before_kb = proc_status("VmRSS");
    let mut spawn_us: Vec<f64> = Vec::with_capacity(daemons);
    let spawn_started = Instant::now();
    let handles: Vec<DaemonHandle> = (0..daemons)
        .map(|i| {
            let mut config = fw
                .service_config(
                    &format!("rt{i}"),
                    "Service.Echo",
                    "hawk",
                    format!("b{}", i % HOSTS).as_str(),
                    7000 + (i / HOSTS) as u16,
                )
                // Long periods: the arm measures multiplexing density, not
                // a renewal storm.
                .with_lease_renew(Duration::from_secs(60))
                .with_tick(Duration::from_secs(5))
                .with_stats_interval(Duration::ZERO)
                .with_runtime(mode);
            if let Some(pool) = &pool {
                config = config.with_runtime_pool(pool.clone());
            }
            let t = Instant::now();
            let handle = Daemon::spawn(&net, config, Box::new(Echo)).unwrap();
            spawn_us.push(t.elapsed().as_secs_f64() * 1e6);
            handle
        })
        .collect();
    let spawn_total_s = spawn_started.elapsed().as_secs_f64();
    let threads_after = proc_status("Threads");
    let rss_after_kb = proc_status("VmRSS");

    // Ping a spread of the fleet while everything is live.
    let me = KeyPair::generate(&mut rand::thread_rng());
    let samples = PING_SAMPLE.min(daemons);
    let mut ping_us: Vec<f64> = Vec::with_capacity(samples);
    for s in 0..samples {
        let handle = &handles[s * daemons / samples];
        let mut client =
            ServiceClient::connect(&net, &"core".into(), handle.addr().clone(), &me).unwrap();
        let t = Instant::now();
        client.call_ok(&CmdLine::new("ping")).unwrap();
        ping_us.push(t.elapsed().as_secs_f64() * 1e6);
    }

    let os_threads_delta = threads_after.saturating_sub(threads_before);
    let bytes_per_daemon =
        (rss_after_kb.saturating_sub(rss_before_kb) * 1024) as f64 / daemons as f64;
    spawn_us.sort_by(|a, b| a.total_cmp(b));
    ping_us.sort_by(|a, b| a.total_cmp(b));
    let row = Row {
        mode: match mode {
            RuntimeMode::Threads => "threads",
            RuntimeMode::Shared => "shared",
        },
        daemons,
        os_threads_delta,
        daemons_per_os_thread: daemons as f64 / os_threads_delta.max(1) as f64,
        bytes_per_daemon,
        spawn_p50_us: percentile(&spawn_us, 50.0),
        spawn_p99_us: percentile(&spawn_us, 99.0),
        spawn_total_s,
        ping_p50_us: percentile(&ping_us, 50.0),
        ping_p99_us: percentile(&ping_us, 99.0),
        ping_samples: samples,
    };

    // Teardown, in dependency order: daemons first (their tasks must
    // complete while the pool still runs — a handle dropped against a
    // stopped pool waits out its full join timeout), then the pool, then
    // the framework.  This also keeps the threaded arm's thousands of
    // threads out of the next arm's thread accounting.
    for h in &handles {
        h.shutdown();
    }
    drop(handles);
    if let Some(pool) = &pool {
        pool.shutdown();
    }
    fw.shutdown();
    row
}

fn main() {
    let mut out_path = String::from("BENCH_pr8.json");
    let mut threads_only = false;
    let mut sizes: Vec<usize> = vec![1000, 5000, 10000];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => out_path = args.next().expect("-o needs a path"),
            "--threads" => threads_only = true,
            "--sizes" => {
                sizes = args
                    .next()
                    .expect("--sizes needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes takes integers"))
                    .collect();
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows: Vec<Row> = Vec::new();
    if threads_only {
        for &n in &sizes {
            // 4 threads per daemon: past ~1k daemons the ablation stops
            // measuring the shell and starts measuring thread exhaustion.
            let n = n.min(1000);
            eprintln!("arm: threads × {n} daemons");
            rows.push(run_arm(RuntimeMode::Threads, n));
        }
    } else {
        eprintln!("arm: threads × 500 daemons (baseline)");
        rows.push(run_arm(RuntimeMode::Threads, 500));
        for &n in &sizes {
            eprintln!("arm: shared × {n} daemons");
            rows.push(run_arm(RuntimeMode::Shared, n));
        }
    }

    let mut json = String::from("{\n  \"runtime_scale\": {\n");
    let _ = writeln!(json, "    \"cores\": {cores},");
    let _ = writeln!(json, "    \"ping_sample\": {PING_SAMPLE},");
    json.push_str("    \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"mode\": \"{}\", \"daemons\": {}, \"os_threads_delta\": {}, \
             \"daemons_per_os_thread\": {:.2}, \"daemons_per_core\": {:.1}, \
             \"bytes_per_daemon\": {:.0}, \"spawn_p50_us\": {:.1}, \"spawn_p99_us\": {:.1}, \
             \"spawn_total_s\": {:.2}, \"ping_p50_us\": {:.1}, \"ping_p99_us\": {:.1}, \
             \"ping_samples\": {}}}{}",
            r.mode,
            r.daemons,
            r.os_threads_delta,
            r.daemons_per_os_thread,
            r.daemons as f64 / cores as f64,
            r.bytes_per_daemon,
            r.spawn_p50_us,
            r.spawn_p99_us,
            r.spawn_total_s,
            r.ping_p50_us,
            r.ping_p99_us,
            r.ping_samples,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("    ]");

    let baseline = rows.iter().find(|r| r.mode == "threads");
    let best_shared = rows
        .iter()
        .filter(|r| r.mode == "shared")
        .max_by_key(|r| r.daemons);
    if let (Some(base), Some(shared)) = (baseline, best_shared) {
        json.push_str(",\n    \"summary\": {\n");
        let _ = writeln!(
            json,
            "      \"threads_baseline_daemons\": {},",
            base.daemons
        );
        let _ = writeln!(
            json,
            "      \"threads_baseline_bytes_per_daemon\": {:.0},",
            base.bytes_per_daemon
        );
        let _ = writeln!(
            json,
            "      \"threads_baseline_daemons_per_os_thread\": {:.2},",
            base.daemons_per_os_thread
        );
        let _ = writeln!(json, "      \"shared_max_daemons\": {},", shared.daemons);
        let _ = writeln!(
            json,
            "      \"shared_bytes_per_daemon\": {:.0},",
            shared.bytes_per_daemon
        );
        let _ = writeln!(
            json,
            "      \"shared_daemons_per_os_thread\": {:.2},",
            shared.daemons_per_os_thread
        );
        let _ = writeln!(
            json,
            "      \"shared_ping_p99_us\": {:.1},",
            shared.ping_p99_us
        );
        let _ = writeln!(
            json,
            "      \"bytes_per_daemon_improvement\": {:.1},",
            base.bytes_per_daemon / shared.bytes_per_daemon.max(1.0)
        );
        let _ = writeln!(
            json,
            "      \"daemons_per_os_thread_improvement\": {:.1}",
            shared.daemons_per_os_thread / base.daemons_per_os_thread.max(0.01)
        );
        json.push_str("    }\n");
    } else {
        json.push('\n');
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    eprintln!("wrote {out_path}");
}
