//! Directory-plane scale benchmark, and the `BENCH_pr9.json` artifact.
//!
//! ```sh
//! cargo run --release -p ace-bench --bin directory_shard -- -o BENCH_pr9.json
//! cargo run --release -p ace-bench --bin directory_shard -- --services 10000 --secs 1
//! ```
//!
//! Four systems answer the same closed-loop name-lookup storm
//! ([`ace_baselines::lookup_storm`]) over the same registered population:
//!
//! * **single** — one ASD daemon (the pre-PR-9 directory plane), driven
//!   through the same sharded client with a 1-shard map so the client path
//!   is identical;
//! * **sharded** — 4 shards × 3 replicas with quorum writes; name lookups
//!   route to the owning shard and rotate across its replica set;
//! * **jini** — the §8 Jini-style lookup service (RMI-framed calls);
//! * **central** — the §8 WebSphere-style central server (single
//!   dispatcher, one request per connection per 200 µs sweep).
//!
//! Latency quantiles come from the `dir.lookup` [`MetricsRegistry`]
//! histogram (the ACE arms record inside [`ShardedAsdClient`]; the
//! baseline arms record through the storm callback into the same
//! registry), not ad-hoc timers.
//!
//! # Aggregate capacity on a constrained harness
//!
//! Two throughput figures are reported per arm.  The **concurrent** storm
//! drives every shard at once from one process; on a small runner (CI, or
//! a single-core container) that number measures the load generator and
//! the shared CPU, not the plane — every shard daemon time-shares the
//! same cores, so wall-clock throughput cannot exceed one machine's worth
//! regardless of shard count.  The **aggregate capacity** storms each
//! shard *in isolation* over the names it owns and sums the per-shard
//! saturation throughputs.  Name lookups touch exactly their owning shard
//! (no cross-shard coordination on that path), so per-shard capacities
//! add across hosts in a real deployment where each replica has its own
//! machine; the single-ASD arm is measured identically (its "sum" is its
//! one shard), making the speedup an apples-to-apples capacity ratio.
//!
//! The sharded arm then runs the recovery drill the acceptance criterion
//! asks for: kill one replica host at full population, show the directory
//! lost nothing (quorum survivors answer a complete `list()` and every
//! sampled name still resolves), then respawn the replica empty and show
//! renewal traffic repairs it.

use ace_baselines::{
    lookup_storm, CentralClient, CentralServer, JiniClient, JiniLookup, JiniProxy,
};
use ace_core::prelude::*;
use ace_core::protocol::ServiceEntry;
use ace_directory::{spawn_sharded_asd, ShardedDirectory};
use ace_security::keys::KeyPair;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEFAULT_SERVICES: usize = 100_000;
const DEFAULT_THREADS: usize = 8;
const DEFAULT_STORM: Duration = Duration::from_secs(3);
const SEED_WRITERS: usize = 32;
const REPAIR_SAMPLE: usize = 1_000;

fn entry(i: usize) -> ServiceEntry {
    ServiceEntry {
        name: format!("svc{i}"),
        addr: Addr::new("app", 4000 + (i % 60_000) as u16),
        class: format!("Service.App.Bench.Kind{}", i % 8),
        room: format!("room{}", i % 64),
    }
}

struct Row {
    system: &'static str,
    shards: usize,
    replication: usize,
    services: usize,
    threads: usize,
    register_s: f64,
    ops: u64,
    errors: u64,
    per_sec: f64,
    per_min: f64,
    /// Sum of per-shard saturation throughputs (equals `per_sec` for the
    /// single-server arms up to run-to-run noise).
    aggregate_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

struct Recovery {
    killed_host: String,
    listed_after_kill: usize,
    lost: usize,
    sample_resolved: usize,
    sample: usize,
    repairs: u64,
    replica_repaired: bool,
}

/// An ACE arm: spawn `shards × replication` ASD daemons, register the
/// population in parallel, storm it, and (optionally) run the
/// kill/repair recovery drill.
fn ace_arm(
    system: &'static str,
    shards: usize,
    replication: usize,
    services: usize,
    threads: usize,
    storm_len: Duration,
    recover: bool,
) -> (Row, Option<Recovery>) {
    let net = SimNet::new();
    net.add_host("client");
    let hosts: Vec<HostId> = (0..shards * replication)
        .map(|i| {
            let h = format!("d{i}");
            net.add_host(h.as_str());
            HostId::from(h.as_str())
        })
        .collect();
    let mut dir: ShardedDirectory = spawn_sharded_asd(
        &net,
        &hosts,
        shards,
        replication,
        Duration::from_secs(3600),
        5900,
    )
    .unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let metrics = MetricsRegistry::new();
    let pool = Arc::new(LinkPool::new(&net, "client", me));

    let reg_started = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let mut client = dir.client(Arc::clone(&pool));
            scope.spawn(move || {
                let mut i = w;
                while i < services {
                    client.register(&entry(i), 1).unwrap();
                    i += threads;
                }
            });
        }
    });
    let register_s = reg_started.elapsed().as_secs_f64();
    eprintln!("  {system}: registered {services} services in {register_s:.2}s");

    let report = lookup_storm(
        threads,
        storm_len,
        |w| {
            let mut client = dir.client(Arc::clone(&pool)).with_metrics(&metrics);
            let mut i = w;
            move || {
                i = i.wrapping_add(1);
                let name = format!("svc{}", i % services);
                matches!(client.lookup(Some(&name), None, None), Ok(e) if !e.is_empty())
            }
        },
        |_| {}, // the client records into the registry itself
    );
    // Aggregate capacity: each shard stormed in isolation over the names
    // it owns (see the module doc).  The storm duration is split so the
    // capacity pass costs about as much wall-clock as the concurrent one.
    let mut by_shard: Vec<Vec<String>> = vec![Vec::new(); shards];
    for i in 0..services {
        let name = entry(i).name;
        by_shard[dir.map.shard_for(&name)].push(name);
    }
    let capacity_len = storm_len
        .div_f64(shards as f64)
        .max(Duration::from_millis(250));
    let mut aggregate_per_sec = 0.0;
    for (s, names) in by_shard.iter().enumerate() {
        assert!(!names.is_empty(), "shard {s} owns no names");
        let rep = lookup_storm(
            threads,
            capacity_len,
            |w| {
                let mut client = dir.client(Arc::clone(&pool)).with_metrics(&metrics);
                let mut i = w;
                move || {
                    i = i.wrapping_add(1);
                    let name = &names[i % names.len()];
                    matches!(client.lookup(Some(name), None, None), Ok(e) if !e.is_empty())
                }
            },
            |_| {},
        );
        assert_eq!(rep.errors, 0, "shard {s}: capacity storm saw errors");
        aggregate_per_sec += rep.per_sec();
    }

    let hist = metrics.histogram("dir.lookup").snapshot();
    let row = Row {
        system,
        shards,
        replication,
        services,
        threads,
        register_s,
        ops: report.ops,
        errors: report.errors,
        per_sec: report.per_sec(),
        per_min: report.per_min(),
        aggregate_per_sec,
        p50_us: hist.quantile(0.50),
        p99_us: hist.quantile(0.99),
    };

    let recovery = if recover && replication > 1 {
        // A writer that owns a sample of shard-0 names (equal-incarnation
        // re-register is idempotent), so its renewals can repair the
        // respawned replica after the kill.
        let mut repairer = dir.client(Arc::clone(&pool));
        let sample: Vec<usize> = (0..services)
            .filter(|&i| dir.map.shard_for(&entry(i).name) == 0)
            .take(REPAIR_SAMPLE)
            .collect();
        for &i in &sample {
            repairer.register(&entry(i), 1).unwrap();
        }

        let victim_host = dir.replica_host(0, 0);
        let victim_addr = dir.map.replicas(0)[0].clone();
        net.kill_host(&victim_host);

        // Zero lost registrations: the quorum survivors answer a complete
        // directory listing, and every sampled name still resolves.
        let mut auditor = dir.client(Arc::clone(&pool));
        let listed_after_kill = auditor.list().unwrap().len();
        let sample_resolved = sample
            .iter()
            .filter(|&&i| {
                auditor
                    .find(&entry(i).name)
                    .ok()
                    .flatten()
                    .is_some_and(|e| e.addr == entry(i).addr)
            })
            .count();

        // Respawn empty and let renewal traffic repair it.
        net.revive_host(&victim_host);
        dir.respawn_replica(&net, 0, 0).unwrap();
        for &i in &sample {
            repairer.renew(&entry(i).name).unwrap();
        }
        let replica_repaired = pool
            .checkout(&victim_addr)
            .and_then(|mut link| link.call(&CmdLine::new("listServices")))
            .ok()
            .and_then(|reply| {
                reply.get_vector("names").map(|names| {
                    let have: Vec<&str> = names.iter().filter_map(|s| s.as_text()).collect();
                    sample
                        .iter()
                        .all(|&i| have.contains(&entry(i).name.as_str()))
                })
            })
            .unwrap_or(false);
        Some(Recovery {
            killed_host: victim_host.to_string(),
            listed_after_kill,
            lost: services - listed_after_kill,
            sample_resolved,
            sample: sample.len(),
            repairs: repairer.repairs(),
            replica_repaired,
        })
    } else {
        None
    };

    dir.shutdown();
    (row, recovery)
}

/// The §8 Jini-style lookup service under the same storm.
fn jini_arm(services: usize, threads: usize, storm_len: Duration) -> Row {
    let net = SimNet::new();
    net.add_host("server");
    net.add_host("client");
    let lookup = JiniLookup::start(&net, "server", 4160).unwrap();
    let metrics = MetricsRegistry::new();

    let reg_started = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let net = net.clone();
            let addr = lookup.addr().clone();
            scope.spawn(move || {
                let mut client = JiniClient::connect(&net, &"client".into(), addr).unwrap();
                let mut i = w;
                while i < services {
                    let e = entry(i);
                    let proxy = JiniProxy {
                        name: e.name,
                        interface: e.class,
                        host: e.addr.host.to_string(),
                        port: e.addr.port,
                    };
                    client.register(&proxy).expect("jini register");
                    i += threads;
                }
            });
        }
    });
    let register_s = reg_started.elapsed().as_secs_f64();
    eprintln!("  jini: registered {services} proxies in {register_s:.2}s");

    let hist = metrics.histogram("dir.lookup");
    let report = lookup_storm(
        threads,
        storm_len,
        |w| {
            let mut client =
                JiniClient::connect(&net, &"client".into(), lookup.addr().clone()).unwrap();
            let mut i = w;
            move || {
                i = i.wrapping_add(1);
                client.lookup(&format!("svc{}", i % services)).is_some()
            }
        },
        |d| hist.record(d),
    );
    let snap = hist.snapshot();
    lookup.shutdown();
    Row {
        system: "jini",
        shards: 1,
        replication: 1,
        services,
        threads,
        register_s,
        ops: report.ops,
        errors: report.errors,
        per_sec: report.per_sec(),
        per_min: report.per_min(),
        aggregate_per_sec: report.per_sec(),
        p50_us: snap.quantile(0.50),
        p99_us: snap.quantile(0.99),
    }
}

/// The §8 WebSphere-style central server under the same storm.  Seeding
/// needs wide parallelism: the dispatcher serves one request per
/// connection per 200 µs sweep.
fn central_arm(services: usize, threads: usize, storm_len: Duration) -> Row {
    let net = SimNet::new();
    net.add_host("server");
    net.add_host("client");
    let server = CentralServer::start(&net, "server", 8080).unwrap();
    let metrics = MetricsRegistry::new();

    let reg_started = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..SEED_WRITERS {
            let net = net.clone();
            let addr = server.addr().clone();
            scope.spawn(move || {
                let mut client = CentralClient::connect(&net, &"client".into(), addr).unwrap();
                let mut i = w;
                while i < services {
                    let e = entry(i);
                    assert!(client.put(&e.name, "addr", &format!("{}", e.addr)));
                    i += SEED_WRITERS;
                }
            });
        }
    });
    let register_s = reg_started.elapsed().as_secs_f64();
    eprintln!("  central: seeded {services} devices in {register_s:.2}s");

    let hist = metrics.histogram("dir.lookup");
    let report = lookup_storm(
        threads,
        storm_len,
        |w| {
            let mut client =
                CentralClient::connect(&net, &"client".into(), server.addr().clone()).unwrap();
            let mut i = w;
            move || {
                i = i.wrapping_add(1);
                client
                    .get(&format!("svc{}", i % services), "addr")
                    .is_some()
            }
        },
        |d| hist.record(d),
    );
    let snap = hist.snapshot();
    let row = Row {
        system: "central",
        shards: 1,
        replication: 1,
        services,
        threads,
        register_s,
        ops: report.ops,
        errors: report.errors,
        per_sec: report.per_sec(),
        per_min: report.per_min(),
        aggregate_per_sec: report.per_sec(),
        p50_us: snap.quantile(0.50),
        p99_us: snap.quantile(0.99),
    };
    server.shutdown();
    row
}

fn main() {
    let mut out_path = String::from("BENCH_pr9.json");
    let mut services = DEFAULT_SERVICES;
    let mut threads = DEFAULT_THREADS;
    let mut storm_len = DEFAULT_STORM;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => out_path = args.next().expect("-o needs a path"),
            "--services" => {
                services = args
                    .next()
                    .expect("--services needs an integer")
                    .parse()
                    .expect("--services takes an integer");
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs an integer")
                    .parse()
                    .expect("--threads takes an integer");
            }
            "--secs" => {
                storm_len = Duration::from_secs_f64(
                    args.next()
                        .expect("--secs needs a number")
                        .parse()
                        .expect("--secs takes a number"),
                );
            }
            other => panic!("unknown argument {other}"),
        }
    }

    eprintln!("arm: single ASD × {services} services");
    let (single, _) = ace_arm("single", 1, 1, services, threads, storm_len, false);
    eprintln!("arm: sharded ASD (4×3) × {services} services");
    let (sharded, recovery) = ace_arm("sharded", 4, 3, services, threads, storm_len, true);
    eprintln!("arm: jini × {services} services");
    let jini = jini_arm(services, threads, storm_len);
    eprintln!("arm: central × {services} services");
    let central = central_arm(services, threads, storm_len);

    let rows = [&single, &sharded, &jini, &central];
    let speedup = sharded.aggregate_per_sec / single.aggregate_per_sec.max(1e-9);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut json = String::from("{\n  \"directory_shard\": {\n");
    let _ = writeln!(json, "    \"services\": {services},");
    let _ = writeln!(json, "    \"threads\": {threads},");
    let _ = writeln!(json, "    \"cores\": {cores},");
    let _ = writeln!(json, "    \"storm_secs\": {},", storm_len.as_secs_f64());
    let _ = writeln!(
        json,
        "    \"methodology\": \"aggregate = sum of per-shard isolated saturation storms \
         (name lookups touch only their owning shard, so capacities add across hosts); \
         concurrent = all shards stormed at once from one process, bounded by this \
         machine's cores\","
    );
    json.push_str("    \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"system\": \"{}\", \"shards\": {}, \"replication\": {}, \
             \"services\": {}, \"threads\": {}, \"register_s\": {:.2}, \
             \"ops\": {}, \"errors\": {}, \"concurrent_lookups_per_sec\": {:.0}, \
             \"concurrent_lookups_per_min\": {:.0}, \"aggregate_lookups_per_sec\": {:.0}, \
             \"aggregate_lookups_per_min\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}{}",
            r.system,
            r.shards,
            r.replication,
            r.services,
            r.threads,
            r.register_s,
            r.ops,
            r.errors,
            r.per_sec,
            r.per_min,
            r.aggregate_per_sec,
            r.aggregate_per_sec * 60.0,
            r.p50_us,
            r.p99_us,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("    ],\n");
    json.push_str("    \"summary\": {\n");
    let _ = writeln!(json, "      \"sharded_speedup_vs_single\": {speedup:.2},");
    let _ = writeln!(
        json,
        "      \"sharded_lookups_per_min\": {:.0},",
        sharded.aggregate_per_sec * 60.0
    );
    let _ = writeln!(json, "      \"meets_3x_speedup\": {},", speedup >= 3.0);
    let _ = writeln!(
        json,
        "      \"meets_1m_lookups_per_min\": {}{}",
        sharded.aggregate_per_sec * 60.0 >= 1e6,
        if recovery.is_some() { "," } else { "" }
    );
    if let Some(rec) = &recovery {
        json.push_str("      \"recovery\": {\n");
        let _ = writeln!(json, "        \"killed_host\": \"{}\",", rec.killed_host);
        let _ = writeln!(
            json,
            "        \"listed_after_kill\": {},",
            rec.listed_after_kill
        );
        let _ = writeln!(json, "        \"lost_registrations\": {},", rec.lost);
        let _ = writeln!(
            json,
            "        \"sample_resolved\": \"{}/{}\",",
            rec.sample_resolved, rec.sample
        );
        let _ = writeln!(json, "        \"renewal_repairs\": {},", rec.repairs);
        let _ = writeln!(
            json,
            "        \"replica_repaired\": {}",
            rec.replica_repaired
        );
        json.push_str("      }\n");
    }
    json.push_str("    }\n  }\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    eprintln!("wrote {out_path}");

    if let Some(rec) = &recovery {
        assert_eq!(
            rec.lost, 0,
            "shard-kill recovery lost registrations — see {out_path}"
        );
    }
}
