//! Regenerate the paper-derived experiments (DESIGN.md's index).
//!
//! ```sh
//! cargo run --release -p ace-bench --bin experiments          # all
//! cargo run --release -p ace-bench --bin experiments e03 e15  # selected
//! ```
//!
//! The output of a full run is recorded in EXPERIMENTS.md.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = ace_bench::all_experiments();

    let selected: Vec<&(&str, fn())> = if args.is_empty() {
        experiments.iter().collect()
    } else {
        experiments
            .iter()
            .filter(|(id, _)| args.iter().any(|a| a.eq_ignore_ascii_case(id)))
            .collect()
    };
    if selected.is_empty() {
        eprintln!(
            "no matching experiments; known ids: {}",
            experiments
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(1);
    }

    println!("ACE experiment harness — {} experiment(s)", selected.len());
    let started = std::time::Instant::now();
    for (id, run) in selected {
        let t = std::time::Instant::now();
        run();
        println!("  [{id} completed in {:.1}s]", t.elapsed().as_secs_f64());
    }
    println!(
        "\nall experiments done in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
