//! Measure the live-upgrade pause across the whole building and turn it
//! into the `BENCH_pr6.json` artifact.
//!
//! ```sh
//! cargo run --release -p ace-bench --bin upgrade_pause -- -o BENCH_pr6.json
//! ```
//!
//! The harness builds the canonical [`AceEnvironment`], then rolls
//! repeated building-wide upgrade sweeps (every service daemon, the store
//! replicas, and the framework tier).  Two result sections:
//!
//! * **pause quantiles** — per-daemon p50/p99 of the upgrade pause (last
//!   in-flight verb drained → replacement serving), plus the building-wide
//!   aggregate;
//! * **session survival** — client links parked before the sweeps, checked
//!   out again after each one: how many resumed on their pre-upgrade
//!   ticket in one round trip vs fell back to a full handshake.

use ace_apps::OPhone;
use ace_core::prelude::*;
use ace_env::{AceEnvironment, CameraModel, EnvConfig, Projector, PtzCamera};
use ace_identity::{AuthDb, Fiu, IButtonReader, IdMonitor, ScannerDevice, UserDb};
use ace_workspace::{VncHost, Wss};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Replacements for the classes `default_replacement` leaves to the
/// caller (stateless here, or carried by the behavior snapshot).
fn custom_replacement(handle: &DaemonHandle) -> Option<Box<dyn ServiceBehavior>> {
    let class = handle.config().class.as_str();
    Some(match class {
        "Service.Database.User" => Box::new(UserDb::new()) as Box<dyn ServiceBehavior>,
        "Service.Database.Authorization" => Box::new(AuthDb::new()),
        "Service.IDMonitor" => Box::new(IdMonitor::new()),
        "Service.VNCHost" => Box::new(VncHost::new()),
        "Service.WorkspaceServer" => Box::new(Wss::new()),
        "Service.Device.FIU" => Box::new(Fiu::new(ScannerDevice::default())),
        "Service.Device.IButton" => Box::new(IButtonReader::new()),
        "Service.App.OPhone" => Box::new(OPhone::new(440.0)),
        _ if class == Projector::CLASS => Box::new(Projector::new()),
        _ if class.contains("Camera") => Box::new(PtzCamera::new(CameraModel::Vcc4)),
        _ => return None,
    })
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut out_path = String::from("BENCH_pr6.json");
    let mut sweeps: usize = 8;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => out_path = args.next().expect("-o needs a path"),
            "--sweeps" => {
                sweeps = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--sweeps needs a count")
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let mut env = AceEnvironment::build(EnvConfig::default()).expect("build environment");
    let admin = env.admin;

    // Session pool over every upgradeable address: prime one full
    // handshake per target so each later checkout can only succeed by
    // resuming on its ticket (or re-handshaking, which we count).
    let metrics = MetricsRegistry::new();
    let pool = Arc::new(LinkPool::with_metrics(&env.net, "core", admin, &metrics));
    let mut targets: Vec<(String, Addr)> = env
        .daemons
        .iter()
        .map(|(n, h)| (n.clone(), h.addr().clone()))
        .collect();
    if let Some(cluster) = &env.store {
        for (h, _) in &cluster.replicas {
            targets.push((h.name().to_string(), h.addr().clone()));
        }
    }
    targets.push(("roomdb".into(), env.fw.roomdb_addr.clone()));
    targets.push(("asd".into(), env.fw.asd_addr.clone()));
    targets.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, addr) in &targets {
        pool.checkout(addr).expect("prime dial").discard();
    }
    let primed_handshakes = metrics.counter("link.full_handshakes").get();

    let mut pauses_ms: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut resumed: u64 = 0;
    let mut rehandshaked: u64 = 0;
    for sweep in 0..sweeps {
        let rolled = env
            .rolling_upgrade(&mut |env, handle| {
                env.default_replacement(handle)
                    .or_else(|| custom_replacement(handle))
            })
            .expect("rolling sweep");
        for entry in &rolled {
            pauses_ms
                .entry(entry.name.clone())
                .or_default()
                .push(entry.stats.pause.as_secs_f64() * 1e3);
            assert_eq!(
                entry.incarnation,
                sweep as u64 + 1,
                "{}: non-monotone incarnation",
                entry.name
            );
        }
        // Every parked pre-sweep link is now stale; a fresh checkout per
        // target either resumes on the carried-over ticket vault or pays
        // a full handshake.
        for (_, addr) in &targets {
            let link = pool.checkout(addr).expect("post-sweep dial");
            if link.resumed() {
                resumed += 1;
            } else {
                rehandshaked += 1;
            }
            link.discard();
        }
    }

    let mut all_ms: Vec<f64> = pauses_ms.values().flatten().copied().collect();
    all_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let mut json = String::from("{\n  \"upgrade_pause\": {\n    \"per_daemon\": [\n");
    let daemon_rows: Vec<String> = pauses_ms
        .iter()
        .map(|(name, ms)| {
            let mut sorted = ms.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            format!(
                "      {{\"name\": \"{}\", \"samples\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                json_escape(name),
                sorted.len(),
                percentile(&sorted, 50.0),
                percentile(&sorted, 99.0)
            )
        })
        .collect();
    json.push_str(&daemon_rows.join(",\n"));
    json.push_str(&format!(
        "\n    ],\n    \"overall\": {{\"sweeps\": {sweeps}, \"upgrades\": {}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}\n  }},\n",
        all_ms.len(),
        percentile(&all_ms, 50.0),
        percentile(&all_ms, 99.0),
        all_ms.last().copied().unwrap_or(0.0)
    ));
    let total = resumed + rehandshaked;
    let rate = if total > 0 {
        resumed as f64 / total as f64
    } else {
        0.0
    };
    json.push_str(&format!(
        "  \"sessions\": {{\n    \"post_upgrade_checkouts\": {total},\n    \
         \"resumed\": {resumed},\n    \"rehandshaked\": {rehandshaked},\n    \
         \"resume_rate\": {rate:.4},\n    \"priming_handshakes\": {primed_handshakes},\n    \
         \"pool_resume_hits\": {},\n    \"pool_full_handshakes\": {}\n  }}\n}}\n",
        metrics.counter("link.resume_hits").get(),
        metrics.counter("link.full_handshakes").get(),
    ));
    std::fs::write(&out_path, &json).expect("write artifact");

    println!(
        "wrote {out_path}: {} upgrades over {sweeps} sweeps, pause p50={:.2}ms p99={:.2}ms, \
         sessions resumed={resumed}/{total} ({:.1}%)",
        all_ms.len(),
        percentile(&all_ms, 50.0),
        percentile(&all_ms, 99.0),
        rate * 100.0
    );

    env.shutdown();
}
