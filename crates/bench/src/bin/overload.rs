//! Shed-vs-collapse: measure what bounded admission buys under overload,
//! and turn it into the `BENCH_pr7.json` artifact.
//!
//! ```sh
//! cargo run --release -p ace-bench --bin overload -- -o BENCH_pr7.json
//! ```
//!
//! One daemon with a deliberately slow bulk verb (`work`, ~10ms of
//! control-thread time, so capacity is ~100 calls/s) is offered rising load
//! by impatient clients: each call carries the client's 100ms timeout as a
//! `deadline=` budget, and a client that times out abandons the link and
//! re-offers immediately — the behavior that drives real queue collapse.
//!
//! Two server configurations face the same storm:
//!
//! * **uncontrolled** — the pre-overload-control daemon: effectively
//!   unbounded queue, no deadline enforcement.  Every abandoned call stays
//!   queued and is eventually *executed for nobody*; once the standing
//!   queue exceeds the client timeout, goodput collapses toward zero.
//! * **controlled** — the default [`AdmissionConfig`]: bounded lanes,
//!   CoDel-style queue-wait shedding, deadline-expired commands dropped at
//!   dequeue.  Excess offers come back as instant retryable `E_BUSY`; the
//!   standing queue stays short, so admitted calls finish inside their
//!   budget and goodput holds near capacity.

use ace_core::prelude::*;
use ace_core::AdmissionConfig;
use ace_security::keys::KeyPair;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Control-thread burn per `work` call.
const WORK_MS: i64 = 10;
/// Client patience; also the stamped `deadline=` budget.
const CLIENT_TIMEOUT: Duration = Duration::from_millis(150);
/// Per-row warmup before samples count.
const WARMUP: Duration = Duration::from_secs(1);
/// Per-row measurement window.
const MEASURE: Duration = Duration::from_secs(3);

struct SlowWork;
impl ServiceBehavior for SlowWork {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("work", "burn control-thread time").optional(
            "ms",
            ArgType::Int,
            "milliseconds of simulated work",
        ))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        let ms = cmd.get_int("ms").unwrap_or(WORK_MS).clamp(0, 100) as u64;
        std::thread::sleep(Duration::from_millis(ms));
        Reply::ok()
    }
}

#[derive(Default)]
struct RowTotals {
    attempts: u64,
    goodput: u64,
    shed: u64,
    timeouts: u64,
    latencies_ms: Vec<f64>,
}

struct Row {
    mode: &'static str,
    load: &'static str,
    workers: usize,
    offered_per_sec: f64,
    goodput_per_sec: f64,
    shed_per_sec: f64,
    timeouts_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    queue_shed: u64,
    queue_deadline_shed: u64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Run one (server config, worker count) cell and return its table row.
fn run_row(
    mode: &'static str,
    load: &'static str,
    workers: usize,
    admission: AdmissionConfig,
) -> Row {
    let net = SimNet::new();
    net.add_host("h");
    let daemon = Daemon::spawn(
        &net,
        DaemonConfig::new("victim", "Service.SlowWork", "room", "h", 6200)
            .with_admission(admission),
        Box::new(SlowWork),
    )
    .expect("spawn victim");

    let stop = Arc::new(AtomicBool::new(false));
    let measuring = Arc::new(AtomicBool::new(false));
    let totals: Arc<Mutex<RowTotals>> = Arc::new(Mutex::new(RowTotals::default()));

    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let net = net.clone();
            let addr = daemon.addr().clone();
            let stop = Arc::clone(&stop);
            let measuring = Arc::clone(&measuring);
            let totals = Arc::clone(&totals);
            std::thread::spawn(move || {
                let me = KeyPair::generate(&mut rand::thread_rng());
                let mut local = RowTotals::default();
                let mut client: Option<ServiceClient> = None;
                while !stop.load(Ordering::SeqCst) {
                    if client.is_none() {
                        match ServiceClient::connect(&net, &"h".into(), addr.clone(), &me) {
                            Ok(mut c) => {
                                c.set_timeout(CLIENT_TIMEOUT);
                                client = Some(c);
                            }
                            Err(_) => {
                                std::thread::sleep(Duration::from_millis(1));
                                continue;
                            }
                        }
                    }
                    let counted = measuring.load(Ordering::SeqCst);
                    if counted {
                        local.attempts += 1;
                    }
                    let t0 = Instant::now();
                    match client
                        .as_mut()
                        .expect("connected")
                        .call(&CmdLine::new("work"))
                    {
                        Ok(_) => {
                            if counted {
                                local.goodput += 1;
                                local.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            }
                        }
                        Err(ClientError::Service { code, .. }) if code.is_retryable() => {
                            if counted {
                                local.shed += 1;
                            }
                            // Impatient re-offer: the shed reply came back
                            // fast, so the client is free to hammer again.
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(ClientError::Service { code, msg }) => {
                            panic!("unexpected service error {code}: {msg}");
                        }
                        Err(ClientError::Link(_)) => {
                            // Timed out (or severed): abandon the link and
                            // re-offer on a fresh one — the queued command
                            // is now a zombie the server may still execute.
                            if counted {
                                local.timeouts += 1;
                            }
                            client = None;
                        }
                    }
                }
                let mut t = totals.lock().unwrap();
                t.attempts += local.attempts;
                t.goodput += local.goodput;
                t.shed += local.shed;
                t.timeouts += local.timeouts;
                t.latencies_ms.extend(local.latencies_ms);
            })
        })
        .collect();

    std::thread::sleep(WARMUP);
    measuring.store(true, Ordering::SeqCst);
    std::thread::sleep(MEASURE);
    measuring.store(false, Ordering::SeqCst);
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().expect("worker");
    }

    // Server-side accounting via the priority lane (answerable even with a
    // drowning bulk lane — that is the point).
    let me = KeyPair::generate(&mut rand::thread_rng());
    let mut probe =
        ServiceClient::connect(&net, &"h".into(), daemon.addr().clone(), &me).expect("probe");
    let report = StatsReport::from_cmdline(&probe.call(&CmdLine::new("aceStats")).expect("stats"));
    let counter = |k: &str| report.counters.get(k).copied().unwrap_or(0);
    let queue_shed = counter("shed.bulkFull") + counter("shed.queueWait");
    let queue_deadline_shed = counter("shed.deadline");
    daemon.shutdown();

    let t = totals.lock().unwrap();
    let mut sorted = t.latencies_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let secs = MEASURE.as_secs_f64();
    Row {
        mode,
        load,
        workers,
        offered_per_sec: t.attempts as f64 / secs,
        goodput_per_sec: t.goodput as f64 / secs,
        shed_per_sec: t.shed as f64 / secs,
        timeouts_per_sec: t.timeouts as f64 / secs,
        p50_ms: percentile(&sorted, 50.0),
        p99_ms: percentile(&sorted, 99.0),
        queue_shed,
        queue_deadline_shed,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_pr7.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => out_path = args.next().expect("-o needs a path"),
            other => panic!("unknown argument `{other}`"),
        }
    }

    let capacity = 1000.0 / WORK_MS as f64;
    // Worker counts per offered-load tier.  4 closed-loop workers sit at
    // capacity (the 1x baseline); with 100ms patience, N impatient workers
    // re-offer at least N·10/s even when every call times out, so 20 and 40
    // workers pin offered load at or above 2x and 4x capacity.
    let tiers: [(&str, usize); 3] = [("1x", 4), ("2x", 20), ("4x", 40)];

    let mut rows: Vec<Row> = Vec::new();
    for (load, workers) in tiers {
        for (mode, admission) in [
            ("uncontrolled", AdmissionConfig::uncontrolled()),
            ("controlled", AdmissionConfig::default()),
        ] {
            let row = run_row(mode, load, workers, admission);
            eprintln!(
                "{mode:>12} {load}: offered {:.0}/s, goodput {:.0}/s, shed {:.0}/s, \
                 timeouts {:.0}/s, p50 {:.1}ms, p99 {:.1}ms, queue shed {} (+{} expired)",
                row.offered_per_sec,
                row.goodput_per_sec,
                row.shed_per_sec,
                row.timeouts_per_sec,
                row.p50_ms,
                row.p99_ms,
                row.queue_shed,
                row.queue_deadline_shed,
            );
            rows.push(row);
        }
    }

    let find = |mode: &str, load: &str| {
        rows.iter()
            .find(|r| r.mode == mode && r.load == load)
            .expect("row exists")
    };
    let baseline_p99 = find("uncontrolled", "1x").p99_ms;
    let controlled_4x = find("controlled", "4x");
    let uncontrolled_4x = find("uncontrolled", "4x");

    let mut json = format!(
        "{{\n  \"overload\": {{\n    \"service_ms\": {WORK_MS},\n    \
         \"capacity_per_sec\": {capacity:.0},\n    \"client_timeout_ms\": {},\n    \
         \"warmup_s\": {},\n    \"measure_s\": {},\n    \"rows\": [\n",
        CLIENT_TIMEOUT.as_millis(),
        WARMUP.as_secs(),
        MEASURE.as_secs(),
    );
    let row_lines: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "      {{\"mode\": \"{}\", \"load\": \"{}\", \"workers\": {}, \
                 \"offered_per_sec\": {:.1}, \"goodput_per_sec\": {:.1}, \
                 \"shed_per_sec\": {:.1}, \"timeouts_per_sec\": {:.1}, \
                 \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \
                 \"queue_shed\": {}, \"queue_deadline_shed\": {}}}",
                r.mode,
                r.load,
                r.workers,
                r.offered_per_sec,
                r.goodput_per_sec,
                r.shed_per_sec,
                r.timeouts_per_sec,
                r.p50_ms,
                r.p99_ms,
                r.queue_shed,
                r.queue_deadline_shed,
            )
        })
        .collect();
    json.push_str(&row_lines.join(",\n"));
    json.push_str(&format!(
        "\n    ],\n    \"summary\": {{\n      \
         \"uncontrolled_1x_p99_ms\": {baseline_p99:.2},\n      \
         \"controlled_4x_goodput_per_sec\": {:.1},\n      \
         \"controlled_4x_goodput_frac_of_capacity\": {:.3},\n      \
         \"controlled_4x_p99_ms\": {:.2},\n      \
         \"controlled_4x_p99_vs_baseline\": {:.2},\n      \
         \"uncontrolled_4x_goodput_per_sec\": {:.1},\n      \
         \"uncontrolled_4x_goodput_frac_of_capacity\": {:.3}\n    }}\n  }}\n}}\n",
        controlled_4x.goodput_per_sec,
        controlled_4x.goodput_per_sec / capacity,
        controlled_4x.p99_ms,
        if baseline_p99 > 0.0 {
            controlled_4x.p99_ms / baseline_p99
        } else {
            0.0
        },
        uncontrolled_4x.goodput_per_sec,
        uncontrolled_4x.goodput_per_sec / capacity,
    ));
    std::fs::write(&out_path, &json).expect("write artifact");
    println!(
        "wrote {out_path}: controlled 4x goodput {:.0}/s ({:.0}% of capacity, p99 {:.1}ms) \
         vs uncontrolled 4x {:.0}/s ({:.0}%)",
        controlled_4x.goodput_per_sec,
        100.0 * controlled_4x.goodput_per_sec / capacity,
        controlled_4x.p99_ms,
        uncontrolled_4x.goodput_per_sec,
        100.0 * uncontrolled_4x.goodput_per_sec / capacity,
    );
}
