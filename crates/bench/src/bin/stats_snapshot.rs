//! Snapshot the metrics registries of a small live topology into a JSON
//! bench artifact (`BENCH_pr4.json`).
//!
//! ```sh
//! cargo run --release -p ace-bench --bin stats_snapshot -- \
//!     -o BENCH_pr4.json bench_store_disk.txt bench_daemon_roundtrip.txt
//! ```
//!
//! Positional arguments are optional Criterion output files; their `bench`
//! lines are merged into the artifact under `"benches"` so one file carries
//! both the timing rows and the per-daemon registry snapshots.

use ace_core::prelude::*;
use ace_directory::bootstrap;
use ace_media::services::AudioMixer;
use ace_media::Frame;
use ace_security::keys::KeyPair;
use ace_store::{DiskImage, MemStorage, StorageHandle, StoreClient, StoreReplica, WalConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

struct Echo;
impl ServiceBehavior for Echo {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("echo", "echo").optional("x", ArgType::Int, "payload"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        let x = cmd.get_int("x").unwrap_or(0);
        Reply::ok_with(|c| c.arg("x", x))
    }
}

/// One `bench <name> <value> <unit>/iter (<iters> iters)` line.
fn parse_bench_line(line: &str) -> Option<(String, f64, String, u64)> {
    let rest = line.strip_prefix("bench ")?;
    let mut tokens = rest.split_whitespace();
    let name = tokens.next()?.to_string();
    let value: f64 = tokens.next()?.parse().ok()?;
    let unit = tokens.next()?.strip_suffix("/iter")?.to_string();
    let iters: u64 = tokens.next()?.trim_start_matches('(').parse().ok()?;
    Some((name, value, unit, iters))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn report_to_json(report: &StatsReport, indent: &str) -> String {
    let mut out = String::from("{\n");
    let kv = |out: &mut String, section: &str, body: String, comma: bool| {
        let _ = writeln!(
            out,
            "{indent}  \"{section}\": {{{body}\n{indent}  }}{}",
            if comma { "," } else { "" }
        );
    };
    let scalar_body = |pairs: Vec<(String, String)>| {
        pairs
            .iter()
            .map(|(k, v)| format!("\n{indent}    \"{}\": {v}", json_escape(k)))
            .collect::<Vec<_>>()
            .join(",")
    };
    kv(
        &mut out,
        "counters",
        scalar_body(
            report
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.to_string()))
                .collect(),
        ),
        true,
    );
    kv(
        &mut out,
        "gauges",
        scalar_body(
            report
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.to_string()))
                .collect(),
        ),
        true,
    );
    kv(
        &mut out,
        "histograms",
        scalar_body(
            report
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        format!(
                            "{{\"count\": {}, \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {}, \"mean_us\": {:.1}}}",
                            h.count, h.p50_us, h.p90_us, h.p99_us, h.max_us, h.mean_us
                        ),
                    )
                })
                .collect(),
        ),
        false,
    );
    out.push_str(indent);
    out.push('}');
    out
}

fn ace_stats(client: &mut ServiceClient) -> StatsReport {
    let reply = client.call(&CmdLine::new("aceStats")).expect("aceStats");
    StatsReport::from_cmdline(&reply)
}

fn main() {
    let mut out_path = String::from("BENCH_pr4.json");
    let mut bench_files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "-o" {
            out_path = args.next().expect("-o needs a path");
        } else {
            bench_files.push(arg);
        }
    }

    // A small representative topology: framework tier + store + media + echo.
    let net = SimNet::new();
    for h in ["core", "svc", "av"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(600)).expect("bootstrap");
    let storage = StorageHandle::Memory(MemStorage::new());
    let (disk, _) = DiskImage::open(&storage, WalConfig::default()).expect("open disk");
    let store = Daemon::spawn(
        &net,
        fw.service_config("store_a", "Service.Store", "machineroom", "svc", 6100),
        Box::new(StoreReplica::new(disk, Duration::from_secs(3600))),
    )
    .expect("spawn store");
    let mixer = Daemon::spawn(
        &net,
        fw.service_config("mixer", "Service.Media.Mixer", "hawk", "av", 6101),
        Box::new(AudioMixer::new("out")),
    )
    .expect("spawn mixer");
    let echo = Daemon::spawn(
        &net,
        fw.service_config("echo", "Service.Echo", "hawk", "svc", 6102),
        Box::new(Echo),
    )
    .expect("spawn echo");

    // Drive enough traffic that every histogram has a meaningful shape.
    let me = KeyPair::generate(&mut rand::thread_rng());
    let mut echo_client = ServiceClient::connect(&net, &"core".into(), echo.addr().clone(), &me)
        .expect("echo client");
    for i in 0..500 {
        echo_client
            .call(&CmdLine::new("echo").arg("x", i as i64))
            .expect("echo call");
    }
    let mut store_client = StoreClient::new(
        net.clone(),
        "core",
        KeyPair::generate(&mut rand::thread_rng()),
        vec![store.addr().clone()],
    );
    for i in 0..200 {
        store_client
            .put("bench", &format!("k{i}"), format!("v{i}").as_bytes())
            .expect("store put");
    }
    let mut mixer_client = ServiceClient::connect(&net, &"core".into(), mixer.addr().clone(), &me)
        .expect("mixer client");
    mixer_client
        .call_ok(&CmdLine::new("addInput").arg("stream", "mic"))
        .expect("addInput");
    for seq in 0..200i64 {
        let frame = Frame {
            stream: "mic".into(),
            seq,
            data: vec![0, 1, 2, 3],
        };
        mixer_client.call(&frame.to_cmd()).expect("push");
    }

    // Snapshot every daemon's registry over the standard verb.
    let mut daemons: BTreeMap<&str, StatsReport> = BTreeMap::new();
    for (name, addr) in [
        ("asd", fw.asd_addr.clone()),
        ("netlogger", fw.logger_addr.clone()),
        ("store_a", store.addr().clone()),
        ("mixer", mixer.addr().clone()),
        ("echo", echo.addr().clone()),
    ] {
        let mut c = ServiceClient::connect(&net, &"core".into(), addr, &me).expect("stats client");
        daemons.insert(name, ace_stats(&mut c));
    }

    let mut benches = Vec::new();
    for path in &bench_files {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read bench file {path}: {e}"));
        for line in text.lines() {
            if let Some((name, value, unit, iters)) = parse_bench_line(line) {
                benches.push(format!(
                    "    {{\n      \"name\": \"{}\",\n      \"value\": {value},\n      \"unit\": \"{}/iter\",\n      \"iters\": {iters}\n    }}",
                    json_escape(&name),
                    json_escape(&unit)
                ));
            }
        }
    }

    let mut json = String::from("{\n  \"benches\": [\n");
    json.push_str(&benches.join(",\n"));
    json.push_str("\n  ],\n  \"daemons\": {\n");
    let body: Vec<String> = daemons
        .iter()
        .map(|(name, report)| format!("    \"{name}\": {}", report_to_json(report, "    ")))
        .collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("write artifact");

    println!(
        "wrote {out_path}: {} bench rows, {} daemon snapshots",
        benches.len(),
        daemons.len()
    );
    for (name, report) in &daemons {
        println!(
            "  {name}: {} counters, {} gauges, {} histograms",
            report.counters.len(),
            report.gauges.len(),
            report.histograms.len()
        );
    }

    echo.shutdown();
    mixer.shutdown();
    store.shutdown();
    fw.shutdown();
}
