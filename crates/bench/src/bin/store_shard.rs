//! Store scale-out benchmark, and the `BENCH_pr10.json` artifact.
//!
//! ```sh
//! cargo run --release -p ace-bench --bin store_shard -- -o BENCH_pr10.json
//! cargo run --release -p ace-bench --bin store_shard -- --secs 1 --threads 4
//! ```
//!
//! Three experiments on the sharded persistent-store plane:
//!
//! * **Write scaling** — a closed-loop put storm against one replica
//!   group (the pre-PR-10 store) vs 4 shards × 3 replicas.  As in the
//!   directory bench, the headline figure is **aggregate capacity**: each
//!   shard stormed in isolation over keys it owns, per-shard saturation
//!   throughputs summed.  Writes touch exactly their owning group (no
//!   cross-shard coordination), so capacities add across hosts in a real
//!   deployment; the single-group arm is measured identically, making the
//!   speedup a capacity ratio, not a load-generator artifact.
//! * **Read latency** — the same keys read through the leased
//!   single-replica path vs the quorum digest scan (the ablation arm the
//!   lease-safety argument in DESIGN.md calls for).
//! * **Rebuild time vs keyspace** — kill one replica at 1k/4k/16k keys
//!   and rejoin it by snapshot shipping + WAL tail, against the old
//!   anti-entropy-only rejoin (empty replica, pull-based sync).
//! * **Rebuild time vs write history** — the near-flat claim.  A full
//!   replay pays for every write ever made; the snapshot ships only live
//!   state.  At a fixed keyspace, grow the overwrite history 16× and
//!   show rebuild time barely moves while replayed-history cost would
//!   grow linearly.

use ace_baselines::lookup_storm;
use ace_core::prelude::*;
use ace_security::keys::KeyPair;
use ace_store::{
    spawn_sharded_store, DiskImage, MemStorage, ShardedStoreClient, ShardedStoreCluster,
    StorageHandle, StoreReplica, WalConfig, SHARD_CLASS,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEFAULT_THREADS: usize = 8;
const DEFAULT_STORM: Duration = Duration::from_secs(3);
const REBUILD_KEYSPACES: [usize; 3] = [1_000, 4_000, 16_000];
const HISTORY_KEYS: usize = 2_000;
const HISTORY_ROUNDS: [usize; 3] = [1, 4, 16];
const KEYS_PER_SHARD: usize = 1_000;
const READ_KEYS: usize = 200;
const READS: usize = 2_000;
const PAYLOAD: &[u8] = &[0x5A; 64];

struct World {
    net: SimNet,
    cluster: ShardedStoreCluster,
}

fn world(groups: usize, replication: usize, sync: Duration) -> World {
    let net = SimNet::new();
    net.add_host("client");
    let hosts: Vec<HostId> = (0..groups * replication)
        .map(|i| {
            let h = format!("b{i}");
            net.add_host(h.as_str());
            HostId::from(h.as_str())
        })
        .collect();
    let cluster = spawn_sharded_store(
        &net,
        &hosts,
        groups,
        replication,
        sync,
        WalConfig::default(),
    )
    .unwrap();
    World { net, cluster }
}

fn client(w: &World) -> ShardedStoreClient {
    let identity = KeyPair::generate(&mut rand::thread_rng());
    let pool = Arc::new(LinkPool::new(&w.net, "client", identity));
    w.cluster.client(&w.net, "client", identity, pool)
}

struct WriteRow {
    system: &'static str,
    groups: usize,
    replication: usize,
    threads: usize,
    ops: u64,
    errors: u64,
    per_sec: f64,
    aggregate_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Storm one arm: concurrent pass over the whole plane, then the
/// per-shard isolated capacity passes (see the module doc).
fn write_arm(
    system: &'static str,
    groups: usize,
    replication: usize,
    threads: usize,
    storm_len: Duration,
) -> WriteRow {
    let w = world(groups, replication, Duration::from_secs(3600));
    let metrics = MetricsRegistry::new();
    let hist = metrics.histogram("store.put");

    // Key pools per group: puts on an existing key exercise the full
    // production write path (version read, then quorum commit).
    let probe = client(&w);
    let mut pools: Vec<Vec<String>> = vec![Vec::new(); groups];
    let mut j = 0usize;
    while pools.iter().any(|p| p.len() < KEYS_PER_SHARD) {
        let key = format!("k{j}");
        let g = probe.group_for("bench", &key);
        if pools[g].len() < KEYS_PER_SHARD {
            pools[g].push(key);
        }
        j += 1;
    }

    let report = lookup_storm(
        threads,
        storm_len,
        |worker| {
            let mut c = client(&w);
            let mut i = worker;
            move || {
                i = i.wrapping_add(1);
                let key = format!("k{}", i % (groups * KEYS_PER_SHARD));
                c.put("bench", &key, PAYLOAD).is_ok()
            }
        },
        |d| hist.record(d),
    );

    // Aggregate capacity: storm each group in isolation over its own keys.
    let capacity_len = storm_len
        .div_f64(groups as f64)
        .max(Duration::from_millis(250));
    let mut aggregate_per_sec = 0.0;
    for (g, pool) in pools.iter().enumerate() {
        let rep = lookup_storm(
            threads,
            capacity_len,
            |worker| {
                let mut c = client(&w);
                let mut i = worker;
                move || {
                    i = i.wrapping_add(1);
                    c.put("bench", &pool[i % pool.len()], PAYLOAD).is_ok()
                }
            },
            |_| {},
        );
        assert_eq!(rep.errors, 0, "group {g}: capacity storm saw put errors");
        aggregate_per_sec += rep.per_sec();
    }

    let snap = hist.snapshot();
    w.cluster.shutdown();
    WriteRow {
        system,
        groups,
        replication,
        threads,
        ops: report.ops,
        errors: report.errors,
        per_sec: report.per_sec(),
        aggregate_per_sec,
        p50_us: snap.quantile(0.50),
        p99_us: snap.quantile(0.99),
    }
}

struct ReadRow {
    mode: &'static str,
    reads: usize,
    p50_us: f64,
    p99_us: f64,
    leased_share: f64,
}

/// Leased single-replica reads vs the quorum digest scan over the same
/// warmed keyspace.
fn read_arms() -> (ReadRow, ReadRow) {
    let w = world(4, 3, Duration::from_secs(3600));
    let mut c = client(&w);
    let items: Vec<(String, Vec<u8>)> = (0..READ_KEYS)
        .map(|i| (format!("r{i}"), PAYLOAD.to_vec()))
        .collect();
    c.put_many("bench", &items).unwrap();

    let metrics = MetricsRegistry::new();
    // Warm every group's lease off the clock.
    for i in 0..READ_KEYS {
        c.get("bench", &format!("r{i}")).unwrap();
    }
    let before = c.stats();
    let leased_hist = metrics.histogram("read.leased");
    for i in 0..READS {
        let key = format!("r{}", i % READ_KEYS);
        let started = Instant::now();
        c.get("bench", &key).unwrap();
        leased_hist.record(started.elapsed());
    }
    let stats = c.stats();
    let leased_share = (stats.leased_reads - before.leased_reads) as f64 / READS as f64;

    let quorum_hist = metrics.histogram("read.quorum");
    for i in 0..READS {
        let key = format!("r{}", i % READ_KEYS);
        let g = c.group_for("bench", &key);
        let started = Instant::now();
        c.group_client(g).get("bench", &key).unwrap();
        quorum_hist.record(started.elapsed());
    }

    let leased = leased_hist.snapshot();
    let quorum = quorum_hist.snapshot();
    w.cluster.shutdown();
    (
        ReadRow {
            mode: "leased",
            reads: READS,
            p50_us: leased.quantile(0.50),
            p99_us: leased.quantile(0.99),
            leased_share,
        },
        ReadRow {
            mode: "quorum",
            reads: READS,
            p50_us: quorum.quantile(0.50),
            p99_us: quorum.quantile(0.99),
            leased_share: 0.0,
        },
    )
}

struct RebuildRow {
    keys: usize,
    snapshot_ms: f64,
    snapshot_bytes: usize,
    snapshot_chunks: usize,
    tail_records: usize,
    anti_entropy_ms: f64,
    speedup: f64,
}

fn seed_keys(c: &mut ShardedStoreClient, keys: usize) {
    let mut i = 0;
    while i < keys {
        let batch: Vec<(String, Vec<u8>)> = (i..(i + 500).min(keys))
            .map(|k| (format!("k{k}"), PAYLOAD.to_vec()))
            .collect();
        c.put_many("bench", &batch).unwrap();
        i += 500;
    }
}

/// Kill replica 2 of a 1×3 group at `keys` population and time both
/// rejoin protocols: snapshot shipping + WAL tail vs anti-entropy-only
/// (respawn empty, let pull-based sync repopulate it).
fn rebuild_arm(keys: usize) -> RebuildRow {
    // Snapshot shipping.  Sync is parked at one hour so the measurement
    // is the rebuild protocol alone.
    let mut w = world(1, 3, Duration::from_secs(3600));
    let mut c = client(&w);
    seed_keys(&mut c, keys);
    w.cluster.groups[0][2].0.crash();
    let started = Instant::now();
    let report = w.cluster.rebuild_replica(&w.net, 0, 2).unwrap();
    let snapshot_ms = started.elapsed().as_secs_f64() * 1e3;
    let rebuilt = w.cluster.groups[0][2].1.clone();
    assert_eq!(
        rebuilt.len(),
        keys,
        "snapshot rebuild at {keys} keys is incomplete"
    );
    w.cluster.shutdown();

    // Anti-entropy ablation: the pre-PR-10 rejoin.  An empty replica at
    // the same address pulls everything through periodic sync rounds.
    let w = world(1, 3, Duration::from_millis(50));
    let mut c = client(&w);
    seed_keys(&mut c, keys);
    w.cluster.groups[0][2].0.crash();
    let victim = w.cluster.placement.replicas(0)[2].clone();
    let peers: Vec<Addr> = w.cluster.placement.replicas(0)[..2].to_vec();
    let storage = StorageHandle::Memory(MemStorage::new());
    let (disk, _) = DiskImage::open(&storage, WalConfig::default()).unwrap();
    let empty = disk.clone();
    let started = Instant::now();
    let daemon = Daemon::spawn(
        &w.net,
        DaemonConfig::new(
            "store-rejoin",
            SHARD_CLASS,
            "machine",
            victim.host.as_str(),
            victim.port,
        )
        .with_incarnation(1),
        Box::new(
            StoreReplica::new(disk, Duration::from_millis(50))
                .with_peers(peers)
                .with_placement(w.cluster.placement.clone()),
        ),
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(180);
    while empty.len() < keys {
        assert!(
            Instant::now() < deadline,
            "anti-entropy rejoin at {keys} keys stalled at {} entries",
            empty.len()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let anti_entropy_ms = started.elapsed().as_secs_f64() * 1e3;
    daemon.shutdown();
    w.cluster.shutdown();

    RebuildRow {
        keys,
        snapshot_ms,
        snapshot_bytes: report.snapshot_bytes,
        snapshot_chunks: report.snapshot_chunks,
        tail_records: report.tail_records,
        anti_entropy_ms,
        speedup: anti_entropy_ms / snapshot_ms.max(1e-9),
    }
}

struct HistoryRow {
    rounds: usize,
    history_records: usize,
    snapshot_ms: f64,
    snapshot_records: usize,
}

/// Fixed keyspace, growing overwrite history: snapshot-ship rebuild time
/// must stay near-flat because the snapshot carries the live map only —
/// a full-history replay would grow linearly with `rounds`.
fn history_arm(rounds: usize) -> HistoryRow {
    let mut w = world(1, 3, Duration::from_secs(3600));
    let mut c = client(&w);
    for _ in 0..rounds {
        seed_keys(&mut c, HISTORY_KEYS);
    }
    w.cluster.groups[0][2].0.crash();
    let started = Instant::now();
    let report = w.cluster.rebuild_replica(&w.net, 0, 2).unwrap();
    let snapshot_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(w.cluster.groups[0][2].1.len(), HISTORY_KEYS);
    w.cluster.shutdown();
    HistoryRow {
        rounds,
        history_records: HISTORY_KEYS * rounds,
        snapshot_ms,
        snapshot_records: report.snapshot_records,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_pr10.json");
    let mut threads = DEFAULT_THREADS;
    let mut storm_len = DEFAULT_STORM;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => out_path = args.next().expect("-o needs a path"),
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs an integer")
                    .parse()
                    .expect("--threads takes an integer");
            }
            "--secs" => {
                storm_len = Duration::from_secs_f64(
                    args.next()
                        .expect("--secs needs a number")
                        .parse()
                        .expect("--secs takes a number"),
                );
            }
            other => panic!("unknown argument {other}"),
        }
    }

    eprintln!("arm: single-group write storm (1×3)");
    let single = write_arm("single", 1, 3, threads, storm_len);
    eprintln!("arm: sharded write storm (4×3)");
    let sharded = write_arm("sharded", 4, 3, threads, storm_len);
    eprintln!("arm: leased vs quorum read latency");
    let (leased, quorum) = read_arms();
    let mut rebuilds = Vec::new();
    for keys in REBUILD_KEYSPACES {
        eprintln!("arm: rebuild at {keys} keys");
        rebuilds.push(rebuild_arm(keys));
    }
    let mut histories = Vec::new();
    for rounds in HISTORY_ROUNDS {
        eprintln!("arm: rebuild at {HISTORY_KEYS} keys × {rounds} overwrite rounds");
        histories.push(history_arm(rounds));
    }

    let write_speedup = sharded.aggregate_per_sec / single.aggregate_per_sec.max(1e-9);
    let rebuild_growth = rebuilds.last().unwrap().snapshot_ms / rebuilds[0].snapshot_ms.max(1e-9);
    let keyspace_growth =
        REBUILD_KEYSPACES[REBUILD_KEYSPACES.len() - 1] as f64 / REBUILD_KEYSPACES[0] as f64;
    let history_time_growth =
        histories.last().unwrap().snapshot_ms / histories[0].snapshot_ms.max(1e-9);
    let history_growth = HISTORY_ROUNDS[HISTORY_ROUNDS.len() - 1] as f64 / HISTORY_ROUNDS[0] as f64;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut json = String::from("{\n  \"store_shard\": {\n");
    let _ = writeln!(json, "    \"threads\": {threads},");
    let _ = writeln!(json, "    \"cores\": {cores},");
    let _ = writeln!(json, "    \"storm_secs\": {},", storm_len.as_secs_f64());
    let _ = writeln!(
        json,
        "    \"methodology\": \"aggregate = sum of per-shard isolated saturation storms \
         (puts touch only their owning group, so capacities add across hosts); \
         rebuild arms compare snapshot-ship + WAL-tail against the anti-entropy-only \
         rejoin at the same population; the history arms hold the keyspace fixed and \
         grow overwrite history, where full replay is linear and the snapshot is \
         near-flat\","
    );
    json.push_str("    \"write_scaling\": [\n");
    for (i, r) in [&single, &sharded].iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"system\": \"{}\", \"groups\": {}, \"replication\": {}, \
             \"threads\": {}, \"ops\": {}, \"errors\": {}, \
             \"concurrent_puts_per_sec\": {:.0}, \"aggregate_puts_per_sec\": {:.0}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}}}{}",
            r.system,
            r.groups,
            r.replication,
            r.threads,
            r.ops,
            r.errors,
            r.per_sec,
            r.aggregate_per_sec,
            r.p50_us,
            r.p99_us,
            if i == 1 { "" } else { "," }
        );
    }
    json.push_str("    ],\n");
    json.push_str("    \"read_latency\": [\n");
    for (i, r) in [&leased, &quorum].iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"mode\": \"{}\", \"reads\": {}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"leased_share\": {:.3}}}{}",
            r.mode,
            r.reads,
            r.p50_us,
            r.p99_us,
            r.leased_share,
            if i == 1 { "" } else { "," }
        );
    }
    json.push_str("    ],\n");
    json.push_str("    \"rebuild\": [\n");
    for (i, r) in rebuilds.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"keys\": {}, \"snapshot_ms\": {:.1}, \"snapshot_bytes\": {}, \
             \"snapshot_chunks\": {}, \"tail_records\": {}, \
             \"anti_entropy_ms\": {:.1}, \"speedup_vs_anti_entropy\": {:.2}}}{}",
            r.keys,
            r.snapshot_ms,
            r.snapshot_bytes,
            r.snapshot_chunks,
            r.tail_records,
            r.anti_entropy_ms,
            r.speedup,
            if i + 1 == rebuilds.len() { "" } else { "," }
        );
    }
    json.push_str("    ],\n");
    json.push_str("    \"rebuild_vs_history\": [\n");
    for (i, r) in histories.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"keys\": {HISTORY_KEYS}, \"overwrite_rounds\": {}, \
             \"history_records\": {}, \"snapshot_records\": {}, \"snapshot_ms\": {:.1}}}{}",
            r.rounds,
            r.history_records,
            r.snapshot_records,
            r.snapshot_ms,
            if i + 1 == histories.len() { "" } else { "," }
        );
    }
    json.push_str("    ],\n");
    json.push_str("    \"summary\": {\n");
    let _ = writeln!(
        json,
        "      \"sharded_write_speedup_vs_single\": {write_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "      \"leased_p50_us\": {:.1}, \"quorum_p50_us\": {:.1},",
        leased.p50_us, quorum.p50_us
    );
    let _ = writeln!(
        json,
        "      \"rebuild_time_growth_vs_keyspace\": {rebuild_growth:.2}, \
         \"keyspace_growth\": {keyspace_growth:.0},"
    );
    let _ = writeln!(
        json,
        "      \"rebuild_time_growth_vs_history\": {history_time_growth:.2}, \
         \"history_growth\": {history_growth:.0},"
    );
    let _ = writeln!(
        json,
        "      \"meets_2_5x_write_speedup\": {},",
        write_speedup >= 2.5
    );
    let _ = writeln!(
        json,
        "      \"meets_leased_faster\": {},",
        leased.p50_us < quorum.p50_us
    );
    // Near-flat = a full replay pays for the whole history (16× more
    // records here), the snapshot pays for live state only.
    let _ = writeln!(
        json,
        "      \"meets_near_flat_rebuild\": {}",
        history_time_growth <= 2.5
    );
    json.push_str("    }\n  }\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    eprintln!("wrote {out_path}");

    assert_eq!(single.errors + sharded.errors, 0, "write storms saw errors");
    assert!(
        leased.leased_share >= 0.95,
        "leased pass fell back to quorum too often: {:.3}",
        leased.leased_share
    );
}
