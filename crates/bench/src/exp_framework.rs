//! E1, E4, E6, E7, E18 — daemon composition, hierarchy dispatch,
//! notification fan-out, startup sequence, and device command latency.

use crate::util::*;
use ace_core::prelude::*;
use ace_core::protocol::hex_encode;
use ace_directory::bootstrap;
use ace_media::{Converter, Format};
use ace_security::keys::KeyPair;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

/// E1 (Fig. 4): frames through a chain of converter daemons, depth 1–4.
pub fn e01() {
    header(
        "E1",
        "Fig. 4",
        "daemon composition: pipeline throughput vs depth",
    );
    row("pipeline depth", &["frames/s".into(), "per-frame".into()]);
    const FRAMES: usize = 50;
    let payload = vec![0x5au8; 1024];
    for depth in 1..=4usize {
        let net = SimNet::new();
        net.add_host("core");
        net.add_host("media");
        let fw = bootstrap(&net, "core", Duration::from_secs(60)).unwrap();
        let me = keypair();

        // depth converters; the last one has no sink (terminal).
        let mut stages = Vec::new();
        for i in 0..depth {
            stages.push(
                Daemon::spawn(
                    &net,
                    fw.service_config(
                        &format!("conv{i}"),
                        "Service.Converter",
                        "hawk",
                        "media",
                        6000 + i as u16,
                    ),
                    // Identity conversion: pure plumbing cost.
                    Box::new(Converter::new(Format::Raw, Format::Raw)),
                )
                .unwrap(),
            );
        }
        // Wire stage i → stage i+1.
        for (i, stage) in stages.iter().enumerate().take(depth - 1) {
            let mut c =
                ServiceClient::connect(&net, &"core".into(), stage.addr().clone(), &me).unwrap();
            c.call_ok(
                &CmdLine::new("addSink")
                    .arg("host", "media")
                    .arg("port", 6001 + i as u16),
            )
            .unwrap();
        }

        let mut head =
            ServiceClient::connect(&net, &"core".into(), stages[0].addr().clone(), &me).unwrap();
        let push = CmdLine::new("push")
            .arg("stream", "s")
            .arg("seq", 0)
            .arg("data", hex_encode(&payload));
        let total = time_once(|| {
            for _ in 0..FRAMES {
                head.call(&push).unwrap();
            }
        });
        row(
            &format!("{depth} stage(s)"),
            &[
                format!("{:.0}", ops_per_sec(FRAMES, total)),
                fmt_dur(total / FRAMES as u32),
            ],
        );
        for s in stages {
            s.shutdown();
        }
        fw.shutdown();
    }
}

struct DepthService {
    depth: usize,
}

impl ServiceBehavior for DepthService {
    fn semantics(&self) -> Semantics {
        // Build a hierarchy `depth` levels deep, each level adding commands
        // (Fig. 6's inheritance chain).
        let mut sem = Semantics::new().with(CmdSpec::new("level0", "root command"));
        for level in 1..=self.depth {
            sem = Semantics::new()
                .with(CmdSpec::new(
                    format!("level{level}"),
                    format!("command added at level {level}"),
                ))
                .inheriting(&sem);
        }
        sem
    }

    fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        Reply::ok()
    }
}

/// E4 (Fig. 6): command latency through services whose vocabularies come
/// from deeper and deeper inheritance chains.
pub fn e04() {
    header("E4", "Fig. 6", "dispatch through the service hierarchy");
    row(
        "hierarchy depth",
        &["call latency".into(), "cmds in vocab".into()],
    );
    for depth in [1usize, 2, 4, 8] {
        let net = SimNet::new();
        net.add_host("core");
        let fw = bootstrap(&net, "core", Duration::from_secs(60)).unwrap();
        let me = keypair();
        let svc = Daemon::spawn(
            &net,
            fw.service_config("deep", "Service.Deep", "hawk", "core", 6000),
            Box::new(DepthService { depth }),
        )
        .unwrap();
        let mut client =
            ServiceClient::connect(&net, &"core".into(), svc.addr().clone(), &me).unwrap();
        // Call the deepest (most recently added) command.
        let cmd = CmdLine::new(format!("level{depth}"));
        let latency = time_median(100, || {
            client.call(&cmd).unwrap();
        });
        let vocab = DepthService { depth }.semantics().len() + 5; // + built-ins
        row(
            &format!("depth {depth}"),
            &[fmt_dur(latency), vocab.to_string()],
        );
        svc.shutdown();
        fw.shutdown();
    }
}

struct CountingSink {
    hits: Arc<AtomicU64>,
}

impl ServiceBehavior for CountingSink {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(
            CmdSpec::new("onEvent", "notification sink")
                .optional("service", ArgType::Str, "")
                .optional("cmd", ArgType::Str, ""),
        )
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        self.hits.fetch_add(1, Ordering::SeqCst);
        Reply::ok()
    }
}

struct Emitter;
impl ServiceBehavior for Emitter {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("touch", "watched command"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        Reply::ok()
    }
}

/// E6 (Fig. 8): time from executing a watched command until every
/// registered listener has been notified, vs the number of listeners.
pub fn e06() {
    header("E6", "Fig. 8", "notification fan-out latency");
    row("subscribers", &["fan-out latency".into()]);
    for subs in [1usize, 8, 32, 64] {
        let net = SimNet::new();
        net.add_host("core");
        net.add_host("emit");
        let fw = bootstrap(&net, "core", Duration::from_secs(60)).unwrap();
        let me = keypair();
        let emitter = Daemon::spawn(
            &net,
            fw.service_config("emitter", "Service.Emitter", "hawk", "emit", 6000),
            Box::new(Emitter),
        )
        .unwrap();
        let hits = Arc::new(AtomicU64::new(0));
        let mut sinks = Vec::new();
        let mut to_emitter =
            ServiceClient::connect(&net, &"core".into(), emitter.addr().clone(), &me).unwrap();
        for i in 0..subs {
            let sink = Daemon::spawn(
                &net,
                fw.service_config(
                    &format!("sink{i}"),
                    "Service.Sink",
                    "hawk",
                    "core",
                    6100 + i as u16,
                ),
                Box::new(CountingSink {
                    hits: Arc::clone(&hits),
                }),
            )
            .unwrap();
            to_emitter
                .call_ok(
                    &CmdLine::new("addNotification")
                        .arg("cmd", "touch")
                        .arg("service", format!("sink{i}").as_str())
                        .arg("host", "core")
                        .arg("port", 6100 + i as i64)
                        .arg("notifyCmd", "onEvent"),
                )
                .unwrap();
            sinks.push(sink);
        }

        // Warm the notifier's connections with one round first.
        to_emitter.call_ok(&CmdLine::new("touch")).unwrap();
        while hits.load(Ordering::SeqCst) < subs as u64 {
            std::thread::sleep(Duration::from_micros(200));
        }
        hits.store(0, Ordering::SeqCst);

        let latency = time_once(|| {
            to_emitter.call_ok(&CmdLine::new("touch")).unwrap();
            while hits.load(Ordering::SeqCst) < subs as u64 {
                std::thread::sleep(Duration::from_micros(100));
            }
        });
        row(&format!("{subs}"), &[fmt_dur(latency)]);

        for s in sinks {
            s.shutdown();
        }
        emitter.shutdown();
        fw.shutdown();
    }
}

/// E7 (Fig. 9): the full startup sequence vs a standalone bind, and vs the
/// number of services already registered.
pub fn e07() {
    header("E7", "Fig. 9", "daemon startup sequence latency");
    row("configuration", &["spawn time".into()]);

    // Standalone: no registrations at all.
    {
        let net = SimNet::new();
        net.add_host("core");
        let mut port = 7000u16;
        let spawn = time_median(20, || {
            let d = Daemon::spawn(
                &net,
                DaemonConfig::new(format!("s{port}"), "Service.X", "hawk", "core", port),
                Box::new(Emitter),
            )
            .unwrap();
            port += 1;
            d.shutdown();
        });
        row("standalone (no registrations)", &[fmt_dur(spawn)]);
    }

    // Full Fig. 9 sequence with increasingly full directories.
    for preregistered in [0usize, 100, 1000] {
        let net = SimNet::new();
        net.add_host("core");
        let fw = bootstrap(&net, "core", Duration::from_secs(120)).unwrap();
        let me = keypair();
        let mut asd =
            ace_directory::AsdClient::connect(&net, &"core".into(), fw.asd_addr.clone(), &me)
                .unwrap();
        for i in 0..preregistered {
            asd.register(&ace_core::protocol::ServiceEntry {
                name: format!("filler{i}"),
                addr: Addr::new("core", 40000 + (i % 10000) as u16),
                class: "Service.Filler".into(),
                room: "warehouse".into(),
            })
            .unwrap();
        }
        let mut port = 7000u16;
        let spawn = time_median(20, || {
            let d = Daemon::spawn(
                &net,
                fw.service_config(&format!("s{port}"), "Service.X", "hawk", "core", port),
                Box::new(Emitter),
            )
            .unwrap();
            port += 1;
            d.shutdown();
        });
        row(
            &format!("full sequence, {preregistered} services registered"),
            &[fmt_dur(spawn)],
        );
        fw.shutdown();
    }
}

/// E18 (Scenario 5): end-to-end device command latency through ASD
/// discovery plus the secure link.
pub fn e18() {
    header(
        "E18",
        "Scenario 5",
        "device control through discovered daemons",
    );
    let ace = ace_env::AceEnvironment::build(ace_env::EnvConfig::default()).unwrap();
    let me = keypair();

    // Discovery cost.
    let mut asd =
        ace_directory::AsdClient::connect(&ace.net, &"core".into(), ace.fw.asd_addr.clone(), &me)
            .unwrap();
    let discovery = time_median(50, || {
        std::hint::black_box(asd.lookup(None, Some("PTZCamera"), Some("hawk")).unwrap());
    });

    // Connection setup (handshake) cost.
    let cam_addr = ace.addr_of("camera_hawk").unwrap();
    let connect = time_median(20, || {
        let c = ServiceClient::connect(&ace.net, &"podium".into(), cam_addr.clone(), &me).unwrap();
        std::hint::black_box(c);
    });

    // Steady-state command cost.
    let mut camera = ace.client("camera_hawk").unwrap();
    camera.call_ok(&CmdLine::new("ptzOn")).unwrap();
    let cmd = CmdLine::new("ptzMove").arg("x", 10.0).arg("y", 5.0);
    let command = time_median(100, || {
        camera.call(&cmd).unwrap();
    });

    row("ASD lookup (class+room)", &[fmt_dur(discovery)]);
    row("secure connect (DH + identity)", &[fmt_dur(connect)]);
    row("ptzMove command round-trip", &[fmt_dur(command)]);
    ace.shutdown();
}
