//! Criterion benches for E8's kernels: session crypto, RSA signatures, and
//! KeyNote compliance checks.

use ace_core::{action_env_for, Authorizer};
use ace_lang::CmdLine;
use ace_security::cipher::{SecureChannel, SessionKey};
use ace_security::keynote::{Assertion, KeyNoteEngine, Licensees, POLICY};
use ace_security::keys::KeyPair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_cipher(c: &mut Criterion) {
    let mut group = c.benchmark_group("cipher");
    for size in [64usize, 1024, 16384] {
        let payload = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal_open", size), &payload, |b, p| {
            let key = SessionKey::from_seed(7);
            let mut tx = SecureChannel::new(key);
            let mut rx = SecureChannel::new(key);
            b.iter(|| {
                let frame = tx.seal(p);
                std::hint::black_box(rx.open(&frame).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa");
    let kp = KeyPair::generate(&mut rand::thread_rng());
    let msg = b"authorizer: POLICY / licensees: user";
    let sig = kp.sign(msg);
    group.bench_function("sign", |b| b.iter(|| std::hint::black_box(kp.sign(msg))));
    group.bench_function("verify", |b| {
        b.iter(|| assert!(kp.public().verify(msg, sig)))
    });
    group.finish();
}

fn bench_keynote(c: &mut Criterion) {
    let mut group = c.benchmark_group("keynote");
    for chain in [0usize, 4, 8] {
        // POLICY -> k1 -> … -> user.
        let mut links: Vec<KeyPair> = (0..chain)
            .map(|_| KeyPair::generate(&mut rand::thread_rng()))
            .collect();
        let user = KeyPair::generate(&mut rand::thread_rng());
        links.push(user);
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(
                Assertion::new(POLICY, Licensees::Principal(links[0].principal()), "true").unwrap(),
            )
            .unwrap();
        for pair in links.windows(2) {
            engine
                .add_credential(
                    Assertion::new(
                        pair[0].principal(),
                        Licensees::Principal(pair[1].principal()),
                        "cmd == \"ptzMove\"",
                    )
                    .unwrap()
                    .sign(&pair[0])
                    .unwrap(),
                )
                .unwrap();
        }
        let cmd = CmdLine::new("ptzMove").arg("x", 1);
        let env = action_env_for("cam", "PTZCamera", "hawk", &cmd);
        let principal = links.last().unwrap().principal();

        let uncached = Authorizer::local(engine.clone()).without_cache();
        group.bench_with_input(BenchmarkId::new("check_uncached", chain), &(), |b, _| {
            b.iter(|| assert!(uncached.check(&principal, &env)))
        });
        let cached = Authorizer::local(engine);
        cached.check(&principal, &env);
        group.bench_with_input(BenchmarkId::new("check_cached", chain), &(), |b, _| {
            b.iter(|| assert!(cached.check(&principal, &env)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_cipher, bench_rsa, bench_keynote
}
criterion_main!(benches);
