//! Criterion benches for E14's framebuffer kernel: draw, diff, converge.

use ace_workspace::{Framebuffer, TileUpdate};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_framebuffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("framebuffer");

    group.bench_function("draw_rect_320x240", |b| {
        let mut fb = Framebuffer::new(1024, 768);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(fb.draw_rect(64, 64, 320, 240, &i.to_le_bytes()))
        })
    });

    group.bench_function("full_frame_1024x768", |b| {
        let mut fb = Framebuffer::new(1024, 768);
        fb.draw_rect(0, 0, 1024, 768, b"desktop");
        b.iter(|| std::hint::black_box(fb.full_frame()))
    });

    group.bench_function("checksum_1024x768", |b| {
        let mut fb = Framebuffer::new(1024, 768);
        fb.draw_rect(0, 0, 1024, 768, b"desktop");
        b.iter(|| std::hint::black_box(fb.checksum()))
    });

    group.bench_function("apply_update", |b| {
        let mut fb = Framebuffer::new(1024, 768);
        let mut seq = 1u64;
        b.iter(|| {
            fb.apply(TileUpdate {
                col: (seq % 64) as u32,
                row: (seq % 48) as u32,
                hash: seq,
                seq,
            });
            seq += 1;
        })
    });

    group.bench_function("update_wire_roundtrip", |b| {
        let u = TileUpdate {
            col: 3,
            row: 7,
            hash: 0xdeadbeef,
            seq: 42,
        };
        b.iter(|| {
            let wire = u.to_wire("ws_1");
            std::hint::black_box(TileUpdate::from_wire(&wire).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_framebuffer
}
criterion_main!(benches);
