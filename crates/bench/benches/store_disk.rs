//! Criterion benches for E15's storage kernel: disk-image apply/get/digest,
//! plus the PR3 headline — group commit under 16 concurrent durable writers
//! on a real file backend (`durable_16w_*`), grouped vs per-record fsync.

use ace_store::{DiskImage, StorageHandle, Versioned, WalConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn value(version: u64) -> Versioned {
    Versioned {
        data: vec![0xabu8; 128],
        version,
        writer: "rsa:deadbeef:10001".into(),
        deleted: false,
    }
}

fn bench_disk(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_disk");

    group.bench_function("apply_fresh", |b| {
        let disk = DiskImage::new();
        let mut i = 0u64;
        b.iter(|| {
            disk.apply(("ns".into(), format!("k{i}")), value(1))
                .unwrap();
            i += 1;
        })
    });

    group.bench_function("apply_overwrite", |b| {
        let disk = DiskImage::new();
        let mut version = 1u64;
        disk.apply(("ns".into(), "k".into()), value(0)).unwrap();
        b.iter(|| {
            disk.apply(("ns".into(), "k".into()), value(version))
                .unwrap();
            version += 1;
        })
    });

    group.bench_function("get_hit", |b| {
        let disk = DiskImage::new();
        disk.apply(("ns".into(), "k".into()), value(1)).unwrap();
        let key = ("ns".to_string(), "k".to_string());
        b.iter(|| std::hint::black_box(disk.get(&key)))
    });

    for entries in [100usize, 1000] {
        let disk = DiskImage::new();
        for i in 0..entries {
            disk.apply(("ns".into(), format!("k{i}")), value(1))
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("digest", entries), &disk, |b, disk| {
            b.iter(|| std::hint::black_box(disk.digest()))
        });
        group.bench_with_input(BenchmarkId::new("checksum", entries), &disk, |b, disk| {
            b.iter(|| std::hint::black_box(disk.checksum()))
        });
    }
    group.finish();
}

/// The write-path step function: 16 writers hammering one durable replica
/// backed by real files.  `grouped` is the shipping configuration (the
/// committer drains the queue into one append + one fsync); `per_record`
/// caps batches at 1 byte, degenerating to the pre-group-commit
/// fsync-per-record path inside the *same* binary, so the ratio isolates
/// batching itself.  One iteration = one round of 16 threads × 8 appends.
fn bench_durable_group_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_disk");
    const WRITERS: u64 = 16;
    const PER_WRITER: u64 = 8;
    for (label, max_batch_bytes) in [
        ("durable_16w_grouped", 1usize << 20),
        ("durable_16w_per_record_fsync", 1),
    ] {
        group.bench_function(label, |b| {
            let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
                .join(format!("bench-{label}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let config = WalConfig {
                fsync_on_commit: true,
                compact_threshold: u64::MAX,
                max_batch_bytes,
                max_batch_delay: Duration::ZERO,
            };
            let (disk, _) = DiskImage::open(&StorageHandle::Dir(dir.clone()), config).unwrap();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                let version = round;
                std::thread::scope(|s| {
                    for w in 0..WRITERS {
                        let disk = disk.clone();
                        s.spawn(move || {
                            for i in 0..PER_WRITER {
                                disk.apply(("bench".into(), format!("w{w}-k{i}")), value(version))
                                    .unwrap();
                            }
                        });
                    }
                });
            });
            if let Some(stats) = disk.wal_stats() {
                println!(
                    "  note {label}: {} appends in {} batches, {} fsyncs ({} saved)",
                    stats.appends, stats.batches, stats.fsyncs, stats.fsyncs_saved
                );
            }
            drop(disk);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_disk, bench_durable_group_commit
}
criterion_main!(benches);
