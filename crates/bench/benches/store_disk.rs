//! Criterion benches for E15's storage kernel: disk-image apply/get/digest.

use ace_store::{DiskImage, Versioned};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn value(version: u64) -> Versioned {
    Versioned {
        data: vec![0xabu8; 128],
        version,
        writer: "rsa:deadbeef:10001".into(),
        deleted: false,
    }
}

fn bench_disk(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_disk");

    group.bench_function("apply_fresh", |b| {
        let disk = DiskImage::new();
        let mut i = 0u64;
        b.iter(|| {
            disk.apply(("ns".into(), format!("k{i}")), value(1))
                .unwrap();
            i += 1;
        })
    });

    group.bench_function("apply_overwrite", |b| {
        let disk = DiskImage::new();
        let mut version = 1u64;
        disk.apply(("ns".into(), "k".into()), value(0)).unwrap();
        b.iter(|| {
            disk.apply(("ns".into(), "k".into()), value(version))
                .unwrap();
            version += 1;
        })
    });

    group.bench_function("get_hit", |b| {
        let disk = DiskImage::new();
        disk.apply(("ns".into(), "k".into()), value(1)).unwrap();
        let key = ("ns".to_string(), "k".to_string());
        b.iter(|| std::hint::black_box(disk.get(&key)))
    });

    for entries in [100usize, 1000] {
        let disk = DiskImage::new();
        for i in 0..entries {
            disk.apply(("ns".into(), format!("k{i}")), value(1))
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("digest", entries), &disk, |b, disk| {
            b.iter(|| std::hint::black_box(disk.digest()))
        });
        group.bench_with_input(BenchmarkId::new("checksum", entries), &disk, |b, disk| {
            b.iter(|| std::hint::black_box(disk.checksum()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_disk
}
criterion_main!(benches);
