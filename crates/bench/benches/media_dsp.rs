//! Criterion benches for E11/E13's DSP and codec kernels.

use ace_media::codec::{convert, rle_encode, Format};
use ace_media::dsp::{decode_tones, encode_tones, goertzel, mix, sine, EchoCanceller};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_dsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsp");
    let a = sine(700.0, 0.3, 1600, 0.0);
    let b2 = sine(1900.0, 0.4, 1600, 1.0);

    group.throughput(Throughput::Elements(1600));
    group.bench_function("mix_2x1600", |b| {
        b.iter(|| std::hint::black_box(mix(&[&a, &b2])))
    });
    group.bench_function("goertzel_1600", |b| {
        b.iter(|| std::hint::black_box(goertzel(&a, 700.0)))
    });
    group.bench_function("echo_cancel_1600", |b| {
        let mut ec = EchoCanceller::new(40);
        ec.feed_reference(&b2);
        let mic = mix(&[&a, &b2]);
        b.iter(|| std::hint::black_box(ec.cancel(&mic, 0)))
    });
    group.finish();
}

fn bench_tone_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("tone_codec");
    let text = b"ptzMove x=10 y=-3;";
    let signal = encode_tones(text);
    group.bench_function("encode_18_bytes", |b| {
        b.iter(|| std::hint::black_box(encode_tones(text)))
    });
    group.bench_function("decode_18_bytes", |b| {
        b.iter(|| std::hint::black_box(decode_tones(&signal).unwrap()))
    });
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let flat = vec![0x20u8; 4096];
    let audio = ace_media::dsp::samples_to_bytes(&sine(800.0, 0.5, 2048, 0.0));
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("rle_encode_flat_4k", |b| {
        b.iter(|| std::hint::black_box(rle_encode(&flat)))
    });
    group.bench_function("ulaw_4k", |b| {
        b.iter(|| std::hint::black_box(convert(Format::Pcm16, Format::Ulaw, &audio).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_dsp, bench_tone_codec, bench_codecs
}
criterion_main!(benches);
