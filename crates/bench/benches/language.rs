//! Criterion benches for E2/E3: the command language round-trip and the
//! RMI-style codec comparison.

use ace_baselines::RmiCall;
use ace_lang::{CmdLine, Value};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn ptz_cmd() -> CmdLine {
    CmdLine::new("ptzMove")
        .arg("x", 10)
        .arg("y", -3)
        .arg("zoom", 1.5)
        .arg("mode", "absolute")
}

fn bench_encode_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("language");
    let cmd = ptz_cmd();
    let wire = cmd.to_wire();

    group.bench_function("encode_ptz", |b| {
        b.iter(|| std::hint::black_box(cmd.to_wire()))
    });
    group.bench_function("parse_ptz", |b| {
        b.iter(|| std::hint::black_box(CmdLine::parse(&wire).unwrap()))
    });

    for n in [0usize, 8, 32] {
        let mut big = CmdLine::new("cfg");
        for i in 0..n {
            big.push_arg(format!("a{i}"), i as i64);
        }
        let big_wire = big.to_wire();
        group.bench_with_input(BenchmarkId::new("roundtrip_args", n), &big_wire, |b, w| {
            b.iter(|| std::hint::black_box(CmdLine::parse(w).unwrap()))
        });
    }

    // Vector-heavy command.
    let mut vec_cmd = CmdLine::new("path");
    vec_cmd.push_arg(
        "points",
        Value::Vector((0..64).map(ace_lang::Scalar::Int).collect()),
    );
    let vec_wire = vec_cmd.to_wire();
    group.bench_function("parse_vector64", |b| {
        b.iter(|| std::hint::black_box(CmdLine::parse(&vec_wire).unwrap()))
    });
    group.finish();
}

fn bench_vs_rmi(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_vs_rmi");
    let cmd = ptz_cmd();
    let rmi = RmiCall::from_cmdline("edu.ku.ittc.ace.PTZCamera", &cmd);
    let rmi_wire = rmi.encode();

    group.bench_function("ace_roundtrip", |b| {
        b.iter_batched(
            || cmd.clone(),
            |cmd| {
                let w = cmd.to_wire();
                std::hint::black_box(CmdLine::parse(&w).unwrap())
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("rmi_encode", |b| {
        b.iter(|| std::hint::black_box(rmi.encode()))
    });
    group.bench_function("rmi_decode", |b| {
        b.iter(|| std::hint::black_box(RmiCall::decode(&rmi_wire).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_encode_parse, bench_vs_rmi
}
criterion_main!(benches);
