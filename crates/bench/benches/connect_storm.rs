//! Connection-storm bench: what does it cost a client to *reach* a service?
//!
//! The pre-PR path pays, per client object: an ASD lookup over a fresh
//! full-handshake link, then a second full handshake to the service.  The
//! fast path collapses both — resumption tickets skip the DH + signature
//! exchange, the link pool skips the dial entirely, and the resolution
//! cache skips the ASD round trip.  Rows:
//!
//! * `full_handshake_dial`   — dial + full handshake + ping, per iteration
//! * `resumed_dial`          — dial + ticket resumption + ping, per iteration
//! * `pooled_checkout`       — pool checkout (warm) + ping, per iteration
//! * `cold_client_full_resolve` — fresh `FailoverClient`, no pool/cache:
//!   ASD resolve + service dial + ping (the honest pre-PR client path)
//! * `cold_client_fastpath`  — fresh `FailoverClient` sharing the pool and
//!   resolution cache: the whole storm rides warm state
//!
//! `fastpath_snapshot` turns these rows into `BENCH_pr5.json` with the
//! resumed-vs-full and fastpath-vs-full speedup ratios.

use ace_core::prelude::*;
use ace_directory::bootstrap;
use ace_security::keys::KeyPair;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

struct Echo;
impl ServiceBehavior for Echo {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("echo", "echo").optional("x", ArgType::Int, "payload"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        let x = cmd.get_int("x").unwrap_or(0);
        Reply::ok_with(|c| c.arg("x", x))
    }
}

fn bench_connect_storm(c: &mut Criterion) {
    let net = SimNet::new();
    net.add_host("core");
    net.add_host("svc");
    let fw = bootstrap(&net, "core", Duration::from_secs(600)).unwrap();
    let daemon = Daemon::spawn(
        &net,
        fw.service_config("echo", "Service.Echo", "hawk", "svc", 6000),
        Box::new(Echo),
    )
    .unwrap();
    let target = daemon.addr().clone();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let ping = CmdLine::new("ping");

    let mut group = c.benchmark_group("connect_storm");

    group.bench_function("full_handshake_dial", |b| {
        b.iter(|| {
            let mut client =
                ServiceClient::connect(&net, &"core".into(), target.clone(), &me).unwrap();
            client.call(&ping).unwrap();
        })
    });

    // Warm the ticket cache with one full handshake, then dials resume.
    // (Once a ticket's nonce budget drains, the next dial transparently
    // falls back, harvests a fresh ticket, and resumption continues — so a
    // long storm is overwhelmingly resumed dials with rare refreshes.)
    let tickets = TicketCache::new();
    ServiceClient::connect_resumable(&net, &"core".into(), target.clone(), &me, &tickets).unwrap();
    let probe =
        ServiceClient::connect_resumable(&net, &"core".into(), target.clone(), &me, &tickets)
            .unwrap();
    assert!(probe.resumed(), "warm dial must resume");
    drop(probe);
    group.bench_function("resumed_dial", |b| {
        b.iter(|| {
            let mut client = ServiceClient::connect_resumable(
                &net,
                &"core".into(),
                target.clone(),
                &me,
                &tickets,
            )
            .unwrap();
            client.call(&ping).unwrap();
        })
    });

    let pool = Arc::new(LinkPool::new(&net, "core", me));
    pool.checkout(&target).unwrap(); // park one warm link
    group.bench_function("pooled_checkout", |b| {
        b.iter(|| {
            let mut link = pool.checkout(&target).unwrap();
            link.call(&ping).unwrap();
        })
    });

    group.bench_function("cold_client_full_resolve", |b| {
        b.iter(|| {
            let mut client =
                FailoverClient::bind(net.clone(), "core", me, fw.asd_addr.clone(), "echo");
            client.call(&ping).unwrap();
        })
    });

    let cache = Arc::new(ResolutionCache::new());
    group.bench_function("cold_client_fastpath", |b| {
        b.iter(|| {
            let mut client =
                FailoverClient::bind(net.clone(), "core", me, fw.asd_addr.clone(), "echo")
                    .with_pool(Arc::clone(&pool))
                    .with_resolution_cache(Arc::clone(&cache));
            client.call(&ping).unwrap();
        })
    });

    group.finish();
    daemon.shutdown();
    fw.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(3));
    targets = bench_connect_storm
}
criterion_main!(benches);
