//! Criterion bench for the end-to-end daemon command path (E4/E18): one
//! command through the secure link, command thread, control thread, and
//! back.

use ace_core::prelude::*;
use ace_directory::bootstrap;
use ace_security::keys::KeyPair;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

struct Echo;
impl ServiceBehavior for Echo {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("echo", "echo").optional("x", ArgType::Int, "payload"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        let x = cmd.get_int("x").unwrap_or(0);
        Reply::ok_with(|c| c.arg("x", x))
    }
}

fn bench_roundtrip(c: &mut Criterion) {
    let net = SimNet::new();
    net.add_host("core");
    net.add_host("svc");
    let fw = bootstrap(&net, "core", Duration::from_secs(600)).unwrap();
    let daemon = Daemon::spawn(
        &net,
        fw.service_config("echo", "Service.Echo", "hawk", "svc", 6000),
        Box::new(Echo),
    )
    .unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let mut client =
        ServiceClient::connect(&net, &"core".into(), daemon.addr().clone(), &me).unwrap();

    let mut group = c.benchmark_group("daemon");
    group.bench_function("command_roundtrip", |b| {
        let cmd = CmdLine::new("echo").arg("x", 42);
        b.iter(|| {
            let r = client.call(&cmd).unwrap();
            assert_eq!(r.get_int("x"), Some(42));
        })
    });
    group.bench_function("ping_roundtrip", |b| {
        let cmd = CmdLine::new("ping");
        b.iter(|| {
            client.call(&cmd).unwrap();
        })
    });
    group.bench_function("semantic_reject_roundtrip", |b| {
        let bad = CmdLine::new("nosuch");
        b.iter(|| {
            assert!(client.call(&bad).is_err());
        })
    });
    group.finish();

    daemon.shutdown();
    fw.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(3));
    targets = bench_roundtrip
}
criterion_main!(benches);
