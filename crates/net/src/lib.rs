//! # ace-net — the simulated ACE building network
//!
//! The paper's ACE ran on a physical LAN spanning conference rooms, offices,
//! and hallways.  This crate is the substitution substrate (see DESIGN.md):
//! an in-process network of named hosts with
//!
//! * **stream connections** ([`Connection`]/[`Listener`]) — ordered,
//!   reliable, message-framed channels standing in for the SSL sockets all
//!   ACE command traffic uses (§3.1),
//! * **datagram sockets** ([`DatagramSocket`]) — the unreliable UDP channel
//!   the daemon data thread streams over (§2.1.1), with configurable loss,
//! * **multicast** — the discovery substrate of the Jini baseline (§8.4),
//! * **fault injection** — host crashes, revivals, and link partitions, used
//!   by the robustness experiments (E15, E19),
//! * **traffic metrics** ([`NetMetrics`]) — frame/byte accounting for the
//!   lightweight-vs-RMI comparison (E3).
//!
//! ```
//! use ace_net::{SimNet, Addr};
//! use std::time::Duration;
//!
//! let net = SimNet::new();
//! let bar = net.add_host("bar");
//! let tube = net.add_host("tube");
//!
//! let listener = net.listen(Addr::new("bar", 1234)).unwrap();
//! let client = net.connect(&tube, Addr::new("bar", 1234)).unwrap();
//! client.send(b"ping;".to_vec()).unwrap();
//!
//! let server = listener.accept().unwrap();
//! assert_eq!(server.recv().unwrap(), b"ping;");
//! ```

pub mod addr;
pub mod conn;
pub mod datagram;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod wake;

pub use addr::{Addr, HostId};
pub use conn::{Connection, Listener};
pub use datagram::{Datagram, DatagramSocket};
pub use error::NetError;
pub use fault::{
    FaultEvent, FaultKind, FaultPlan, FaultPlanConfig, FaultRunner, StorageFault, StorageFaultHub,
};
pub use metrics::{MetricsSnapshot, NetMetrics};
pub use net::{NetConfig, SimNet};
pub use wake::WakeCell;
