//! Datagram (UDP-like) sockets.
//!
//! "The data thread is responsible for handling any data stream operations
//! over a UDP channel" (§2.1.1).  Datagrams are unreliable and unordered
//! with respect to streams; the configured loss probability applies.

use crate::addr::Addr;
use crate::error::NetError;
use crate::net::NetInner;
use crate::wake::WakeCell;
use crossbeam_channel::Receiver;
use std::sync::Arc;
use std::task::Waker;
use std::time::Duration;

/// One received datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    pub from: Addr,
    pub to: Addr,
    pub payload: Vec<u8>,
}

/// A bound datagram socket.
pub struct DatagramSocket {
    addr: Addr,
    rx: Receiver<Datagram>,
    wake: Arc<WakeCell>,
    net: Arc<NetInner>,
    bind_id: u64,
}

impl DatagramSocket {
    pub(crate) fn new(
        addr: Addr,
        rx: Receiver<Datagram>,
        wake: Arc<WakeCell>,
        net: Arc<NetInner>,
        bind_id: u64,
    ) -> Self {
        DatagramSocket {
            addr,
            rx,
            wake,
            net,
            bind_id,
        }
    }

    /// The bound address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Block until a datagram arrives.
    pub fn recv(&self) -> Result<Datagram, NetError> {
        self.rx.recv().map_err(|_| NetError::Closed)
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Datagram, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(d) => Ok(d),
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Datagram> {
        self.rx.try_recv().ok()
    }

    /// Non-blocking receive that distinguishes "nothing queued"
    /// (`Ok(None)`) from "socket unbound" (`Err(Closed)`), for reactor
    /// consumers that must notice host kills.
    pub fn poll_recv(&self) -> Result<Option<Datagram>, NetError> {
        match self.rx.try_recv() {
            Ok(d) => Ok(Some(d)),
            Err(crossbeam_channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam_channel::TryRecvError::Disconnected) => Err(NetError::Closed),
        }
    }

    /// Register the waker notified when a datagram is delivered here (or
    /// the socket is unbound by a host kill).  Register before polling.
    pub fn register_waker(&self, waker: &Waker) {
        self.wake.register(waker);
    }

    /// Number of datagrams waiting.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

impl Drop for DatagramSocket {
    fn drop(&mut self) {
        self.net.unbind_dsocket(&self.addr, self.bind_id);
    }
}

impl std::fmt::Debug for DatagramSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DatagramSocket({})", self.addr)
    }
}
