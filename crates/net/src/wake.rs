//! Readiness wake-ups for the shared cooperative daemon runtime.
//!
//! The simulated network's channels were built for blocking consumers (one
//! OS thread parked per receive).  A cooperative reactor instead *polls*
//! non-blocking variants and needs the producer side to say "something
//! arrived" — [`WakeCell`] is that hook: the consumer registers a
//! [`std::task::Waker`], every producer-side event (frame sent, connection
//! delivered, datagram delivered, endpoint closed) wakes it.
//!
//! A cell keeps its waker across wakes (wake-by-ref) so registration is a
//! one-time cost per endpoint; re-registering with an equivalent waker is a
//! no-op.  The contract is the standard one: register *before* checking for
//! data, and a spurious wake is always safe (the consumer just polls again).

use parking_lot::Mutex;
use std::task::Waker;

/// A slot holding the waker of whichever task is consuming an endpoint.
#[derive(Default)]
pub struct WakeCell {
    waker: Mutex<Option<Waker>>,
}

impl WakeCell {
    pub fn new() -> WakeCell {
        WakeCell::default()
    }

    /// Install `waker`, replacing any previous one (no-op if equivalent).
    pub fn register(&self, waker: &Waker) {
        let mut slot = self.waker.lock();
        match &*slot {
            Some(w) if w.will_wake(waker) => {}
            _ => *slot = Some(waker.clone()),
        }
    }

    /// Wake the registered consumer, if any.  The waker stays registered.
    pub fn wake(&self) {
        let slot = self.waker.lock();
        if let Some(w) = &*slot {
            w.wake_by_ref();
        }
    }

    /// Drop the registration (endpoint consumer going away).
    pub fn clear(&self) {
        self.waker.lock().take();
    }
}

impl std::fmt::Debug for WakeCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let registered = self.waker.lock().is_some();
        write!(f, "WakeCell(registered: {registered})")
    }
}
