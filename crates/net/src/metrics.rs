//! Traffic accounting for the experiments.
//!
//! The lightweight-vs-RMI claim (E3) and the fan-out experiments (E12)
//! need byte/frame counts; every send path records here.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic traffic counters (relaxed atomics; exactness across threads at
/// a single instant is not required, totals are).
#[derive(Debug, Default)]
pub struct NetMetrics {
    frames: AtomicU64,
    frame_bytes: AtomicU64,
    datagrams: AtomicU64,
    datagram_bytes: AtomicU64,
    datagrams_dropped: AtomicU64,
    connections: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub frames: u64,
    pub frame_bytes: u64,
    pub datagrams: u64,
    pub datagram_bytes: u64,
    pub datagrams_dropped: u64,
    pub connections: u64,
}

impl MetricsSnapshot {
    /// Difference since an earlier snapshot (for per-experiment accounting).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            frames: self.frames - earlier.frames,
            frame_bytes: self.frame_bytes - earlier.frame_bytes,
            datagrams: self.datagrams - earlier.datagrams,
            datagram_bytes: self.datagram_bytes - earlier.datagram_bytes,
            datagrams_dropped: self.datagrams_dropped - earlier.datagrams_dropped,
            connections: self.connections - earlier.connections,
        }
    }
}

impl NetMetrics {
    pub(crate) fn record_frame(&self, bytes: usize) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.frame_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_datagram(&self, bytes: usize) {
        self.datagrams.fetch_add(1, Ordering::Relaxed);
        self.datagram_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_datagram_drop(&self) {
        self.datagrams_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            frames: self.frames.load(Ordering::Relaxed),
            frame_bytes: self.frame_bytes.load(Ordering::Relaxed),
            datagrams: self.datagrams.load(Ordering::Relaxed),
            datagram_bytes: self.datagram_bytes.load(Ordering::Relaxed),
            datagrams_dropped: self.datagrams_dropped.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }
}
