//! Stream connections and listeners of the simulated network.
//!
//! A [`Connection`] models one ACE socket: an ordered, reliable, framed byte
//! stream between two endpoints.  Frames are whole encrypted command strings
//! or data blocks — the simulation frames at the message level rather than
//! emulating a byte stream, which preserves per-message wire cost and
//! ordering without a reassembly layer.
//!
//! **Zero-copy contract**: frames move by *ownership*.  [`Connection::send`]
//! takes the `Vec<u8>` the sender sealed in place and hands the same
//! allocation through the channel to the receiver, who gets it back from
//! [`Connection::recv`] and decrypts it in place — the wire hot path never
//! copies frame bytes between the seal and the open.

use crate::addr::Addr;
use crate::error::NetError;
use crate::net::NetInner;
use crate::wake::WakeCell;
use crossbeam_channel::{Receiver, Sender};
use std::sync::Arc;
use std::task::Waker;
use std::time::Duration;

/// One frame in flight.
#[derive(Debug)]
pub(crate) enum WireItem {
    Frame(Vec<u8>),
    /// Graceful close marker so the peer distinguishes shutdown from crash.
    Close,
}

/// One side of an established connection.
pub struct Connection {
    local: Addr,
    peer: Addr,
    tx: Sender<WireItem>,
    rx: Receiver<WireItem>,
    /// Woken whenever the *peer* queues something for us (reactor support).
    rx_wake: Arc<WakeCell>,
    /// The peer's `rx_wake`: our sends and close wake their consumer.
    peer_wake: Arc<WakeCell>,
    net: Arc<NetInner>,
}

impl Connection {
    pub(crate) fn pair(
        net: &Arc<NetInner>,
        client: Addr,
        server: Addr,
    ) -> (Connection, Connection) {
        let (c2s_tx, c2s_rx) = crossbeam_channel::unbounded();
        let (s2c_tx, s2c_rx) = crossbeam_channel::unbounded();
        let client_wake = Arc::new(WakeCell::new());
        let server_wake = Arc::new(WakeCell::new());
        let client_side = Connection {
            local: client.clone(),
            peer: server.clone(),
            tx: c2s_tx,
            rx: s2c_rx,
            rx_wake: Arc::clone(&client_wake),
            peer_wake: Arc::clone(&server_wake),
            net: Arc::clone(net),
        };
        let server_side = Connection {
            local: server,
            peer: client,
            tx: s2c_tx,
            rx: c2s_rx,
            rx_wake: server_wake,
            peer_wake: client_wake,
            net: Arc::clone(net),
        };
        (client_side, server_side)
    }

    /// Local endpoint of this side.
    pub fn local_addr(&self) -> &Addr {
        &self.local
    }

    /// Remote endpoint.
    pub fn peer_addr(&self) -> &Addr {
        &self.peer
    }

    /// Send one frame, transferring ownership of the buffer all the way to
    /// the receiver (no copy).  Fails if either host is down, a partition
    /// separates them, or the peer has gone away.
    pub fn send(&self, frame: Vec<u8>) -> Result<(), NetError> {
        self.net.check_link(&self.local.host, &self.peer.host)?;
        self.net.apply_latency();
        self.net.metrics.record_frame(frame.len());
        self.tx
            .send(WireItem::Frame(frame))
            .map_err(|_| NetError::Closed)?;
        self.peer_wake.wake();
        Ok(())
    }

    /// Receive the next frame, blocking until one arrives or the peer
    /// closes.  The returned buffer is the sender's own allocation —
    /// callers may decrypt it in place.
    pub fn recv(&self) -> Result<Vec<u8>, NetError> {
        match self.rx.recv() {
            Ok(WireItem::Frame(f)) => Ok(f),
            Ok(WireItem::Close) | Err(_) => Err(NetError::Closed),
        }
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(WireItem::Frame(f)) => Ok(f),
            Ok(WireItem::Close) => Err(NetError::Closed),
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    /// Health probe for an *idle* connection, as used by pooled-link
    /// checkout.  Returns `false` when the route to the peer is down
    /// (crashed host or partition), the peer has closed or vanished, or —
    /// crucially — when anything at all is queued inbound: on an idle
    /// request/reply link a queued frame can only be left-over state from a
    /// previous conversation, and reusing such a link could surface a stale
    /// reply.  Unhealthy links must be discarded, never repaired.
    pub fn is_healthy_idle(&self) -> bool {
        if self
            .net
            .check_link(&self.local.host, &self.peer.host)
            .is_err()
        {
            return false;
        }
        matches!(
            self.rx.try_recv(),
            Err(crossbeam_channel::TryRecvError::Empty)
        )
    }

    /// Non-blocking receive: `Ok(None)` when no frame is queued.
    pub fn try_recv(&self) -> Result<Option<Vec<u8>>, NetError> {
        match self.rx.try_recv() {
            Ok(WireItem::Frame(f)) => Ok(Some(f)),
            Ok(WireItem::Close) => Err(NetError::Closed),
            Err(crossbeam_channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam_channel::TryRecvError::Disconnected) => Err(NetError::Closed),
        }
    }

    /// Register the waker notified whenever the peer queues a frame (or
    /// closes).  Reactor contract: register first, then [`Self::try_recv`]
    /// until empty — anything arriving after the empty check wakes anew.
    pub fn register_waker(&self, waker: &Waker) {
        self.rx_wake.register(waker);
    }

    /// Is anything queued inbound right now?  (Cheap; used by the reactor
    /// to defer handshakes until the first frame has actually arrived.)
    pub fn has_pending(&self) -> bool {
        !self.rx.is_empty()
    }

    /// Graceful shutdown; the peer's next receive returns [`NetError::Closed`]
    /// once queued frames drain.
    pub fn close(&self) {
        let _ = self.tx.send(WireItem::Close);
        self.peer_wake.wake();
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Connection({} -> {})", self.local, self.peer)
    }
}

/// A bound accept queue, as produced by `SimNet::listen`.
pub struct Listener {
    addr: Addr,
    rx: Receiver<Connection>,
    wake: Arc<WakeCell>,
    net: Arc<NetInner>,
    bind_id: u64,
}

impl Listener {
    pub(crate) fn new(
        addr: Addr,
        rx: Receiver<Connection>,
        wake: Arc<WakeCell>,
        net: Arc<NetInner>,
        bind_id: u64,
    ) -> Self {
        Listener {
            addr,
            rx,
            wake,
            net,
            bind_id,
        }
    }

    /// The bound address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Block until a client connects.
    pub fn accept(&self) -> Result<Connection, NetError> {
        self.rx.recv().map_err(|_| NetError::Closed)
    }

    /// Accept with a deadline.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<Connection, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(c) => Ok(c),
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    /// Non-blocking accept: `Ok(None)` when nobody is connecting,
    /// `Err(Closed)` once the host is killed (accept sender dropped).
    pub fn try_accept(&self) -> Result<Option<Connection>, NetError> {
        match self.rx.try_recv() {
            Ok(c) => Ok(Some(c)),
            Err(crossbeam_channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam_channel::TryRecvError::Disconnected) => Err(NetError::Closed),
        }
    }

    /// Register the waker notified on each inbound connection (or when the
    /// host is killed).  Register before polling [`Self::try_accept`].
    pub fn register_waker(&self, waker: &Waker) {
        self.wake.register(waker);
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.net.unbind_listener(&self.addr, self.bind_id);
    }
}

impl std::fmt::Debug for Listener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Listener({})", self.addr)
    }
}
