//! Addressing in the simulated ACE network.
//!
//! ACE services are located by `(host, port)` pairs — "the machine and port
//! address of that service" returned by ASD lookups (Fig. 7).  Hosts are
//! named machines ("bar", "tube", "rod" in Fig. 19) rather than IP numbers;
//! the simulated network resolves them directly.

use std::fmt;
use std::sync::Arc;

/// A host name in the environment.  Cheap to clone (shared string).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(Arc<str>);

impl HostId {
    pub fn new(name: impl AsRef<str>) -> Self {
        HostId(Arc::from(name.as_ref()))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for HostId {
    fn from(s: &str) -> Self {
        HostId::new(s)
    }
}

impl From<String> for HostId {
    fn from(s: String) -> Self {
        HostId::new(s)
    }
}

impl From<&String> for HostId {
    fn from(s: &String) -> Self {
        HostId::new(s)
    }
}

impl From<&HostId> for HostId {
    fn from(h: &HostId) -> Self {
        h.clone()
    }
}

/// A service endpoint: host plus port.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr {
    pub host: HostId,
    pub port: u16,
}

impl Addr {
    pub fn new(host: impl Into<HostId>, port: u16) -> Self {
        Addr {
            host: host.into(),
            port,
        }
    }

    /// Parse the `host:port` wire form used in ACE commands.
    pub fn parse(s: &str) -> Option<Addr> {
        let (host, port) = s.rsplit_once(':')?;
        if host.is_empty() {
            return None;
        }
        let port = port.parse().ok()?;
        Some(Addr::new(host, port))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let a = Addr::new("machine25", 1225);
        assert_eq!(a.to_string(), "machine25:1225");
        assert_eq!(Addr::parse("machine25:1225"), Some(a));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Addr::parse("nocolon"), None);
        assert_eq!(Addr::parse(":123"), None);
        assert_eq!(Addr::parse("host:notaport"), None);
        assert_eq!(Addr::parse("host:99999"), None);
    }

    #[test]
    fn host_id_is_cheaply_cloneable_and_comparable() {
        let a = HostId::new("bar");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "bar");
    }
}
