//! Deterministic fault injection: seeded chaos plans for [`SimNet`].
//!
//! The robustness experiments (E15, E19) need repeatable failure
//! scenarios: the same seed must produce the same crashes, partitions,
//! and loss windows every run, so a failing chaos run can be replayed.
//! A [`FaultPlan`] is that scenario — a time-ordered list of
//! [`FaultEvent`]s, either hand-built or generated pseudo-randomly from a
//! seed via [`FaultPlan::generate`].  Generation is a pure function of the
//! seed and the [`FaultPlanConfig`]; only the *execution* timing depends
//! on the wall clock.
//!
//! Every generated plan is self-healing: crashed hosts are revived,
//! partitions healed, and latency/loss restored to zero before the plan
//! ends, so the system under test can be asserted to re-converge.

use crate::addr::HostId;
use crate::net::SimNet;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One thing a fault plan does to a host's simulated disk.  Storage faults
/// are *armed* on a per-host hub ([`StorageFaultHub`]) and consumed by the
/// host's storage backend at its next append, so the byte-level damage
/// lands exactly where a real power cut or media error would: inside a
/// write that the store has not yet acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The process dies mid-append: only the first `n` bytes of the next
    /// append reach the disk, and the backend is dead until reopened.
    CrashAtByte(u64),
    /// The next append is torn after `n` bytes and reports an I/O error,
    /// but the backend stays usable (a transient write failure).
    TornWrite(u64),
    /// Flip bit `i` (mod the log size in bits) of the already-persisted
    /// log — latent media corruption discovered only on recovery.
    BitFlip(u64),
}

impl std::fmt::Display for StorageFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageFault::CrashAtByte(n) => write!(f, "crash at byte {n} of next append"),
            StorageFault::TornWrite(n) => write!(f, "torn write after {n} bytes"),
            StorageFault::BitFlip(i) => write!(f, "bit flip at bit {i}"),
        }
    }
}

/// Per-host queue of armed storage faults.  Cloneable shared handle; the
/// [`SimNet`] owns one (see `SimNet::storage_faults`) so fault plans and
/// storage backends meet without the net crate knowing about the store.
#[derive(Debug, Clone, Default)]
pub struct StorageFaultHub {
    inner: Arc<Mutex<HashMap<HostId, VecDeque<StorageFault>>>>,
}

impl StorageFaultHub {
    pub fn new() -> StorageFaultHub {
        StorageFaultHub::default()
    }

    /// Arm a fault for `host`; its backend consumes it on the next append.
    pub fn arm(&self, host: &HostId, fault: StorageFault) {
        self.inner
            .lock()
            .entry(host.clone())
            .or_default()
            .push_back(fault);
    }

    /// Consume the oldest armed fault for `host`, if any.
    pub fn take(&self, host: &HostId) -> Option<StorageFault> {
        self.inner.lock().get_mut(host)?.pop_front()
    }

    /// Drop every armed fault for `host` (the incident is over).
    pub fn clear(&self, host: &HostId) {
        self.inner.lock().remove(host);
    }

    /// How many faults are currently armed for `host`.
    pub fn armed(&self, host: &HostId) -> usize {
        self.inner.lock().get(host).map_or(0, VecDeque::len)
    }
}

/// One thing a fault plan does to the network.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Kill a host (listeners and sockets die; connections sever).
    Crash(HostId),
    /// Bring a killed host back (services must re-bind to return).
    Revive(HostId),
    /// Sever the link between two hosts.
    Partition(HostId, HostId),
    /// Restore the link between two hosts.
    Heal(HostId, HostId),
    /// Remove every partition.
    HealAll,
    /// Set the per-frame wire latency.
    Latency(Duration),
    /// Set the datagram loss probability.
    DatagramLoss(f64),
    /// Arm a storage fault on a host's disk (see [`StorageFault`]).
    Storage(HostId, StorageFault),
}

/// A [`FaultKind`] scheduled at an offset from plan start.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    pub at: Duration,
    pub kind: FaultKind,
}

/// Shape of a generated chaos scenario.
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// Total plan length; all recovery events land at or before this.
    pub duration: Duration,
    /// Hosts eligible for crash/revive windows.
    pub crashable: Vec<HostId>,
    /// Hosts among which partition windows are drawn.
    pub partitionable: Vec<HostId>,
    /// How many crash windows to attempt.
    pub crash_windows: usize,
    /// How many partition windows to attempt.
    pub partition_windows: usize,
    /// How many datagram-loss windows to attempt.
    pub loss_windows: usize,
    /// How many latency windows to attempt.
    pub latency_windows: usize,
    /// Most hosts allowed down at the same instant.
    pub max_concurrent_crashes: usize,
    /// Upper bound for generated loss probabilities.
    pub max_loss: f64,
    /// Upper bound for generated latency.
    pub max_latency: Duration,
    /// Hosts whose simulated disks are eligible for storage faults.  A
    /// crash window on one of these also arms a crash-at-byte fault, so the
    /// kill tears any in-flight log append.  Empty (the default) disables
    /// storage-fault generation entirely.
    pub storage_hosts: Vec<HostId>,
    /// How many standalone torn-write / bit-flip windows to attempt.
    pub storage_fault_windows: usize,
}

impl FaultPlanConfig {
    /// A scenario over `hosts` lasting `duration`, with one crash window
    /// per host (at most one host down at a time), one partition window,
    /// and one loss window — a gentle default the tests then tighten.
    pub fn new(duration: Duration, hosts: Vec<HostId>) -> FaultPlanConfig {
        let n = hosts.len();
        FaultPlanConfig {
            duration,
            crashable: hosts.clone(),
            partitionable: hosts,
            crash_windows: n,
            partition_windows: 1,
            loss_windows: 1,
            latency_windows: 1,
            max_concurrent_crashes: 1,
            max_loss: 0.3,
            max_latency: Duration::from_millis(2),
            storage_hosts: Vec::new(),
            storage_fault_windows: 0,
        }
    }
}

/// A deterministic, time-ordered fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    duration: Duration,
}

impl FaultPlan {
    /// An empty plan to fill via [`FaultPlan::at`].
    pub fn new(duration: Duration) -> FaultPlan {
        FaultPlan {
            events: Vec::new(),
            duration,
        }
    }

    /// Schedule one event (kept sorted by time, stable for equal times).
    pub fn at(mut self, at: Duration, kind: FaultKind) -> FaultPlan {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, kind });
        self
    }

    /// Generate a scenario from `seed`.  Pure: the same seed and config
    /// always produce an identical schedule.
    pub fn generate(seed: u64, config: &FaultPlanConfig) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new(config.duration);
        let total = config.duration.as_millis() as u64;

        // Crash windows.  Tracked as (start, end) per host so one host is
        // never double-crashed, and global overlap stays within the
        // concurrency budget.
        let mut windows: Vec<(u64, u64, usize)> = Vec::new(); // (start, end, host idx)
        if !config.crashable.is_empty() && total >= 20 {
            for _ in 0..config.crash_windows {
                // A bounded number of placement attempts keeps generation
                // deterministic and total.
                for _attempt in 0..16 {
                    let host = rng.gen_range(0..config.crashable.len());
                    let len = rng.gen_range(total / 10..=total / 4);
                    let start = rng.gen_range(0..total.saturating_sub(len).max(1));
                    let end = start + len;
                    let same_host_overlap = windows
                        .iter()
                        .any(|&(s, e, h)| h == host && start < e && s < end);
                    let concurrent = windows
                        .iter()
                        .filter(|&&(s, e, _)| start < e && s < end)
                        .count();
                    if !same_host_overlap && concurrent < config.max_concurrent_crashes {
                        windows.push((start, end, host));
                        plan = plan
                            .at(
                                Duration::from_millis(start),
                                FaultKind::Crash(config.crashable[host].clone()),
                            )
                            .at(
                                Duration::from_millis(end),
                                FaultKind::Revive(config.crashable[host].clone()),
                            );
                        // A kill on a durable-store host tears whatever log
                        // append is in flight at the moment of the crash.
                        if config.storage_hosts.contains(&config.crashable[host]) {
                            let offset = rng.gen_range(0..64u64);
                            plan = plan.at(
                                Duration::from_millis(start),
                                FaultKind::Storage(
                                    config.crashable[host].clone(),
                                    StorageFault::CrashAtByte(offset),
                                ),
                            );
                        }
                        break;
                    }
                }
            }
        }

        // Partition windows between two distinct hosts.
        if config.partitionable.len() >= 2 && total >= 20 {
            for _ in 0..config.partition_windows {
                let a = rng.gen_range(0..config.partitionable.len());
                let mut b = rng.gen_range(0..config.partitionable.len() - 1);
                if b >= a {
                    b += 1;
                }
                let len = rng.gen_range(total / 10..=total / 4);
                let start = rng.gen_range(0..total.saturating_sub(len).max(1));
                plan = plan
                    .at(
                        Duration::from_millis(start),
                        FaultKind::Partition(
                            config.partitionable[a].clone(),
                            config.partitionable[b].clone(),
                        ),
                    )
                    .at(
                        Duration::from_millis(start + len),
                        FaultKind::Heal(
                            config.partitionable[a].clone(),
                            config.partitionable[b].clone(),
                        ),
                    );
            }
        }

        // Datagram-loss and latency windows (each ends with a reset).
        if total >= 20 {
            for _ in 0..config.loss_windows {
                let len = rng.gen_range(total / 10..=total / 4);
                let start = rng.gen_range(0..total.saturating_sub(len).max(1));
                let p = rng.gen_range(0.0..config.max_loss.max(f64::MIN_POSITIVE));
                plan = plan
                    .at(Duration::from_millis(start), FaultKind::DatagramLoss(p))
                    .at(
                        Duration::from_millis(start + len),
                        FaultKind::DatagramLoss(0.0),
                    );
            }
            for _ in 0..config.latency_windows {
                let len = rng.gen_range(total / 10..=total / 4);
                let start = rng.gen_range(0..total.saturating_sub(len).max(1));
                let lat_us = rng.gen_range(0..config.max_latency.as_micros().max(1) as u64);
                plan = plan
                    .at(
                        Duration::from_millis(start),
                        FaultKind::Latency(Duration::from_micros(lat_us)),
                    )
                    .at(
                        Duration::from_millis(start + len),
                        FaultKind::Latency(Duration::ZERO),
                    );
            }
        }

        // Standalone storage-fault windows: transient torn writes, plus at
        // most one latent bit flip per plan.  (Two bit flips could corrupt
        // two replicas holding the only copies of a quorum write; one keeps
        // the acked-writes-survive invariant checkable.)
        if !config.storage_hosts.is_empty() && total >= 20 {
            let mut flipped = false;
            for _ in 0..config.storage_fault_windows {
                let host =
                    config.storage_hosts[rng.gen_range(0..config.storage_hosts.len())].clone();
                let at = rng.gen_range(0..total);
                let fault = if !flipped && rng.gen_range(0..3u32) == 0 {
                    flipped = true;
                    StorageFault::BitFlip(rng.gen_range(0..1u64 << 16))
                } else {
                    StorageFault::TornWrite(rng.gen_range(0..32u64))
                };
                plan = plan.at(Duration::from_millis(at), FaultKind::Storage(host, fault));
            }
        }

        // Safety net: whatever happened above, the plan ends fully healed.
        plan = plan
            .at(config.duration, FaultKind::HealAll)
            .at(config.duration, FaultKind::Latency(Duration::ZERO))
            .at(config.duration, FaultKind::DatagramLoss(0.0));
        for host in &config.crashable {
            plan = plan.at(config.duration, FaultKind::Revive(host.clone()));
        }
        plan
    }

    /// The schedule, time-ordered.  Two plans from the same seed and
    /// config compare equal.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Total plan length.
    pub fn duration(&self) -> Duration {
        self.duration
    }

    /// Apply one event to the network right now.
    fn apply(net: &SimNet, kind: &FaultKind) {
        match kind {
            FaultKind::Crash(h) => net.kill_host(h),
            FaultKind::Revive(h) => {
                net.revive_host(h);
                // The incident is over: faults armed for the crash window
                // but never consumed must not ambush post-recovery writes.
                net.storage_faults().clear(h);
            }
            FaultKind::Partition(a, b) => net.partition(a, b),
            FaultKind::Heal(a, b) => net.heal(a, b),
            FaultKind::HealAll => net.heal_all(),
            FaultKind::Latency(latency) => {
                let mut config = net.config();
                config.latency = *latency;
                net.set_config(config);
            }
            FaultKind::DatagramLoss(p) => {
                let mut config = net.config();
                config.datagram_loss = *p;
                net.set_config(config);
            }
            FaultKind::Storage(h, fault) => net.storage_faults().arm(h, *fault),
        }
    }

    /// Run the plan on the calling thread: sleep to each event's offset,
    /// apply it, and return once the full duration has elapsed.
    pub fn run_blocking(&self, net: &SimNet) {
        let start = Instant::now();
        for event in &self.events {
            let now = start.elapsed();
            if event.at > now {
                std::thread::sleep(event.at - now);
            }
            Self::apply(net, &event.kind);
        }
        let now = start.elapsed();
        if self.duration > now {
            std::thread::sleep(self.duration - now);
        }
    }

    /// Run the plan on a background thread; join through the returned
    /// handle.
    pub fn spawn(&self, net: &SimNet) -> FaultRunner {
        let plan = self.clone();
        let net = net.clone();
        let join = std::thread::Builder::new()
            .name("fault-plan".into())
            .spawn(move || plan.run_blocking(&net))
            .expect("spawn fault-plan thread");
        FaultRunner { join }
    }
}

/// Handle to a running background fault plan.
pub struct FaultRunner {
    join: std::thread::JoinHandle<()>,
}

impl FaultRunner {
    /// Block until the plan has fully executed (network healed).
    pub fn join(self) {
        let _ = self.join.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(names: &[&str]) -> Vec<HostId> {
        names.iter().map(|n| HostId::from(*n)).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let config = FaultPlanConfig::new(Duration::from_secs(2), hosts(&["a", "b", "c"]));
        for seed in [0u64, 1, 42, u64::MAX] {
            let x = FaultPlan::generate(seed, &config);
            let y = FaultPlan::generate(seed, &config);
            assert_eq!(x, y, "seed {seed} produced diverging schedules");
            assert!(!x.events().is_empty());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let config = FaultPlanConfig::new(Duration::from_secs(2), hosts(&["a", "b", "c"]));
        let x = FaultPlan::generate(1, &config);
        let y = FaultPlan::generate(2, &config);
        assert_ne!(x, y);
    }

    #[test]
    fn events_are_time_ordered_and_plan_self_heals() {
        let config = FaultPlanConfig::new(Duration::from_secs(2), hosts(&["a", "b", "c"]));
        let plan = FaultPlan::generate(7, &config);
        let events = plan.events();
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        // Every crash has a revive at or after it.
        for (i, e) in events.iter().enumerate() {
            if let FaultKind::Crash(h) = &e.kind {
                assert!(
                    events[i..]
                        .iter()
                        .any(|later| later.kind == FaultKind::Revive(h.clone())),
                    "crash of {h} never revived"
                );
            }
        }
        // The final state of the plan is fully healed.
        assert!(events
            .iter()
            .rev()
            .take_while(|e| e.at == plan.duration())
            .any(|e| e.kind == FaultKind::HealAll));
    }

    #[test]
    fn crash_concurrency_budget_holds() {
        let names = hosts(&["a", "b", "c", "d"]);
        let mut config = FaultPlanConfig::new(Duration::from_secs(4), names);
        config.crash_windows = 8;
        config.max_concurrent_crashes = 2;
        for seed in 0..20u64 {
            let plan = FaultPlan::generate(seed, &config);
            let mut down = 0usize;
            let mut max_down = 0usize;
            for e in plan.events() {
                match &e.kind {
                    FaultKind::Crash(_) => {
                        down += 1;
                        max_down = max_down.max(down);
                    }
                    FaultKind::Revive(_) if e.at < plan.duration() => {
                        down = down.saturating_sub(1);
                    }
                    _ => {}
                }
            }
            assert!(max_down <= 2, "seed {seed}: {max_down} hosts down at once");
        }
    }

    #[test]
    fn storage_faults_generate_deterministically_and_arm_on_apply() {
        let mut config = FaultPlanConfig::new(Duration::from_secs(2), hosts(&["a", "b", "c"]));
        config.storage_hosts = hosts(&["a", "b"]);
        config.storage_fault_windows = 4;
        let plan = FaultPlan::generate(11, &config);
        assert_eq!(plan, FaultPlan::generate(11, &config));
        let storage_events: Vec<_> = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Storage(..)))
            .collect();
        assert!(!storage_events.is_empty(), "no storage faults generated");
        // At most one bit flip per plan, and only on storage hosts.
        let flips = storage_events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Storage(_, StorageFault::BitFlip(_))))
            .count();
        assert!(flips <= 1, "{flips} bit flips in one plan");
        for e in &storage_events {
            let FaultKind::Storage(h, _) = &e.kind else {
                unreachable!()
            };
            assert!(config.storage_hosts.contains(h));
        }
    }

    #[test]
    fn revive_clears_armed_storage_faults() {
        let net = SimNet::new();
        let a = net.add_host("a");
        net.storage_faults().arm(&a, StorageFault::CrashAtByte(3));
        assert_eq!(net.storage_faults().armed(&a), 1);
        FaultPlan::apply(&net, &FaultKind::Revive(a.clone()));
        assert_eq!(net.storage_faults().armed(&a), 0);
    }

    #[test]
    fn hub_is_a_fifo_per_host() {
        let hub = StorageFaultHub::new();
        let h = HostId::from("x");
        hub.arm(&h, StorageFault::TornWrite(1));
        hub.arm(&h, StorageFault::BitFlip(2));
        assert_eq!(hub.take(&h), Some(StorageFault::TornWrite(1)));
        assert_eq!(hub.take(&h), Some(StorageFault::BitFlip(2)));
        assert_eq!(hub.take(&h), None);
    }

    #[test]
    fn manual_plan_applies_to_net() {
        let net = SimNet::new();
        let a = net.add_host("a");
        let b = net.add_host("b");
        let plan = FaultPlan::new(Duration::from_millis(30))
            .at(Duration::ZERO, FaultKind::Crash(a.clone()))
            .at(Duration::from_millis(10), FaultKind::Revive(a.clone()))
            .at(
                Duration::from_millis(10),
                FaultKind::Partition(a.clone(), b.clone()),
            )
            .at(Duration::from_millis(20), FaultKind::HealAll)
            .at(Duration::from_millis(20), FaultKind::DatagramLoss(0.5));
        let runner = plan.spawn(&net);
        std::thread::sleep(Duration::from_millis(5));
        assert!(!net.is_up(&a), "crash not applied");
        runner.join();
        assert!(net.is_up(&a));
        assert!(net.reachable(&a, &b));
        assert!((net.config().datagram_loss - 0.5).abs() < 1e-12);
    }
}
