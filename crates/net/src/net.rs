//! The simulated building network.
//!
//! The paper's ACE ran on a physical LAN of Unix hosts.  [`SimNet`] is the
//! in-process substitute: a registry of named hosts, listeners, and datagram
//! sockets that provides the same observable behaviour — connect/refuse,
//! ordered reliable streams, lossy datagrams, host crashes, partitions, and
//! per-frame latency — plus traffic metrics for the experiments.
//!
//! `SimNet` is `Clone` (shared handle) and all operations are thread-safe;
//! every ACE daemon thread holds a handle.

use crate::addr::{Addr, HostId};
use crate::conn::{Connection, Listener};
use crate::datagram::{Datagram, DatagramSocket};
use crate::error::NetError;
use crate::metrics::NetMetrics;
use crate::wake::WakeCell;
use crossbeam_channel::Sender;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU16, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunable behaviour of the simulated network.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Added delay per frame/datagram send (models wire latency).
    pub latency: Duration,
    /// Probability in `[0, 1]` that a datagram is silently dropped
    /// (streams are always reliable, like TCP).
    pub datagram_loss: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: Duration::ZERO,
            datagram_loss: 0.0,
        }
    }
}

#[derive(Debug, Default)]
struct HostState {
    up: bool,
}

/// A bound endpoint: its inbox, the wake cell its owning task parked on,
/// and the identity of the bind.  A crashed host's endpoints are removed
/// from the map while the owning `Listener`/`DatagramSocket` objects live
/// on; the id keeps their eventual `Drop` from unbinding a *replacement*
/// that re-bound the same address in the meantime.
struct Endpoint<T> {
    tx: Sender<T>,
    wake: Arc<WakeCell>,
    bind_id: u64,
}

type WakeableInbox<T> = HashMap<Addr, Endpoint<T>>;

pub(crate) struct NetInner {
    hosts: RwLock<HashMap<HostId, HostState>>,
    listeners: Mutex<WakeableInbox<Connection>>,
    dsockets: Mutex<WakeableInbox<Datagram>>,
    /// Severed host pairs, stored with the two names ordered.
    blocked: RwLock<HashSet<(HostId, HostId)>>,
    config: RwLock<NetConfig>,
    pub(crate) metrics: NetMetrics,
    ephemeral: AtomicU16,
    bind_ids: AtomicU64,
    /// Armed per-host storage faults (see `fault::StorageFaultHub`).
    storage_faults: crate::fault::StorageFaultHub,
}

impl NetInner {
    fn host_up(&self, h: &HostId) -> Result<(), NetError> {
        match self.hosts.read().get(h) {
            None => Err(NetError::UnknownHost(h.to_string())),
            Some(s) if !s.up => Err(NetError::Unreachable {
                from: h.to_string(),
                to: h.to_string(),
            }),
            Some(_) => Ok(()),
        }
    }

    /// Both endpoints up and no partition between them.
    pub(crate) fn check_link(&self, a: &HostId, b: &HostId) -> Result<(), NetError> {
        let hosts = self.hosts.read();
        for h in [a, b] {
            match hosts.get(h) {
                None => return Err(NetError::UnknownHost(h.to_string())),
                Some(s) if !s.up => {
                    return Err(NetError::Unreachable {
                        from: a.to_string(),
                        to: b.to_string(),
                    })
                }
                Some(_) => {}
            }
        }
        drop(hosts);
        if a != b && self.blocked.read().contains(&ordered(a, b)) {
            return Err(NetError::Unreachable {
                from: a.to_string(),
                to: b.to_string(),
            });
        }
        Ok(())
    }

    pub(crate) fn apply_latency(&self) {
        let latency = self.config.read().latency;
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
    }

    /// Unbind, but only if the entry still belongs to the caller: a stale
    /// endpoint object dropped after a crash must not evict whoever
    /// re-bound the address since.
    pub(crate) fn unbind_listener(&self, addr: &Addr, bind_id: u64) {
        let mut listeners = self.listeners.lock();
        if listeners.get(addr).is_some_and(|e| e.bind_id == bind_id) {
            listeners.remove(addr);
        }
    }

    pub(crate) fn unbind_dsocket(&self, addr: &Addr, bind_id: u64) {
        let mut dsockets = self.dsockets.lock();
        if dsockets.get(addr).is_some_and(|e| e.bind_id == bind_id) {
            dsockets.remove(addr);
        }
    }

    fn drop_roll(&self) -> bool {
        let p = self.config.read().datagram_loss;
        p > 0.0 && rand::random::<f64>() < p
    }
}

fn ordered(a: &HostId, b: &HostId) -> (HostId, HostId) {
    if a <= b {
        (a.clone(), b.clone())
    } else {
        (b.clone(), a.clone())
    }
}

/// Shared handle to the simulated network.
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<NetInner>,
}

impl Default for SimNet {
    fn default() -> Self {
        Self::new()
    }
}

impl SimNet {
    /// A fresh, empty network.
    pub fn new() -> Self {
        SimNet {
            inner: Arc::new(NetInner {
                hosts: RwLock::new(HashMap::new()),
                listeners: Mutex::new(HashMap::new()),
                dsockets: Mutex::new(HashMap::new()),
                blocked: RwLock::new(HashSet::new()),
                config: RwLock::new(NetConfig::default()),
                metrics: NetMetrics::default(),
                ephemeral: AtomicU16::new(49152),
                bind_ids: AtomicU64::new(0),
                storage_faults: crate::fault::StorageFaultHub::new(),
            }),
        }
    }

    /// The per-host storage-fault hub: fault plans arm byte-level disk
    /// faults here and the persistent store's backends consume them.
    pub fn storage_faults(&self) -> crate::fault::StorageFaultHub {
        self.inner.storage_faults.clone()
    }

    /// Replace the network configuration.
    pub fn set_config(&self, config: NetConfig) {
        *self.inner.config.write() = config;
    }

    /// Current configuration.
    pub fn config(&self) -> NetConfig {
        self.inner.config.read().clone()
    }

    /// Traffic metrics.
    pub fn metrics(&self) -> &NetMetrics {
        &self.inner.metrics
    }

    /// Add a host (idempotent; re-adding a downed host does not revive it).
    pub fn add_host(&self, name: impl Into<HostId>) -> HostId {
        let id = name.into();
        self.inner
            .hosts
            .write()
            .entry(id.clone())
            .or_insert(HostState { up: true });
        id
    }

    /// All known host names, sorted.
    pub fn hosts(&self) -> Vec<HostId> {
        let mut v: Vec<HostId> = self.inner.hosts.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Is the host present and up?
    pub fn is_up(&self, host: &HostId) -> bool {
        self.inner
            .hosts
            .read()
            .get(host)
            .map(|s| s.up)
            .unwrap_or(false)
    }

    /// Crash a host: all its listeners and datagram sockets unbind, and every
    /// link to it fails until [`SimNet::revive_host`].
    pub fn kill_host(&self, host: &HostId) {
        if let Some(state) = self.inner.hosts.write().get_mut(host) {
            state.up = false;
        }
        // Dropping the accept/datagram senders wakes blocked accepts with
        // `Closed`, which is how daemons on that host observe the crash.
        // Registered reactor wakers fire too, so cooperative tasks polling
        // these endpoints notice the disconnect on their next poll.
        let mut dead_cells = Vec::new();
        self.inner.listeners.lock().retain(|addr, endpoint| {
            let keep = addr.host != *host;
            if !keep {
                dead_cells.push(Arc::clone(&endpoint.wake));
            }
            keep
        });
        self.inner.dsockets.lock().retain(|addr, endpoint| {
            let keep = addr.host != *host;
            if !keep {
                dead_cells.push(Arc::clone(&endpoint.wake));
            }
            keep
        });
        for cell in dead_cells {
            cell.wake();
        }
    }

    /// Bring a crashed host back (its services must re-bind and re-register,
    /// per the daemon startup sequence of Fig. 9).
    pub fn revive_host(&self, host: &HostId) {
        if let Some(state) = self.inner.hosts.write().get_mut(host) {
            state.up = true;
        }
    }

    /// Sever the link between two hosts (network partition).
    pub fn partition(&self, a: &HostId, b: &HostId) {
        self.inner.blocked.write().insert(ordered(a, b));
    }

    /// Restore the link between two hosts.
    pub fn heal(&self, a: &HostId, b: &HostId) {
        self.inner.blocked.write().remove(&ordered(a, b));
    }

    /// Restore every severed link.
    pub fn heal_all(&self) {
        self.inner.blocked.write().clear();
    }

    /// Can `a` currently talk to `b`?
    pub fn reachable(&self, a: &HostId, b: &HostId) -> bool {
        self.inner.check_link(a, b).is_ok()
    }

    /// Bind a listener at `addr`.  The host must exist and be up.
    pub fn listen(&self, addr: Addr) -> Result<Listener, NetError> {
        self.inner.host_up(&addr.host)?;
        let mut listeners = self.inner.listeners.lock();
        if listeners.contains_key(&addr) {
            return Err(NetError::AddrInUse(addr));
        }
        let (tx, rx) = crossbeam_channel::unbounded();
        let wake = Arc::new(WakeCell::new());
        let bind_id = self.inner.bind_ids.fetch_add(1, Ordering::Relaxed);
        listeners.insert(
            addr.clone(),
            Endpoint {
                tx,
                wake: Arc::clone(&wake),
                bind_id,
            },
        );
        Ok(Listener::new(
            addr,
            rx,
            wake,
            Arc::clone(&self.inner),
            bind_id,
        ))
    }

    /// Connect from `from_host` to the listener at `to`.
    pub fn connect(&self, from_host: &HostId, to: Addr) -> Result<Connection, NetError> {
        self.inner.check_link(from_host, &to.host)?;
        self.inner.apply_latency();
        let local = Addr::new(
            from_host.clone(),
            self.inner.ephemeral.fetch_add(1, Ordering::Relaxed).max(1),
        );
        let (accept_tx, accept_wake) = {
            let listeners = self.inner.listeners.lock();
            let endpoint = listeners
                .get(&to)
                .ok_or_else(|| NetError::ConnectionRefused(to.clone()))?;
            (endpoint.tx.clone(), Arc::clone(&endpoint.wake))
        };
        let (client, server) = Connection::pair(&self.inner, local, to.clone());
        accept_tx
            .send(server)
            .map_err(|_| NetError::ConnectionRefused(to))?;
        accept_wake.wake();
        self.inner.metrics.record_connection();
        Ok(client)
    }

    /// Bind a datagram socket at `addr` (the daemon data thread's UDP
    /// channel, §2.1.1).
    pub fn bind_datagram(&self, addr: Addr) -> Result<DatagramSocket, NetError> {
        self.inner.host_up(&addr.host)?;
        let mut sockets = self.inner.dsockets.lock();
        if sockets.contains_key(&addr) {
            return Err(NetError::AddrInUse(addr));
        }
        let (tx, rx) = crossbeam_channel::unbounded();
        let wake = Arc::new(WakeCell::new());
        let bind_id = self.inner.bind_ids.fetch_add(1, Ordering::Relaxed);
        sockets.insert(
            addr.clone(),
            Endpoint {
                tx,
                wake: Arc::clone(&wake),
                bind_id,
            },
        );
        Ok(DatagramSocket::new(
            addr,
            rx,
            wake,
            Arc::clone(&self.inner),
            bind_id,
        ))
    }

    /// Send one datagram.  Unreliable: it is silently dropped if nothing is
    /// bound at `to` or the configured loss probability fires; reachability
    /// failures do error (the sender's OS would notice those).
    pub fn send_datagram(&self, from: &Addr, to: &Addr, payload: Vec<u8>) -> Result<(), NetError> {
        self.inner.check_link(&from.host, &to.host)?;
        self.inner.metrics.record_datagram(payload.len());
        if self.inner.drop_roll() {
            self.inner.metrics.record_datagram_drop();
            return Ok(());
        }
        self.inner.apply_latency();
        let target = {
            let dsockets = self.inner.dsockets.lock();
            dsockets
                .get(to)
                .map(|e| (e.tx.clone(), Arc::clone(&e.wake)))
        };
        if let Some((tx, wake)) = target {
            if tx
                .send(Datagram {
                    from: from.clone(),
                    to: to.clone(),
                    payload,
                })
                .is_ok()
            {
                wake.wake();
            }
        }
        Ok(())
    }

    /// Multicast a datagram to every socket bound on `port`, on every
    /// reachable host.  This is the discovery substrate the Jini baseline
    /// uses (§8.4: "a multicast mechanism is used to find the lookup
    /// service").
    pub fn multicast(&self, from: &Addr, port: u16, payload: &[u8]) -> usize {
        let targets: Vec<(Addr, Sender<Datagram>, Arc<WakeCell>)> = self
            .inner
            .dsockets
            .lock()
            .iter()
            .filter(|(addr, _)| addr.port == port)
            .map(|(addr, e)| (addr.clone(), e.tx.clone(), Arc::clone(&e.wake)))
            .collect();
        let mut delivered = 0;
        for (addr, tx, wake) in targets {
            if self.inner.check_link(&from.host, &addr.host).is_err() {
                continue;
            }
            self.inner.metrics.record_datagram(payload.len());
            if self.inner.drop_roll() {
                self.inner.metrics.record_datagram_drop();
                continue;
            }
            if tx
                .send(Datagram {
                    from: from.clone(),
                    to: addr,
                    payload: payload.to_vec(),
                })
                .is_ok()
            {
                wake.wake();
                delivered += 1;
            }
        }
        delivered
    }
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimNet({} hosts)", self.inner.hosts.read().len())
    }
}
