//! Error type for the simulated network.

use crate::addr::Addr;
use std::fmt;

/// Failures of simulated-network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No listener is bound at the target address (or the port is not open).
    ConnectionRefused(Addr),
    /// The target host does not exist in the environment.
    UnknownHost(String),
    /// The source or destination host is down, or a partition separates them.
    Unreachable { from: String, to: String },
    /// The peer closed the connection (or its host died).
    Closed,
    /// A receive timed out.
    Timeout,
    /// The address is already bound.
    AddrInUse(Addr),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::ConnectionRefused(a) => write!(f, "connection refused at {a}"),
            NetError::UnknownHost(h) => write!(f, "unknown host `{h}`"),
            NetError::Unreachable { from, to } => write!(f, "{to} unreachable from {from}"),
            NetError::Closed => write!(f, "connection closed by peer"),
            NetError::Timeout => write!(f, "network operation timed out"),
            NetError::AddrInUse(a) => write!(f, "address {a} already in use"),
        }
    }
}

impl std::error::Error for NetError {}
