//! Behavioural tests of the simulated network: connection lifecycle, host
//! crashes, partitions, datagram loss, multicast, and metrics.

use ace_net::{Addr, NetConfig, NetError, SimNet};
use std::time::Duration;

fn two_host_net() -> SimNet {
    let net = SimNet::new();
    net.add_host("bar");
    net.add_host("tube");
    net
}

#[test]
fn connect_and_exchange() {
    let net = two_host_net();
    let listener = net.listen(Addr::new("bar", 1234)).unwrap();
    let client = net.connect(&"tube".into(), Addr::new("bar", 1234)).unwrap();
    let server = listener.accept_timeout(Duration::from_secs(1)).unwrap();

    client.send(b"hello".to_vec()).unwrap();
    assert_eq!(
        server.recv_timeout(Duration::from_secs(1)).unwrap(),
        b"hello"
    );
    server.send(b"world".to_vec()).unwrap();
    assert_eq!(
        client.recv_timeout(Duration::from_secs(1)).unwrap(),
        b"world"
    );

    assert_eq!(server.peer_addr().host.as_str(), "tube");
    assert_eq!(client.peer_addr(), &Addr::new("bar", 1234));
}

#[test]
fn frames_preserve_order() {
    let net = two_host_net();
    let listener = net.listen(Addr::new("bar", 1)).unwrap();
    let client = net.connect(&"tube".into(), Addr::new("bar", 1)).unwrap();
    let server = listener.accept().unwrap();
    for i in 0..100u8 {
        client.send(vec![i]).unwrap();
    }
    for i in 0..100u8 {
        assert_eq!(server.recv().unwrap(), vec![i]);
    }
}

#[test]
fn connect_to_unbound_port_refused() {
    let net = two_host_net();
    let err = net
        .connect(&"tube".into(), Addr::new("bar", 9))
        .unwrap_err();
    assert!(matches!(err, NetError::ConnectionRefused(_)));
}

#[test]
fn connect_to_unknown_host_fails() {
    let net = two_host_net();
    let err = net
        .connect(&"tube".into(), Addr::new("ghost", 9))
        .unwrap_err();
    assert!(matches!(err, NetError::UnknownHost(_)));
}

#[test]
fn double_bind_rejected() {
    let net = two_host_net();
    let _l = net.listen(Addr::new("bar", 7)).unwrap();
    let err = net.listen(Addr::new("bar", 7)).unwrap_err();
    assert!(matches!(err, NetError::AddrInUse(_)));
}

#[test]
fn listener_drop_unbinds() {
    let net = two_host_net();
    {
        let _l = net.listen(Addr::new("bar", 7)).unwrap();
    }
    // Port is free again.
    let _l2 = net.listen(Addr::new("bar", 7)).unwrap();
}

#[test]
fn graceful_close_observed_by_peer() {
    let net = two_host_net();
    let listener = net.listen(Addr::new("bar", 1)).unwrap();
    let client = net.connect(&"tube".into(), Addr::new("bar", 1)).unwrap();
    let server = listener.accept().unwrap();
    client.send(b"last".to_vec()).unwrap();
    drop(client);
    // Queued data still drains, then Closed.
    assert_eq!(server.recv().unwrap(), b"last");
    assert!(matches!(server.recv(), Err(NetError::Closed)));
}

#[test]
fn killed_host_breaks_links_and_unbinds() {
    let net = two_host_net();
    let listener = net.listen(Addr::new("bar", 1)).unwrap();
    let client = net.connect(&"tube".into(), Addr::new("bar", 1)).unwrap();
    let _server = listener.accept().unwrap();

    net.kill_host(&"bar".into());
    assert!(matches!(
        client.send(b"x".to_vec()),
        Err(NetError::Unreachable { .. })
    ));
    assert!(matches!(
        net.connect(&"tube".into(), Addr::new("bar", 1)),
        Err(NetError::Unreachable { .. })
    ));

    // Revival restores reachability but not bindings (daemons must restart).
    net.revive_host(&"bar".into());
    assert!(matches!(
        net.connect(&"tube".into(), Addr::new("bar", 1)),
        Err(NetError::ConnectionRefused(_))
    ));
    let _l2 = net.listen(Addr::new("bar", 1)).unwrap();
}

#[test]
fn partition_blocks_and_heals() {
    let net = two_host_net();
    let _listener = net.listen(Addr::new("bar", 1)).unwrap();
    net.partition(&"bar".into(), &"tube".into());
    assert!(!net.reachable(&"bar".into(), &"tube".into()));
    assert!(matches!(
        net.connect(&"tube".into(), Addr::new("bar", 1)),
        Err(NetError::Unreachable { .. })
    ));
    net.heal(&"bar".into(), &"tube".into());
    assert!(net.reachable(&"bar".into(), &"tube".into()));
    net.connect(&"tube".into(), Addr::new("bar", 1)).unwrap();
}

#[test]
fn partition_does_not_block_loopback() {
    let net = two_host_net();
    net.partition(&"bar".into(), &"tube".into());
    assert!(net.reachable(&"bar".into(), &"bar".into()));
}

#[test]
fn datagrams_deliver() {
    let net = two_host_net();
    let sock = net.bind_datagram(Addr::new("bar", 5000)).unwrap();
    let from = Addr::new("tube", 6000);
    net.send_datagram(&from, &Addr::new("bar", 5000), b"dgram".to_vec())
        .unwrap();
    let d = sock.recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(d.payload, b"dgram");
    assert_eq!(d.from, from);
}

#[test]
fn datagram_to_unbound_port_is_silently_dropped() {
    let net = two_host_net();
    // No error — UDP semantics.
    net.send_datagram(
        &Addr::new("tube", 6000),
        &Addr::new("bar", 5000),
        b"x".to_vec(),
    )
    .unwrap();
}

#[test]
fn datagram_loss_probability_applies() {
    let net = two_host_net();
    net.set_config(NetConfig {
        latency: Duration::ZERO,
        datagram_loss: 1.0,
    });
    let sock = net.bind_datagram(Addr::new("bar", 5000)).unwrap();
    for _ in 0..50 {
        net.send_datagram(
            &Addr::new("tube", 6000),
            &Addr::new("bar", 5000),
            b"x".to_vec(),
        )
        .unwrap();
    }
    assert_eq!(sock.pending(), 0);
    assert_eq!(net.metrics().snapshot().datagrams_dropped, 50);
}

/// `datagrams_dropped` accounting is exact: under total loss every send
/// increments it by one, deliveries under zero loss never touch it, and
/// the `since` delta isolates each phase.
#[test]
fn datagram_drop_accounting_is_exact() {
    let net = two_host_net();
    let sock = net.bind_datagram(Addr::new("bar", 5000)).unwrap();
    let from = Addr::new("tube", 6000);
    let send = |net: &SimNet, n: usize| {
        for _ in 0..n {
            net.send_datagram(&from, &Addr::new("bar", 5000), b"x".to_vec())
                .unwrap();
        }
    };

    // Phase 1: total loss — every send is a drop, nothing arrives.
    net.set_config(NetConfig {
        latency: Duration::ZERO,
        datagram_loss: 1.0,
    });
    let before = net.metrics().snapshot();
    send(&net, 17);
    let after_loss = net.metrics().snapshot();
    assert_eq!(after_loss.since(&before).datagrams_dropped, 17);
    assert_eq!(sock.pending(), 0);

    // Phase 2: lossless — deliveries must not be counted as drops.
    net.set_config(NetConfig {
        latency: Duration::ZERO,
        datagram_loss: 0.0,
    });
    send(&net, 17);
    let after_clean = net.metrics().snapshot();
    assert_eq!(after_clean.since(&after_loss).datagrams_dropped, 0);
    assert_eq!(sock.pending(), 17);
    assert_eq!(after_clean.datagrams_dropped, before.datagrams_dropped + 17);
}

#[test]
fn multicast_reaches_all_bound_sockets_on_port() {
    let net = SimNet::new();
    for h in ["a", "b", "c"] {
        net.add_host(h);
    }
    let sa = net.bind_datagram(Addr::new("a", 700)).unwrap();
    let sb = net.bind_datagram(Addr::new("b", 700)).unwrap();
    let other_port = net.bind_datagram(Addr::new("c", 701)).unwrap();

    let n = net.multicast(&Addr::new("c", 42), 700, b"announce");
    assert_eq!(n, 2);
    assert!(sa.recv_timeout(Duration::from_secs(1)).is_ok());
    assert!(sb.recv_timeout(Duration::from_secs(1)).is_ok());
    assert_eq!(other_port.pending(), 0);
}

#[test]
fn multicast_respects_partitions() {
    let net = SimNet::new();
    net.add_host("a");
    net.add_host("b");
    let sa = net.bind_datagram(Addr::new("a", 700)).unwrap();
    net.partition(&"a".into(), &"b".into());
    let n = net.multicast(&Addr::new("b", 42), 700, b"announce");
    assert_eq!(n, 0);
    assert_eq!(sa.pending(), 0);
}

#[test]
fn metrics_count_traffic() {
    let net = two_host_net();
    let before = net.metrics().snapshot();
    let listener = net.listen(Addr::new("bar", 1)).unwrap();
    let client = net.connect(&"tube".into(), Addr::new("bar", 1)).unwrap();
    let _server = listener.accept().unwrap();
    client.send(vec![0u8; 100]).unwrap();
    client.send(vec![0u8; 50]).unwrap();
    let delta = net.metrics().snapshot().since(&before);
    assert_eq!(delta.connections, 1);
    assert_eq!(delta.frames, 2);
    assert_eq!(delta.frame_bytes, 150);
}

#[test]
fn concurrent_connections_from_many_threads() {
    let net = two_host_net();
    let listener = net.listen(Addr::new("bar", 1)).unwrap();
    let mut joins = Vec::new();
    for i in 0..8 {
        let net = net.clone();
        joins.push(std::thread::spawn(move || {
            let c = net.connect(&"tube".into(), Addr::new("bar", 1)).unwrap();
            c.send(vec![i]).unwrap();
            let echo = c.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(echo, vec![i]);
        }));
    }
    for _ in 0..8 {
        let s = listener.accept_timeout(Duration::from_secs(5)).unwrap();
        std::thread::spawn(move || {
            let f = s.recv().unwrap();
            s.send(f).unwrap();
        });
    }
    for j in joins {
        j.join().unwrap();
    }
}

#[test]
fn recv_timeout_times_out() {
    let net = two_host_net();
    let listener = net.listen(Addr::new("bar", 1)).unwrap();
    let client = net.connect(&"tube".into(), Addr::new("bar", 1)).unwrap();
    let server = listener.accept().unwrap();
    let _keep = client;
    assert!(matches!(
        server.recv_timeout(Duration::from_millis(10)),
        Err(NetError::Timeout)
    ));
}

#[test]
fn latency_is_applied_per_frame() {
    let net = two_host_net();
    net.set_config(NetConfig {
        latency: Duration::from_millis(5),
        datagram_loss: 0.0,
    });
    let listener = net.listen(Addr::new("bar", 1)).unwrap();
    let client = net.connect(&"tube".into(), Addr::new("bar", 1)).unwrap();
    let _server = listener.accept().unwrap();
    let t0 = std::time::Instant::now();
    for _ in 0..4 {
        client.send(b"x".to_vec()).unwrap();
    }
    assert!(t0.elapsed() >= Duration::from_millis(20));
}
