//! The ACE ID Monitor service (§4.6).
//!
//! "This service has the unique job of receiving user identification
//! notifications from ACE identification devices and initiating the
//! appropriate actions to account for a positive or negative identification
//! notification."
//!
//! On a positive identification it updates the user's location in the AUD
//! (Scenario 2) and re-fires the event as `userAt` for workspace machinery
//! (the WSS listens, Scenario 3).  On a negative one it records a security
//! log entry — repeated failures are the Network Logger's intrusion trail
//! (§4.14).

use ace_core::prelude::*;
use std::collections::HashMap;

/// The ID Monitor behavior.
#[derive(Default)]
pub struct IdMonitor {
    aud: Option<Addr>,
    /// username → (room, host) as last seen by this monitor.
    last_seen: HashMap<String, (String, String)>,
    failures: u64,
}

impl IdMonitor {
    pub fn new() -> IdMonitor {
        IdMonitor::default()
    }

    fn aud_addr(&mut self, ctx: &mut ServiceCtx) -> Option<Addr> {
        if self.aud.is_none() {
            self.aud = ctx.lookup_one("aud").ok().flatten().map(|entry| entry.addr);
        }
        self.aud.clone()
    }

    /// Subscribe this monitor to every identification device currently in
    /// the ASD (call after devices spawn; idempotent).
    pub fn subscribe_to_devices(
        net: &SimNet,
        monitor: &DaemonHandle,
        devices: &[&DaemonHandle],
        identity: &ace_security::keys::KeyPair,
    ) -> Result<(), ClientError> {
        for device in devices {
            let mut client =
                ServiceClient::connect(net, &monitor.addr().host, device.addr().clone(), identity)?;
            for (event, notify_cmd) in [
                ("userIdentified", "onIdentified"),
                ("identificationFailed", "onIdentFailed"),
            ] {
                client.call_ok(
                    &CmdLine::new("addNotification")
                        .arg("cmd", event)
                        .arg("service", monitor.name())
                        .arg("host", monitor.addr().host.as_str())
                        .arg("port", monitor.addr().port)
                        .arg("notifyCmd", notify_cmd),
                )?;
            }
        }
        Ok(())
    }
}

impl ServiceBehavior for IdMonitor {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("onIdentified", "notification: a device identified a user")
                    .optional("service", ArgType::Str, "origin device service")
                    .optional("cmd", ArgType::Str, "origin event")
                    .optional("username", ArgType::Word, "identified user")
                    .optional("room", ArgType::Word, "room of the device")
                    .optional("accessHost", ArgType::Word, "access point host")
                    .optional("device", ArgType::Str, "device name")
                    .optional("score", ArgType::Float, "match score"),
            )
            .with(
                CmdSpec::new("onIdentFailed", "notification: an identification failed")
                    .optional("service", ArgType::Str, "origin device service")
                    .optional("cmd", ArgType::Str, "origin event")
                    .optional("device", ArgType::Str, "device name")
                    .optional("reason", ArgType::Str, "failure reason"),
            )
            .with(
                CmdSpec::new("lastSeen", "where did this user last identify?").required(
                    "username",
                    ArgType::Word,
                    "user to query",
                ),
            )
            .with(CmdSpec::new("monitorStats", "identification counters"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "onIdentified" => {
                let Some(username) = cmd.get_text("username").map(str::to_string) else {
                    return Reply::err(ErrorCode::Semantics, "notification without username");
                };
                let room = cmd.get_text("room").unwrap_or("unknown").to_string();
                let host = cmd.get_text("accessHost").unwrap_or("unknown").to_string();
                // Scenario 2: "the ID Monitor service then updates John's
                // current location with the AUD."
                if let Some(aud) = self.aud_addr(ctx) {
                    let _ = ctx.call(
                        &aud,
                        &CmdLine::new("setLocation")
                            .arg("username", username.as_str())
                            .arg("room", room.as_str())
                            .arg("host", host.as_str()),
                    );
                }
                self.last_seen
                    .insert(username.clone(), (room.clone(), host.clone()));
                // Scenario 3 hand-off: workspace machinery listens on
                // `userAt`.
                ctx.fire_event(
                    CmdLine::new("userAt")
                        .arg("username", username.as_str())
                        .arg("room", room.as_str())
                        .arg("accessHost", host.as_str()),
                );
                Reply::ok()
            }
            "onIdentFailed" => {
                self.failures += 1;
                let device = cmd.get_text("device").unwrap_or("?");
                let reason = cmd.get_text("reason").unwrap_or("?");
                ctx.log(
                    "security",
                    format!("identification failure at {device}: {reason}"),
                );
                Reply::ok()
            }
            "lastSeen" => {
                let username = req_text!(cmd, "username");
                match self.last_seen.get(username) {
                    Some((room, host)) => {
                        Reply::ok_with(|c| c.arg("room", room.as_str()).arg("host", host.as_str()))
                    }
                    None => Reply::err(ErrorCode::NotFound, "user not seen"),
                }
            }
            "monitorStats" => Reply::ok_with(|c| {
                c.arg("identified", self.last_seen.len() as i64)
                    .arg("failures", self.failures as i64)
            }),
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}
