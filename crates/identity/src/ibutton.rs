//! The ACE iButton Reader service (§4.9).
//!
//! "The iButton is a simple solid-state memory device that stores a unique
//! serial number … this ACE service serves to read these numbers from the
//! iButton reader, identify users based on known users and their serial
//! numbers stored in the AUD, and interface to other ACE services wishing
//! to identify someone and/or receive identification notifications."
//!
//! Unlike the FIU there is no matching: the serial either belongs to a
//! registered user or it does not.  A physical touch arrives as the `touch`
//! command.

use ace_core::prelude::*;

/// The iButton reader service behavior.
#[derive(Default)]
pub struct IButtonReader {
    aud: Option<Addr>,
    touches: u64,
}

impl IButtonReader {
    pub fn new() -> IButtonReader {
        IButtonReader::default()
    }

    fn aud_addr(&mut self, ctx: &mut ServiceCtx) -> Option<Addr> {
        if self.aud.is_none() {
            self.aud = ctx.lookup_one("aud").ok().flatten().map(|entry| entry.addr);
        }
        self.aud.clone()
    }
}

impl ServiceBehavior for IButtonReader {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("touch", "an iButton touched the reader (device event)").required(
                    "serial",
                    ArgType::Str,
                    "the button's serial number",
                ),
            )
            .with(CmdSpec::new("readerStatus", "reader status"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "touch" => {
                self.touches += 1;
                let serial = req_text!(cmd, "serial").to_string();
                let user = self.aud_addr(ctx).and_then(|aud| {
                    ctx.call(
                        &aud,
                        &CmdLine::new("findByIButton").arg("serial", Value::Str(serial.clone())),
                    )
                    .ok()
                    .and_then(|r| r.get_text("username").map(str::to_string))
                });
                match user {
                    Some(username) => {
                        ctx.log("info", format!("iButton identified {username}"));
                        let room = ctx.room().to_string();
                        let host = ctx.host().to_string();
                        ctx.fire_event(
                            CmdLine::new("userIdentified")
                                .arg("username", username.as_str())
                                .arg("room", room.as_str())
                                .arg("accessHost", host.as_str())
                                .arg("device", ctx.name())
                                .arg("score", 1.0),
                        );
                        Reply::ok_with(|c| c.arg("identified", true).arg("username", username))
                    }
                    None => {
                        ctx.log("security", format!("unknown iButton serial {serial}"));
                        ctx.fire_event(
                            CmdLine::new("identificationFailed")
                                .arg("device", ctx.name())
                                .arg("reason", "unknown_serial"),
                        );
                        Reply::ok_with(|c| c.arg("identified", false))
                    }
                }
            }
            "readerStatus" => Reply::ok_with(|c| c.arg("touches", self.touches as i64)),
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}
