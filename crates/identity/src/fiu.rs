//! The ACE Fingerprint Identification Unit service — FIU (§4.8).
//!
//! "A simple controller interface for the Sony fingerprint identification
//! unit model FIU-001/500 … loading its tables of known fingerprints,
//! querying it for identification of user fingerprints, and serving as an
//! interface to other ACE services wishing to identify someone and/or
//! receive identification notifications."
//!
//! The Sony hardware is substituted by [`ScannerDevice`]: an enrolled-
//! template matcher with a quality threshold and configurable false-accept/
//! false-reject error injection.  A physical finger press arrives as the
//! `press` command (the environment's stand-in for the device interrupt);
//! successful identification fires the `userIdentified` event that the ID
//! Monitor listens for (Scenario 2).

use ace_core::prelude::*;
use std::collections::HashMap;

/// The simulated fingerprint scanner hardware.
#[derive(Debug)]
pub struct ScannerDevice {
    /// Enrolled template id → enrolment quality in `[0, 1]`.
    templates: HashMap<String, f64>,
    /// Minimum match score to accept.
    threshold: f64,
    /// Probability a matching press is wrongly rejected.
    false_reject: f64,
    /// Probability a non-enrolled press is wrongly accepted as a random
    /// enrolled template.
    false_accept: f64,
}

impl Default for ScannerDevice {
    fn default() -> Self {
        ScannerDevice {
            templates: HashMap::new(),
            threshold: 0.6,
            false_reject: 0.0,
            false_accept: 0.0,
        }
    }
}

/// Outcome of one press against the device.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanOutcome {
    /// Matched this enrolled template with this score.
    Match { template: String, score: f64 },
    /// No enrolled template matched.
    NoMatch,
}

impl ScannerDevice {
    /// A device with error injection (for the robustness experiments).
    pub fn with_error_rates(false_reject: f64, false_accept: f64) -> ScannerDevice {
        ScannerDevice {
            false_reject,
            false_accept,
            ..ScannerDevice::default()
        }
    }

    /// Load one template into the device table.
    pub fn enroll(&mut self, template: &str, quality: f64) {
        self.templates
            .insert(template.to_string(), quality.clamp(0.0, 1.0));
    }

    /// Remove a template.
    pub fn unenroll(&mut self, template: &str) -> bool {
        self.templates.remove(template).is_some()
    }

    /// Number of enrolled templates.
    pub fn enrolled(&self) -> usize {
        self.templates.len()
    }

    /// Match a pressed finger (identified by its template id, with a press
    /// quality in `[0, 1]`) against the table.
    pub fn scan(&self, template: &str, press_quality: f64) -> ScanOutcome {
        if let Some(enrolled_quality) = self.templates.get(template) {
            let score = enrolled_quality * press_quality.clamp(0.0, 1.0);
            if score >= self.threshold && rand::random::<f64>() >= self.false_reject {
                return ScanOutcome::Match {
                    template: template.to_string(),
                    score,
                };
            }
            return ScanOutcome::NoMatch;
        }
        if self.false_accept > 0.0 && rand::random::<f64>() < self.false_accept {
            if let Some((t, q)) = self.templates.iter().next() {
                return ScanOutcome::Match {
                    template: t.clone(),
                    score: *q,
                };
            }
        }
        ScanOutcome::NoMatch
    }
}

/// The FIU service behavior.
pub struct Fiu {
    device: ScannerDevice,
    /// Cached AUD address (looked up via the ASD on first use).
    aud: Option<Addr>,
}

impl Fiu {
    pub fn new(device: ScannerDevice) -> Fiu {
        Fiu { device, aud: None }
    }

    fn aud_addr(&mut self, ctx: &mut ServiceCtx) -> Option<Addr> {
        if self.aud.is_none() {
            self.aud = ctx.lookup_one("aud").ok().flatten().map(|entry| entry.addr);
        }
        self.aud.clone()
    }
}

impl ServiceBehavior for Fiu {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("enrollTemplate", "load a fingerprint template")
                    .required("template", ArgType::Str, "template id")
                    .optional("quality", ArgType::Float, "enrolment quality (default 0.9)"),
            )
            .with(
                CmdSpec::new("unenrollTemplate", "remove a template").required(
                    "template",
                    ArgType::Str,
                    "template id",
                ),
            )
            .with(
                CmdSpec::new("press", "a finger pressed the scanner (device event)")
                    .required("template", ArgType::Str, "template id of the finger")
                    .optional("quality", ArgType::Float, "press quality (default 1.0)"),
            )
            .with(
                CmdSpec::new("verify", "match a template without firing events")
                    .required("template", ArgType::Str, "template id")
                    .optional("quality", ArgType::Float, "press quality"),
            )
            .with(CmdSpec::new("scannerStatus", "device status"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "enrollTemplate" => {
                let template = req_text!(cmd, "template");
                let quality = cmd.get_f64("quality").unwrap_or(0.9);
                self.device.enroll(template, quality);
                Reply::ok()
            }
            "unenrollTemplate" => {
                let template = req_text!(cmd, "template");
                if self.device.unenroll(template) {
                    Reply::ok()
                } else {
                    Reply::err(ErrorCode::NotFound, "template not enrolled")
                }
            }
            "verify" => {
                let template = req_text!(cmd, "template");
                let quality = cmd.get_f64("quality").unwrap_or(1.0);
                match self.device.scan(template, quality) {
                    ScanOutcome::Match { score, .. } => {
                        Reply::ok_with(|c| c.arg("matched", true).arg("score", score))
                    }
                    ScanOutcome::NoMatch => Reply::ok_with(|c| c.arg("matched", false)),
                }
            }
            "press" => {
                let template = req_text!(cmd, "template").to_string();
                let quality = cmd.get_f64("quality").unwrap_or(1.0);
                match self.device.scan(&template, quality) {
                    ScanOutcome::Match { template, score } => {
                        // Resolve the template to a user via the AUD.
                        let user = self.aud_addr(ctx).and_then(|aud| {
                            ctx.call(
                                &aud,
                                &CmdLine::new("findByFingerprint")
                                    .arg("template", Value::Str(template.clone())),
                            )
                            .ok()
                            .and_then(|r| r.get_text("username").map(str::to_string))
                        });
                        match user {
                            Some(username) => {
                                ctx.log(
                                    "info",
                                    format!("identified {username} (score {score:.2})"),
                                );
                                let room = ctx.room().to_string();
                                let host = ctx.host().to_string();
                                // Scenario 2: positive identification flows
                                // to listeners (the ID Monitor).
                                ctx.fire_event(
                                    CmdLine::new("userIdentified")
                                        .arg("username", username.as_str())
                                        .arg("room", room.as_str())
                                        .arg("accessHost", host.as_str())
                                        .arg("device", ctx.name())
                                        .arg("score", score),
                                );
                                Reply::ok_with(|c| {
                                    c.arg("identified", true).arg("username", username)
                                })
                            }
                            None => {
                                ctx.log(
                                    "security",
                                    format!("matched template {template} has no ACE user"),
                                );
                                ctx.fire_event(
                                    CmdLine::new("identificationFailed")
                                        .arg("device", ctx.name())
                                        .arg("reason", "no_user"),
                                );
                                Reply::ok_with(|c| c.arg("identified", false))
                            }
                        }
                    }
                    ScanOutcome::NoMatch => {
                        ctx.log("security", "fingerprint press did not match");
                        ctx.fire_event(
                            CmdLine::new("identificationFailed")
                                .arg("device", ctx.name())
                                .arg("reason", "no_match"),
                        );
                        Reply::ok_with(|c| c.arg("identified", false))
                    }
                }
            }
            "scannerStatus" => Reply::ok_with(|c| {
                c.arg("enrolled", self.device.enrolled() as i64)
                    .arg("threshold", self.device.threshold)
            }),
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enroll_and_match() {
        let mut d = ScannerDevice::default();
        d.enroll("fp_john", 0.9);
        assert_eq!(
            d.scan("fp_john", 1.0),
            ScanOutcome::Match {
                template: "fp_john".into(),
                score: 0.9
            }
        );
        assert_eq!(d.scan("fp_jane", 1.0), ScanOutcome::NoMatch);
    }

    #[test]
    fn poor_press_quality_rejected() {
        let mut d = ScannerDevice::default();
        d.enroll("fp", 0.9);
        // 0.9 * 0.5 = 0.45 < 0.6 threshold.
        assert_eq!(d.scan("fp", 0.5), ScanOutcome::NoMatch);
    }

    #[test]
    fn false_reject_injection() {
        let mut d = ScannerDevice::with_error_rates(1.0, 0.0);
        d.enroll("fp", 1.0);
        assert_eq!(d.scan("fp", 1.0), ScanOutcome::NoMatch);
    }

    #[test]
    fn false_accept_injection() {
        let mut d = ScannerDevice::with_error_rates(0.0, 1.0);
        d.enroll("fp_real", 1.0);
        assert!(matches!(
            d.scan("fp_stranger", 1.0),
            ScanOutcome::Match { .. }
        ));
    }

    #[test]
    fn unenroll() {
        let mut d = ScannerDevice::default();
        d.enroll("fp", 1.0);
        assert!(d.unenroll("fp"));
        assert!(!d.unenroll("fp"));
        assert_eq!(d.scan("fp", 1.0), ScanOutcome::NoMatch);
    }
}
