//! The ACE User Database service — AUD (§4.7, Fig. 12).
//!
//! "An ACE interface to a database of valid ACE users and their pertinent
//! information": username, password, full name, identification numbers
//! (fingerprint template, iButton serial), and public key.  The AUD also
//! tracks each user's *current location*, updated by the ID Monitor as
//! users identify themselves around the building (Scenario 2).

use ace_core::prelude::*;
use ace_security::hash::fnv64;
use std::collections::HashMap;

/// One registered ACE user.
#[derive(Debug, Clone, PartialEq)]
pub struct UserRecord {
    pub username: String,
    pub fullname: String,
    /// Salted hash of the password (never the password itself).
    pub password_hash: u64,
    /// Principal string of the user's public key.
    pub public_key: String,
    /// Enrolled fingerprint template id, if any.
    pub fingerprint: Option<String>,
    /// iButton serial number, if any.
    pub ibutton: Option<String>,
    /// Last place the user identified (room, access host).
    pub location: Option<(String, String)>,
}

/// Hash a password with the username as salt.
pub fn password_hash(username: &str, password: &str) -> u64 {
    fnv64(format!("aud:{username}:{password}").as_bytes())
}

/// The AUD behavior.
#[derive(Default)]
pub struct UserDb {
    users: HashMap<String, UserRecord>,
    by_fingerprint: HashMap<String, String>,
    by_ibutton: HashMap<String, String>,
}

impl UserDb {
    pub fn new() -> UserDb {
        UserDb::default()
    }
}

fn user_reply(user: &UserRecord) -> Reply {
    let (room, host) = user
        .location
        .clone()
        .unwrap_or_else(|| (String::new(), String::new()));
    let fingerprint = user.fingerprint.clone().unwrap_or_default();
    let ibutton = user.ibutton.clone().unwrap_or_default();
    Reply::ok_with(move |c| {
        c.arg("username", user.username.as_str())
            .arg("fullname", Value::Str(user.fullname.clone()))
            .arg("publicKey", Value::Str(user.public_key.clone()))
            .arg("fingerprint", Value::Str(fingerprint))
            .arg("ibutton", Value::Str(ibutton))
            .arg("room", Value::Str(room))
            .arg("host", Value::Str(host))
    })
}

impl ServiceBehavior for UserDb {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("addUser", "register a new ACE user")
                    .required("username", ArgType::Word, "unique login name")
                    .required("fullname", ArgType::Str, "display name")
                    .required("password", ArgType::Str, "initial password")
                    .required("publicKey", ArgType::Str, "user's public-key principal")
                    .optional("fingerprint", ArgType::Str, "fingerprint template id")
                    .optional("ibutton", ArgType::Str, "iButton serial number"),
            )
            .with(CmdSpec::new("getUser", "fetch a user record").required(
                "username",
                ArgType::Word,
                "login name",
            ))
            .with(CmdSpec::new("removeUser", "delete a user record").required(
                "username",
                ArgType::Word,
                "login name",
            ))
            .with(
                CmdSpec::new("checkPassword", "verify a password")
                    .required("username", ArgType::Word, "login name")
                    .required("password", ArgType::Str, "candidate password"),
            )
            .with(
                CmdSpec::new("setLocation", "record where a user identified")
                    .required("username", ArgType::Word, "login name")
                    .required("room", ArgType::Word, "room of identification")
                    .required("host", ArgType::Word, "access host"),
            )
            .with(
                CmdSpec::new("getLocation", "last known user location").required(
                    "username",
                    ArgType::Word,
                    "login name",
                ),
            )
            .with(
                CmdSpec::new("findByFingerprint", "user owning a template").required(
                    "template",
                    ArgType::Str,
                    "fingerprint template id",
                ),
            )
            .with(
                CmdSpec::new("findByIButton", "user owning a serial").required(
                    "serial",
                    ArgType::Str,
                    "iButton serial number",
                ),
            )
            .with(CmdSpec::new("listUsers", "all usernames"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "addUser" => {
                let username = req_text!(cmd, "username").to_string();
                if self.users.contains_key(&username) {
                    return Reply::err(
                        ErrorCode::BadState,
                        format!("user {username} already exists"),
                    );
                }
                let record = UserRecord {
                    username: username.clone(),
                    fullname: req_text!(cmd, "fullname").to_string(),
                    password_hash: password_hash(&username, req_text!(cmd, "password")),
                    public_key: req_text!(cmd, "publicKey").to_string(),
                    fingerprint: cmd.get_text("fingerprint").map(str::to_string),
                    ibutton: cmd.get_text("ibutton").map(str::to_string),
                    location: None,
                };
                if let Some(fp) = &record.fingerprint {
                    self.by_fingerprint.insert(fp.clone(), username.clone());
                }
                if let Some(ib) = &record.ibutton {
                    self.by_ibutton.insert(ib.clone(), username.clone());
                }
                self.users.insert(username.clone(), record);
                ctx.log("info", format!("user {username} registered"));
                // Scenario 1: the workspace server watches `userAdded` to
                // provision a default workspace for every new user.
                ctx.fire_event(CmdLine::new("userAdded").arg("username", username.as_str()));
                Reply::ok()
            }
            "getUser" => {
                let username = req_text!(cmd, "username");
                match self.users.get(username) {
                    Some(user) => user_reply(user),
                    None => Reply::err(ErrorCode::NotFound, format!("no user {username}")),
                }
            }
            "removeUser" => {
                let username = req_text!(cmd, "username");
                match self.users.remove(username) {
                    Some(record) => {
                        if let Some(fp) = &record.fingerprint {
                            self.by_fingerprint.remove(fp);
                        }
                        if let Some(ib) = &record.ibutton {
                            self.by_ibutton.remove(ib);
                        }
                        Reply::ok()
                    }
                    None => Reply::err(ErrorCode::NotFound, format!("no user {username}")),
                }
            }
            "checkPassword" => {
                let username = req_text!(cmd, "username");
                let password = req_text!(cmd, "password");
                match self.users.get(username) {
                    Some(user) if user.password_hash == password_hash(username, password) => {
                        Reply::ok()
                    }
                    Some(_) => Reply::err(ErrorCode::Denied, "bad password"),
                    None => Reply::err(ErrorCode::NotFound, format!("no user {username}")),
                }
            }
            "setLocation" => {
                let username = req_text!(cmd, "username");
                let room = req_text!(cmd, "room").to_string();
                let host = req_text!(cmd, "host").to_string();
                match self.users.get_mut(username) {
                    Some(user) => {
                        user.location = Some((room, host));
                        Reply::ok()
                    }
                    None => Reply::err(ErrorCode::NotFound, format!("no user {username}")),
                }
            }
            "getLocation" => {
                let username = req_text!(cmd, "username");
                match self.users.get(username) {
                    Some(user) => match &user.location {
                        Some((room, host)) => Reply::ok_with(|c| {
                            c.arg("room", room.as_str()).arg("host", host.as_str())
                        }),
                        None => Reply::err(ErrorCode::NotFound, "user has no known location"),
                    },
                    None => Reply::err(ErrorCode::NotFound, format!("no user {username}")),
                }
            }
            "findByFingerprint" => {
                let template = req_text!(cmd, "template");
                match self.by_fingerprint.get(template) {
                    Some(username) => Reply::ok_with(|c| c.arg("username", username.as_str())),
                    None => Reply::err(ErrorCode::NotFound, "unknown fingerprint"),
                }
            }
            "findByIButton" => {
                let serial = req_text!(cmd, "serial");
                match self.by_ibutton.get(serial) {
                    Some(username) => Reply::ok_with(|c| c.arg("username", username.as_str())),
                    None => Reply::err(ErrorCode::NotFound, "unknown iButton"),
                }
            }
            "listUsers" => {
                let mut names: Vec<Scalar> =
                    self.users.keys().map(|n| Scalar::Str(n.clone())).collect();
                names.sort_by(|a, b| match (a, b) {
                    (Scalar::Str(x), Scalar::Str(y)) => x.cmp(y),
                    _ => std::cmp::Ordering::Equal,
                });
                Reply::ok_with(|c| c.arg("users", Value::Vector(names)))
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// Typed client for the AUD.
pub struct UserDbClient {
    client: ServiceClient,
}

/// Decoded user fields from a `getUser` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserInfo {
    pub username: String,
    pub fullname: String,
    pub public_key: String,
    pub fingerprint: Option<String>,
    pub ibutton: Option<String>,
    pub location: Option<(String, String)>,
}

impl UserDbClient {
    pub fn connect(
        net: &SimNet,
        from_host: &HostId,
        aud: Addr,
        identity: &ace_security::keys::KeyPair,
    ) -> Result<UserDbClient, ClientError> {
        Ok(UserDbClient {
            client: ServiceClient::connect(net, from_host, aud, identity)?,
        })
    }

    /// Register a user.
    #[allow(clippy::too_many_arguments)]
    pub fn add_user(
        &mut self,
        username: &str,
        fullname: &str,
        password: &str,
        public_key: &str,
        fingerprint: Option<&str>,
        ibutton: Option<&str>,
    ) -> Result<(), ClientError> {
        let mut cmd = CmdLine::new("addUser")
            .arg("username", username)
            .arg("fullname", Value::Str(fullname.into()))
            .arg("password", Value::Str(password.into()))
            .arg("publicKey", Value::Str(public_key.into()));
        if let Some(fp) = fingerprint {
            cmd.push_arg("fingerprint", Value::Str(fp.into()));
        }
        if let Some(ib) = ibutton {
            cmd.push_arg("ibutton", Value::Str(ib.into()));
        }
        self.client.call_ok(&cmd)
    }

    /// Fetch a user record.
    pub fn get_user(&mut self, username: &str) -> Result<UserInfo, ClientError> {
        let r = self
            .client
            .call(&CmdLine::new("getUser").arg("username", username))?;
        let opt = |v: Option<&str>| v.filter(|s| !s.is_empty()).map(str::to_string);
        let room = opt(r.get_text("room"));
        let host = opt(r.get_text("host"));
        Ok(UserInfo {
            username: r.get_text("username").unwrap_or(username).to_string(),
            fullname: r.get_text("fullname").unwrap_or("").to_string(),
            public_key: r.get_text("publicKey").unwrap_or("").to_string(),
            fingerprint: opt(r.get_text("fingerprint")),
            ibutton: opt(r.get_text("ibutton")),
            location: room.zip(host),
        })
    }

    /// Does the password match?
    pub fn check_password(&mut self, username: &str, password: &str) -> Result<bool, ClientError> {
        match self.client.call_ok(
            &CmdLine::new("checkPassword")
                .arg("username", username)
                .arg("password", Value::Str(password.into())),
        ) {
            Ok(()) => Ok(true),
            Err(ClientError::Service {
                code: ErrorCode::Denied,
                ..
            }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Record a user's location.
    pub fn set_location(
        &mut self,
        username: &str,
        room: &str,
        host: &str,
    ) -> Result<(), ClientError> {
        self.client.call_ok(
            &CmdLine::new("setLocation")
                .arg("username", username)
                .arg("room", room)
                .arg("host", host),
        )
    }

    /// Last known `(room, host)`.
    pub fn get_location(
        &mut self,
        username: &str,
    ) -> Result<Option<(String, String)>, ClientError> {
        match self
            .client
            .call(&CmdLine::new("getLocation").arg("username", username))
        {
            Ok(r) => Ok(Some((
                r.get_text("room").unwrap_or("").to_string(),
                r.get_text("host").unwrap_or("").to_string(),
            ))),
            Err(ClientError::Service {
                code: ErrorCode::NotFound,
                ..
            }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Owner of a fingerprint template.
    pub fn find_by_fingerprint(&mut self, template: &str) -> Result<Option<String>, ClientError> {
        match self
            .client
            .call(&CmdLine::new("findByFingerprint").arg("template", Value::Str(template.into())))
        {
            Ok(r) => Ok(r.get_text("username").map(str::to_string)),
            Err(ClientError::Service {
                code: ErrorCode::NotFound,
                ..
            }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Owner of an iButton serial.
    pub fn find_by_ibutton(&mut self, serial: &str) -> Result<Option<String>, ClientError> {
        match self
            .client
            .call(&CmdLine::new("findByIButton").arg("serial", Value::Str(serial.into())))
        {
            Ok(r) => Ok(r.get_text("username").map(str::to_string)),
            Err(ClientError::Service {
                code: ErrorCode::NotFound,
                ..
            }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// All usernames.
    pub fn list_users(&mut self) -> Result<Vec<String>, ClientError> {
        let r = self.client.call(&CmdLine::new("listUsers"))?;
        Ok(r.get_vector("users")
            .map(|v| {
                v.iter()
                    .filter_map(|s| s.as_text().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default())
    }

    /// The raw client (for notifications).
    pub fn raw(&mut self) -> &mut ServiceClient {
        &mut self.client
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn password_hash_is_salted() {
        assert_ne!(
            password_hash("alice", "secret"),
            password_hash("bob", "secret")
        );
        assert_eq!(
            password_hash("alice", "secret"),
            password_hash("alice", "secret")
        );
    }
}
