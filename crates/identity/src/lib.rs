//! # ace-identity — user registration, identification, and authorization
//!
//! The services of §4.6–§4.10 that give ACE its "who is this, and what may
//! they do" capabilities:
//!
//! * [`UserDb`] (AUD) — the user database: accounts, credentials-of-record,
//!   identification numbers, current location (Fig. 12);
//! * [`AuthDb`] — the authorization database: signed KeyNote credentials,
//!   indexed by licensee, fetched per command in the Fig. 10 flow
//!   ([`RemoteCredentials`] plugs it into any daemon's authorizer);
//! * [`Fiu`] — the fingerprint identification unit with its simulated
//!   scanner hardware ([`ScannerDevice`]);
//! * [`IButtonReader`] — the iButton serial-number reader;
//! * [`IdMonitor`] — receives identification notifications, updates the
//!   AUD, and re-fires `userAt` for the workspace machinery (Scenario 2).

pub mod aud;
pub mod authdb;
pub mod fiu;
pub mod ibutton;
pub mod idmonitor;

pub use aud::{password_hash, UserDb, UserDbClient, UserInfo, UserRecord};
pub use authdb::{AuthDb, AuthDbClient, RemoteCredentials};
pub use fiu::{Fiu, ScanOutcome, ScannerDevice};
pub use ibutton::IButtonReader;
pub use idmonitor::IdMonitor;
