//! The ACE Authorization Database service (§4.10, Fig. 10).
//!
//! "A database interface service that stores user and client service
//! authorization assertions … utilized by ACE services to lookup certificate
//! assertions for users and other services attempting to execute specific
//! commands.  These assertions are passed onto KeyNote."
//!
//! Credentials are stored (and indexed by every licensee principal they
//! mention) as their canonical text, hex-encoded on the wire because the
//! command grammar cannot carry multi-line strings.

use ace_core::prelude::*;
use ace_core::protocol::{hex_decode, hex_encode};
use ace_core::CredentialSource;
use ace_security::keynote::{ActionEnv, Assertion};
use parking_lot::Mutex;
use std::collections::HashMap;

/// The Authorization Database behavior.
#[derive(Default)]
pub struct AuthDb {
    /// id → credential text.
    credentials: HashMap<String, String>,
    /// licensee principal → credential ids mentioning it.
    by_licensee: HashMap<String, Vec<String>>,
}

impl AuthDb {
    pub fn new() -> AuthDb {
        AuthDb::default()
    }
}

impl ServiceBehavior for AuthDb {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("storeCredential", "store a signed KeyNote credential")
                    .required("id", ArgType::Word, "unique credential id")
                    .required("text", ArgType::Word, "hex-encoded credential text"),
            )
            .with(
                CmdSpec::new("fetchCredentials", "credentials naming a licensee").required(
                    "licensee",
                    ArgType::Str,
                    "principal to fetch for",
                ),
            )
            .with(
                CmdSpec::new("removeCredential", "delete a credential").required(
                    "id",
                    ArgType::Word,
                    "credential id",
                ),
            )
            .with(CmdSpec::new("listCredentials", "all credential ids"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "storeCredential" => {
                let id = req_text!(cmd, "id").to_string();
                let Some(bytes) = hex_decode(req_text!(cmd, "text")) else {
                    return Reply::err(ErrorCode::Semantics, "text is not valid hex");
                };
                let Ok(text) = String::from_utf8(bytes) else {
                    return Reply::err(ErrorCode::Semantics, "credential is not UTF-8");
                };
                // Validate structure *and* signature at the door: the DB
                // never serves forged credentials.
                let assertion = match Assertion::parse(&text) {
                    Ok(a) => a,
                    Err(e) => return Reply::err(ErrorCode::Semantics, e.to_string()),
                };
                if let Err(e) = assertion.verify() {
                    ctx.log("security", format!("rejected credential {id}: {e}"));
                    return Reply::err(ErrorCode::Denied, e.to_string());
                }
                if self.credentials.contains_key(&id) {
                    return Reply::err(ErrorCode::BadState, format!("id {id} already stored"));
                }
                for principal in assertion.licensees.principals() {
                    self.by_licensee
                        .entry(principal.to_string())
                        .or_default()
                        .push(id.clone());
                }
                self.credentials.insert(id, text);
                Reply::ok()
            }
            "fetchCredentials" => {
                let licensee = req_text!(cmd, "licensee");
                let ids = self.by_licensee.get(licensee).cloned().unwrap_or_default();
                let texts: Vec<Scalar> = ids
                    .iter()
                    .filter_map(|id| self.credentials.get(id))
                    .map(|text| Scalar::Word(hex_encode(text.as_bytes())))
                    .collect();
                Reply::ok_with(|c| {
                    c.arg("count", texts.len() as i64)
                        .arg("credentials", Value::Vector(texts))
                })
            }
            "removeCredential" => {
                let id = req_text!(cmd, "id");
                if self.credentials.remove(id).is_some() {
                    for ids in self.by_licensee.values_mut() {
                        ids.retain(|i| i != id);
                    }
                    Reply::ok()
                } else {
                    Reply::err(ErrorCode::NotFound, format!("no credential {id}"))
                }
            }
            "listCredentials" => {
                let mut ids: Vec<Scalar> = self
                    .credentials
                    .keys()
                    .map(|id| Scalar::Str(id.clone()))
                    .collect();
                ids.sort_by(|a, b| match (a, b) {
                    (Scalar::Str(x), Scalar::Str(y)) => x.cmp(y),
                    _ => std::cmp::Ordering::Equal,
                });
                Reply::ok_with(|c| c.arg("ids", Value::Vector(ids)))
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// Typed client for the Authorization Database.
pub struct AuthDbClient {
    client: ServiceClient,
}

impl AuthDbClient {
    pub fn connect(
        net: &SimNet,
        from_host: &HostId,
        authdb: Addr,
        identity: &ace_security::keys::KeyPair,
    ) -> Result<AuthDbClient, ClientError> {
        Ok(AuthDbClient {
            client: ServiceClient::connect(net, from_host, authdb, identity)?,
        })
    }

    /// Store a signed credential under `id`.
    pub fn store(&mut self, id: &str, credential: &Assertion) -> Result<(), ClientError> {
        self.client.call_ok(
            &CmdLine::new("storeCredential")
                .arg("id", id)
                .arg("text", hex_encode(credential.to_text().as_bytes())),
        )
    }

    /// Fetch all credentials naming `licensee`.
    pub fn fetch_for(&mut self, licensee: &str) -> Result<Vec<Assertion>, ClientError> {
        let reply = self
            .client
            .call(&CmdLine::new("fetchCredentials").arg("licensee", Value::Str(licensee.into())))?;
        let mut out = Vec::new();
        if let Some(texts) = reply.get_vector("credentials") {
            for scalar in texts {
                let Some(hex) = scalar.as_text() else {
                    continue;
                };
                let Some(bytes) = hex_decode(hex) else {
                    continue;
                };
                let Ok(text) = String::from_utf8(bytes) else {
                    continue;
                };
                if let Ok(a) = Assertion::parse(&text) {
                    out.push(a);
                }
            }
        }
        Ok(out)
    }

    /// Delete a credential.
    pub fn remove(&mut self, id: &str) -> Result<(), ClientError> {
        self.client
            .call_ok(&CmdLine::new("removeCredential").arg("id", id))
    }

    /// All credential ids.
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        let reply = self.client.call(&CmdLine::new("listCredentials"))?;
        Ok(reply
            .get_vector("ids")
            .map(|v| {
                v.iter()
                    .filter_map(|s| s.as_text().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default())
    }
}

/// A [`CredentialSource`] backed by a remote Authorization Database — the
/// exact Fig. 10 flow: for each command, the guarded service fetches the
/// requester's credentials from the AuthDB and hands them to KeyNote.
pub struct RemoteCredentials {
    net: SimNet,
    from_host: HostId,
    authdb: Addr,
    identity: ace_security::keys::KeyPair,
    client: Mutex<Option<AuthDbClient>>,
}

impl RemoteCredentials {
    pub fn new(
        net: SimNet,
        from_host: HostId,
        authdb: Addr,
        identity: ace_security::keys::KeyPair,
    ) -> RemoteCredentials {
        RemoteCredentials {
            net,
            from_host,
            authdb,
            identity,
            client: Mutex::new(None),
        }
    }
}

impl CredentialSource for RemoteCredentials {
    fn credentials_for(&self, principal: &str, _env: &ActionEnv) -> Vec<Assertion> {
        let mut guard = self.client.lock();
        for _attempt in 0..2 {
            if guard.is_none() {
                *guard = AuthDbClient::connect(
                    &self.net,
                    &self.from_host,
                    self.authdb.clone(),
                    &self.identity,
                )
                .ok();
            }
            let Some(client) = guard.as_mut() else {
                return Vec::new(); // AuthDB unreachable → no extra authority
            };
            match client.fetch_for(principal) {
                Ok(creds) => return creds,
                Err(_) => *guard = None, // reconnect once
            }
        }
        Vec::new()
    }
}
