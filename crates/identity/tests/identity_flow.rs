//! Integration tests of the identity tier: user registration, fingerprint
//! and iButton identification, ID-monitor location tracking (Scenario 2),
//! and the Fig. 10 remote-credential authorization flow.

use ace_core::prelude::*;
use ace_directory::{bootstrap, Framework, LoggerClient};
use ace_identity::{
    AuthDb, AuthDbClient, Fiu, IButtonReader, IdMonitor, RemoteCredentials, ScannerDevice, UserDb,
    UserDbClient,
};
use ace_security::keynote::{Assertion, KeyNoteEngine, Licensees, POLICY};
use ace_security::keys::KeyPair;
use std::sync::Arc;
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

struct World {
    net: SimNet,
    fw: Framework,
    aud: DaemonHandle,
}

fn world() -> World {
    let net = SimNet::new();
    for h in ["core", "bar", "tube"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let aud = Daemon::spawn(
        &net,
        fw.service_config("aud", "Service.Database.User", "machineroom", "core", 5200),
        Box::new(UserDb::new()),
    )
    .unwrap();
    World { net, fw, aud }
}

#[test]
fn user_lifecycle() {
    let w = world();
    let me = keypair();
    let john = keypair();
    let mut aud = UserDbClient::connect(&w.net, &"bar".into(), w.aud.addr().clone(), &me).unwrap();

    aud.add_user(
        "jdoe",
        "John Doe",
        "hunter2",
        &john.principal(),
        Some("fp_jdoe"),
        Some("ib_4242"),
    )
    .unwrap();

    let info = aud.get_user("jdoe").unwrap();
    assert_eq!(info.fullname, "John Doe");
    assert_eq!(info.public_key, john.principal());
    assert_eq!(info.fingerprint.as_deref(), Some("fp_jdoe"));
    assert_eq!(info.location, None);

    assert!(aud.check_password("jdoe", "hunter2").unwrap());
    assert!(!aud.check_password("jdoe", "wrong").unwrap());

    assert_eq!(
        aud.find_by_fingerprint("fp_jdoe").unwrap().as_deref(),
        Some("jdoe")
    );
    assert_eq!(
        aud.find_by_ibutton("ib_4242").unwrap().as_deref(),
        Some("jdoe")
    );
    assert_eq!(aud.find_by_fingerprint("fp_ghost").unwrap(), None);

    aud.set_location("jdoe", "hawk", "bar").unwrap();
    assert_eq!(
        aud.get_location("jdoe").unwrap(),
        Some(("hawk".into(), "bar".into()))
    );

    // Duplicate registration rejected.
    let err = aud
        .add_user("jdoe", "John Doe II", "x", "k", None, None)
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::BadState));

    assert_eq!(aud.list_users().unwrap(), vec!["jdoe".to_string()]);

    w.aud.shutdown();
    w.fw.shutdown();
}

/// The full Scenario 2 chain: press → FIU match → AUD lookup → notification
/// → ID Monitor → AUD location update.
#[test]
fn scenario2_fingerprint_identification_updates_location() {
    let w = world();
    let me = keypair();
    let john = keypair();

    // FIU scanner in the conference room "hawk" on host "bar".
    let mut device = ScannerDevice::default();
    device.enroll("fp_jdoe", 0.95);
    let fiu = Daemon::spawn(
        &w.net,
        w.fw.service_config("fiu_hawk", "Service.Device.FIU", "hawk", "bar", 5300),
        Box::new(Fiu::new(device)),
    )
    .unwrap();

    let monitor = Daemon::spawn(
        &w.net,
        w.fw.service_config(
            "idmonitor",
            "Service.IDMonitor",
            "machineroom",
            "core",
            5301,
        ),
        Box::new(IdMonitor::new()),
    )
    .unwrap();
    IdMonitor::subscribe_to_devices(&w.net, &monitor, &[&fiu], &me).unwrap();

    let mut aud = UserDbClient::connect(&w.net, &"bar".into(), w.aud.addr().clone(), &me).unwrap();
    aud.add_user(
        "jdoe",
        "John Doe",
        "pw",
        &john.principal(),
        Some("fp_jdoe"),
        None,
    )
    .unwrap();

    // John presses his thumb to the scanner at the podium.
    let mut scanner =
        ServiceClient::connect(&w.net, &"bar".into(), fiu.addr().clone(), &john).unwrap();
    let reply = scanner
        .call(&CmdLine::new("press").arg("template", Value::Str("fp_jdoe".into())))
        .unwrap();
    assert_eq!(reply.get_bool("identified"), Some(true));
    assert_eq!(reply.get_text("username"), Some("jdoe"));

    // The notification chain is asynchronous; wait for the location update.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if let Some((room, host)) = aud.get_location("jdoe").unwrap() {
            assert_eq!(room, "hawk");
            assert_eq!(host, "bar");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "location never updated"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The monitor remembers the sighting too.
    let mut mon =
        ServiceClient::connect(&w.net, &"bar".into(), monitor.addr().clone(), &me).unwrap();
    let seen = mon
        .call(&CmdLine::new("lastSeen").arg("username", "jdoe"))
        .unwrap();
    assert_eq!(seen.get_text("room"), Some("hawk"));

    monitor.shutdown();
    fiu.shutdown();
    w.aud.shutdown();
    w.fw.shutdown();
}

#[test]
fn failed_identification_reaches_security_log() {
    let w = world();
    let me = keypair();

    let fiu = Daemon::spawn(
        &w.net,
        w.fw.service_config("fiu_hawk", "Service.Device.FIU", "hawk", "bar", 5300),
        Box::new(Fiu::new(ScannerDevice::default())),
    )
    .unwrap();
    let monitor = Daemon::spawn(
        &w.net,
        w.fw.service_config(
            "idmonitor",
            "Service.IDMonitor",
            "machineroom",
            "core",
            5301,
        ),
        Box::new(IdMonitor::new()),
    )
    .unwrap();
    IdMonitor::subscribe_to_devices(&w.net, &monitor, &[&fiu], &me).unwrap();

    // An intruder presses an unenrolled finger.
    let mut scanner =
        ServiceClient::connect(&w.net, &"bar".into(), fiu.addr().clone(), &me).unwrap();
    let reply = scanner
        .call(&CmdLine::new("press").arg("template", Value::Str("fp_mallory".into())))
        .unwrap();
    assert_eq!(reply.get_bool("identified"), Some(false));

    // The attempt lands in the security log (via FIU directly and the
    // monitor's onIdentFailed).
    let mut logger =
        LoggerClient::connect(&w.net, &"core".into(), w.fw.logger_addr.clone(), &me).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let security = logger.tail(20, Some("security")).unwrap();
        if !security.is_empty() {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "no security record");
        std::thread::sleep(Duration::from_millis(20));
    }

    monitor.shutdown();
    fiu.shutdown();
    w.aud.shutdown();
    w.fw.shutdown();
}

#[test]
fn ibutton_identification() {
    let w = world();
    let me = keypair();
    let jane = keypair();

    let reader = Daemon::spawn(
        &w.net,
        w.fw.service_config(
            "ibutton_dove",
            "Service.Device.IButton",
            "dove",
            "tube",
            5310,
        ),
        Box::new(IButtonReader::new()),
    )
    .unwrap();

    let mut aud = UserDbClient::connect(&w.net, &"bar".into(), w.aud.addr().clone(), &me).unwrap();
    aud.add_user(
        "jane",
        "Jane Roe",
        "pw",
        &jane.principal(),
        None,
        Some("ib_777"),
    )
    .unwrap();

    let mut r =
        ServiceClient::connect(&w.net, &"tube".into(), reader.addr().clone(), &jane).unwrap();
    let reply = r
        .call(&CmdLine::new("touch").arg("serial", Value::Str("ib_777".into())))
        .unwrap();
    assert_eq!(reply.get_bool("identified"), Some(true));
    assert_eq!(reply.get_text("username"), Some("jane"));

    let reply = r
        .call(&CmdLine::new("touch").arg("serial", Value::Str("ib_000".into())))
        .unwrap();
    assert_eq!(reply.get_bool("identified"), Some(false));

    reader.shutdown();
    w.aud.shutdown();
    w.fw.shutdown();
}

/// Fig. 10 end-to-end: a guarded service fetches the requester's credentials
/// from the Authorization Database per command.
#[test]
fn remote_credentials_authorize_via_authdb() {
    let w = world();
    let admin = keypair();
    let user = keypair();

    let authdb = Daemon::spawn(
        &w.net,
        w.fw.service_config(
            "authdb",
            "Service.Database.Authorization",
            "machineroom",
            "core",
            5400,
        ),
        Box::new(AuthDb::new()),
    )
    .unwrap();

    // Policy root: admin is fully trusted; the guarded service's own key too.
    let service_key = keypair();
    let mut engine = KeyNoteEngine::new();
    for trusted in [&admin, &service_key] {
        engine
            .add_policy(
                Assertion::new(POLICY, Licensees::Principal(trusted.principal()), "true").unwrap(),
            )
            .unwrap();
    }
    let source = RemoteCredentials::new(
        w.net.clone(),
        "bar".into(),
        authdb.addr().clone(),
        keypair(),
    );
    let auth = AuthMode::Local(Arc::new(Authorizer::with_source(engine, Arc::new(source))));

    // A counter-like guarded echo service.
    struct Echo;
    impl ServiceBehavior for Echo {
        fn semantics(&self) -> Semantics {
            Semantics::new().with(CmdSpec::new("touchIt", "guarded command"))
        }
        fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
            Reply::ok()
        }
    }
    let guarded = Daemon::spawn(
        &w.net,
        w.fw.service_config("guarded", "Service.Echo", "hawk", "bar", 5401)
            .with_auth(auth)
            .with_identity(service_key),
        Box::new(Echo),
    )
    .unwrap();

    // Before any credential exists, the user is denied.
    let mut as_user =
        ServiceClient::connect(&w.net, &"bar".into(), guarded.addr().clone(), &user).unwrap();
    let err = as_user.call(&CmdLine::new("touchIt")).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Denied));

    // The admin stores a delegation credential in the AuthDB.
    let cred = Assertion::new(
        admin.principal(),
        Licensees::Principal(user.principal()),
        "cmd == \"touchIt\"",
    )
    .unwrap()
    .sign(&admin)
    .unwrap();
    let mut db =
        AuthDbClient::connect(&w.net, &"core".into(), authdb.addr().clone(), &admin).unwrap();
    db.store("grant_user_touch", &cred).unwrap();

    // Now the same command succeeds — the guarded daemon fetched the new
    // credential from the AuthDB (cache was per-decision-key; a *newly
    // allowed* decision key is a cache miss, so no staleness here).
    as_user.call_ok(&CmdLine::new("touchIt")).unwrap();
    // But only that command.
    let err = as_user.call(&CmdLine::new("shutdown")).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Denied));

    guarded.shutdown();
    authdb.shutdown();
    w.aud.shutdown();
    w.fw.shutdown();
}

#[test]
fn authdb_rejects_forged_credentials() {
    let w = world();
    let admin = keypair();
    let user = keypair();

    let authdb = Daemon::spawn(
        &w.net,
        w.fw.service_config(
            "authdb",
            "Service.Database.Authorization",
            "machineroom",
            "core",
            5400,
        ),
        Box::new(AuthDb::new()),
    )
    .unwrap();
    let mut db =
        AuthDbClient::connect(&w.net, &"core".into(), authdb.addr().clone(), &admin).unwrap();

    // Unsigned assertion: rejected at the door.
    let unsigned = Assertion::new(
        admin.principal(),
        Licensees::Principal(user.principal()),
        "true",
    )
    .unwrap();
    let err = db.store("forged", &unsigned).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Denied));
    assert!(db.list().unwrap().is_empty());

    // Valid credential: stored and fetchable by licensee.
    let signed = Assertion::new(
        admin.principal(),
        Licensees::Principal(user.principal()),
        "true",
    )
    .unwrap()
    .sign(&admin)
    .unwrap();
    db.store("good", &signed).unwrap();
    let fetched = db.fetch_for(&user.principal()).unwrap();
    assert_eq!(fetched.len(), 1);
    assert_eq!(fetched[0], signed);
    assert!(db.fetch_for("rsa:nobody:5").unwrap().is_empty());

    // Removal works.
    db.remove("good").unwrap();
    assert!(db.fetch_for(&user.principal()).unwrap().is_empty());

    authdb.shutdown();
    w.aud.shutdown();
    w.fw.shutdown();
}
