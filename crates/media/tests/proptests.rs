//! Property tests on the media kernels: codec round-trips, mixing algebra,
//! tone-codec totality, and echo-cancellation exactness.

use ace_media::codec::{
    convert, rle_decode, rle_encode, ulaw_decode_sample, ulaw_encode_sample, Format,
};
use ace_media::dsp::{
    bytes_to_samples, decode_tones, delay, encode_tones, mix, rms, samples_to_bytes, EchoCanceller,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// RLE decode(encode(x)) == x for arbitrary bytes.
    #[test]
    fn rle_roundtrip(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(rle_decode(&rle_encode(&data)).unwrap(), data);
    }

    /// RLE never inflates by more than 2× and decoding is total on its own
    /// output.
    #[test]
    fn rle_bounded_expansion(data in prop::collection::vec(any::<u8>(), 1..2048)) {
        let encoded = rle_encode(&data);
        prop_assert!(encoded.len() <= data.len() * 2);
    }

    /// RLE decode never panics on arbitrary (possibly invalid) input.
    #[test]
    fn rle_decode_total(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = rle_decode(&data);
    }

    /// µ-law round-trip error is bounded for every sample value.
    #[test]
    fn ulaw_error_bounded(sample in any::<i16>()) {
        let decoded = ulaw_decode_sample(ulaw_encode_sample(sample));
        let err = (decoded as i32 - sample as i32).abs();
        let bound = (sample as i32).abs() / 16 + 140;
        prop_assert!(err <= bound, "sample {sample}: decoded {decoded}");
    }

    /// µ-law is monotone: larger samples never decode below smaller ones.
    #[test]
    fn ulaw_monotone(a in any::<i16>(), b in any::<i16>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let dlo = ulaw_decode_sample(ulaw_encode_sample(lo));
        let dhi = ulaw_decode_sample(ulaw_encode_sample(hi));
        prop_assert!(dlo <= dhi, "{lo}->{dlo} vs {hi}->{dhi}");
    }

    /// Format conversion is total on arbitrary bytes (errors, not panics).
    #[test]
    fn convert_total(
        data in prop::collection::vec(any::<u8>(), 0..512),
        from in 0usize..4,
        to in 0usize..4,
    ) {
        let formats = [Format::Raw, Format::Rle, Format::Pcm16, Format::Ulaw];
        let _ = convert(formats[from], formats[to], &data);
    }

    /// Mixing is commutative.
    #[test]
    fn mix_commutative(
        a in prop::collection::vec(any::<i16>(), 0..256),
        b in prop::collection::vec(any::<i16>(), 0..256),
    ) {
        prop_assert_eq!(mix(&[&a, &b]), mix(&[&b, &a]));
    }

    /// Mixing with silence is the identity (over the common length).
    #[test]
    fn mix_identity(a in prop::collection::vec(any::<i16>(), 0..256)) {
        let silence = vec![0i16; a.len()];
        prop_assert_eq!(mix(&[&a, &silence]), a);
    }

    /// Sample serialization round-trips.
    #[test]
    fn samples_bytes_roundtrip(s in prop::collection::vec(any::<i16>(), 0..512)) {
        prop_assert_eq!(bytes_to_samples(&samples_to_bytes(&s)).unwrap(), s);
    }

    /// Tone codec round-trips arbitrary bytes.
    #[test]
    fn tone_codec_roundtrip(data in prop::collection::vec(any::<u8>(), 1..48)) {
        let signal = encode_tones(&data);
        let decoded = decode_tones(&signal);
        prop_assert_eq!(decoded.as_deref(), Some(&data[..]));
    }

    /// Tone decoding never panics on arbitrary sample soup.
    #[test]
    fn tone_decode_total(signal in prop::collection::vec(any::<i16>(), 0..1000)) {
        let _ = decode_tones(&signal);
    }

    /// Echo cancellation exactly removes any delayed reference whose sum
    /// with the voice does not saturate.
    #[test]
    fn echo_cancellation_exact(
        voice in prop::collection::vec(-8000i16..8000, 64..512),
        reference in prop::collection::vec(-8000i16..8000, 64..512),
        d in 0usize..64,
    ) {
        let len = voice.len().min(reference.len());
        let voice = &voice[..len];
        let reference = &reference[..len];
        let echoed = delay(reference, d);
        let mic = mix(&[voice, &echoed]);

        let mut ec = EchoCanceller::new(d);
        ec.feed_reference(reference);
        let cleaned = ec.cancel(&mic, 0);

        let residual: Vec<i16> = cleaned
            .iter()
            .zip(voice.iter())
            .map(|(&c, &v)| c.saturating_sub(v))
            .collect();
        prop_assert!(rms(&residual) < 1e-9, "residual {}", rms(&residual));
    }
}
