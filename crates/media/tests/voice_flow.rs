//! End-to-end voice control: a spoken sentence travels the audio plane
//! (TTS → speech-to-command), is recognized, and actually moves a device —
//! §7.5's "next stage" closed.

use ace_core::prelude::*;
use ace_directory::bootstrap;
use ace_media::{wire_voice_control, SpeechToCommand, TextToSpeech, VoiceControl};
use ace_security::keys::KeyPair;
use std::time::Duration;

/// A minimal camera standing in for `ace-env`'s (no cyclic dev-deps).
struct MiniCamera {
    pan: f64,
}
impl ServiceBehavior for MiniCamera {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(CmdSpec::new("ptzMove", "move").optional("x", ArgType::Float, "pan"))
            .with(CmdSpec::new("ptzStatus", "state"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "ptzMove" => {
                if let Some(x) = cmd.get_f64("x") {
                    self.pan = x;
                }
                Reply::ok()
            }
            "ptzStatus" => Reply::ok_with(|c| c.arg("x", self.pan)),
            _ => Reply::err(ErrorCode::Internal, "unrouted"),
        }
    }
}

#[test]
fn spoken_command_moves_the_camera() {
    let net = SimNet::new();
    for h in ["core", "av", "cam"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());

    let camera = Daemon::spawn(
        &net,
        fw.service_config(
            "camera_hawk",
            "Service.Device.PTZCamera",
            "hawk",
            "cam",
            6000,
        ),
        Box::new(MiniCamera { pan: 0.0 }),
    )
    .unwrap();
    let stc = Daemon::spawn(
        &net,
        fw.service_config("stc", "Service.SpeechToCommand", "hawk", "av", 6001),
        Box::new(SpeechToCommand::new()),
    )
    .unwrap();
    let tts = Daemon::spawn(
        &net,
        fw.service_config("tts", "Service.TextToSpeech", "hawk", "av", 6002),
        Box::new(TextToSpeech::new()),
    )
    .unwrap();
    let voice = Daemon::spawn(
        &net,
        fw.service_config("voice", "Service.VoiceControl", "hawk", "core", 6003),
        Box::new(VoiceControl::new()),
    )
    .unwrap();

    // Wiring: TTS → STC (audio), STC → voice control (events).
    let mut tts_client =
        ServiceClient::connect(&net, &"core".into(), tts.addr().clone(), &me).unwrap();
    tts_client
        .call_ok(
            &CmdLine::new("addSink")
                .arg("host", stc.addr().host.as_str())
                .arg("port", stc.addr().port),
        )
        .unwrap();
    wire_voice_control(&net, &voice, &stc, &me).unwrap();

    // Say it.  The text is modulated to tones, demodulated by STC,
    // recognized as a command, routed through the ASD, and executed.
    tts_client
        .call(&CmdLine::new("say").arg(
            "text",
            Value::Str("ptzMove target=camera_hawk x=42;".into()),
        ))
        .unwrap();

    // The camera moved (async notification chain).
    let mut cam = ServiceClient::connect(&net, &"core".into(), camera.addr().clone(), &me).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let status = cam.call(&CmdLine::new("ptzStatus")).unwrap();
        if status.get_f64("x") == Some(42.0) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "camera never moved");
        std::thread::sleep(Duration::from_millis(20));
    }

    // An utterance naming an unknown service fails gracefully.
    tts_client
        .call(&CmdLine::new("say").arg("text", Value::Str("ptzMove target=ghost x=1;".into())))
        .unwrap();
    let mut v = ServiceClient::connect(&net, &"core".into(), voice.addr().clone(), &me).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = v.call(&CmdLine::new("voiceStats")).unwrap();
        if stats.get_int("failed") == Some(1) {
            assert_eq!(stats.get_int("executed"), Some(1));
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "failure never counted"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    for d in [voice, tts, stc, camera] {
        d.shutdown();
    }
    fw.shutdown();
}
