//! Regression tests for the mixer's `pending` slot map: deregistering an
//! input mid-sequence used to strand its partial slots forever, and a
//! silent input let the map grow one slot per frame without bound.

use ace_core::prelude::*;
use ace_media::services::AudioMixer;
use ace_media::Frame;
use ace_security::keys::KeyPair;

fn spawn_mixer(port: u16) -> (SimNet, ace_core::DaemonHandle, ServiceClient) {
    let net = SimNet::new();
    net.add_host("av");
    let daemon = Daemon::spawn(
        &net,
        DaemonConfig::new("mixer", "Service.Media.Mixer", "hawk", "av", port),
        Box::new(AudioMixer::new("out")),
    )
    .unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let client = ServiceClient::connect(&net, &"av".into(), daemon.addr().clone(), &me).unwrap();
    (net, daemon, client)
}

fn push(client: &mut ServiceClient, stream: &str, seq: i64) -> CmdLine {
    let frame = Frame {
        stream: stream.into(),
        seq,
        data: vec![0, 1],
    };
    client
        .call(&frame.to_cmd())
        .unwrap_or_else(|e| panic!("push {stream}/{seq} failed at the link level: {e}"))
}

fn pending(client: &mut ServiceClient) -> (i64, i64, i64) {
    let reply = client.call(&CmdLine::new("mixerStats")).unwrap();
    (
        reply.get_int("pending").unwrap(),
        reply.get_int("mixed").unwrap(),
        reply.get_int("dropped").unwrap(),
    )
}

/// Slots buffered while a now-departed input was registered must not leak:
/// `removeInput` reconciles `pending` and emits what just became complete.
#[test]
fn remove_input_reconciles_pending_slots() {
    let (_net, daemon, mut client) = spawn_mixer(4500);
    for s in ["a", "b"] {
        client
            .call_ok(&CmdLine::new("addInput").arg("stream", s))
            .unwrap();
    }
    // Input `b` goes silent: 10 slots each hold only `a`'s contribution.
    for seq in 0..10 {
        push(&mut client, "a", seq);
    }
    let (pend, mixed, _) = pending(&mut client);
    assert_eq!((pend, mixed), (10, 0), "nothing complete while b is silent");

    // Deregistering `b` must both unblock the 10 buffered slots (they are
    // now complete with `a` alone) and strip `b` from the input set.
    client
        .call_ok(&CmdLine::new("removeInput").arg("stream", "b"))
        .unwrap();
    let (pend, mixed, _) = pending(&mut client);
    assert_eq!(pend, 0, "partial slots stranded after removeInput");
    assert_eq!(mixed, 10, "newly-complete slots were not emitted");

    // And the map stays clean for subsequent single-input traffic.
    push(&mut client, "a", 10);
    let (pend, mixed, _) = pending(&mut client);
    assert_eq!((pend, mixed), (0, 11));
    daemon.shutdown();
}

/// A slot holding only the departed stream's contribution is dropped, not
/// kept as an empty husk that would complete instantly with zero parts.
#[test]
fn remove_input_drops_slots_owned_by_departed_stream() {
    let (_net, daemon, mut client) = spawn_mixer(4501);
    for s in ["a", "b"] {
        client
            .call_ok(&CmdLine::new("addInput").arg("stream", s))
            .unwrap();
    }
    push(&mut client, "b", 0);
    client
        .call_ok(&CmdLine::new("removeInput").arg("stream", "b"))
        .unwrap();
    let (pend, mixed, _) = pending(&mut client);
    assert_eq!((pend, mixed), (0, 0), "b-only slot should vanish, not mix");
    daemon.shutdown();
}

/// A silent input must not let `pending` grow without bound: the map stays
/// within its cap and the evictions are counted, never silent.
#[test]
fn silent_input_keeps_pending_bounded() {
    let (_net, daemon, mut client) = spawn_mixer(4502);
    for s in ["live", "silent"] {
        client
            .call_ok(&CmdLine::new("addInput").arg("stream", s))
            .unwrap();
    }
    const FRAMES: i64 = 200;
    for seq in 0..FRAMES {
        push(&mut client, "live", seq);
    }
    let (pend, mixed, dropped) = pending(&mut client);
    assert!(pend <= 64, "pending grew without bound: {pend}");
    assert_eq!(mixed, 0);
    assert!(
        dropped >= FRAMES - 64,
        "evictions not accounted: dropped={dropped}"
    );
    // The retained slots are the newest ones: a late arrival on the silent
    // stream still completes the most recent sequence number.
    push(&mut client, "silent", FRAMES - 1);
    let (_, mixed, _) = pending(&mut client);
    assert_eq!(mixed, 1, "newest slot was evicted instead of the oldest");
    daemon.shutdown();
}

/// Frames older than everything buffered are refused while at the cap —
/// accepting them would evict newer (more completable) work.
#[test]
fn at_cap_stale_frame_is_refused_not_swapped_in() {
    let (_net, daemon, mut client) = spawn_mixer(4503);
    for s in ["live", "silent"] {
        client
            .call_ok(&CmdLine::new("addInput").arg("stream", s))
            .unwrap();
    }
    // Fill to the cap with seqs 100..164.
    for seq in 100..164 {
        push(&mut client, "live", seq);
    }
    let (pend, _, dropped_before) = pending(&mut client);
    assert_eq!(pend, 64);
    // A frame older than every buffered slot is dropped on arrival.
    let reply = push(&mut client, "live", 1);
    assert_eq!(reply.get_int("delivered"), Some(0));
    let (pend, _, dropped) = pending(&mut client);
    assert_eq!(pend, 64);
    assert_eq!(dropped, dropped_before + 1);
    daemon.shutdown();
}
