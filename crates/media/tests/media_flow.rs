//! Integration tests of the media tier: the Fig. 13 conversion pipeline,
//! Fig. 14 distribution fan-out, and the Fig. 15 audio-conferencing graph
//! with echo cancellation and voice commanding (experiment E13's substrate).

use ace_core::prelude::*;
use ace_core::protocol::hex_encode;
use ace_directory::{bootstrap, Framework};
use ace_media::dsp::{self, SYMBOL_SAMPLES};
use ace_media::{
    AudioMixer, AudioSink, Converter, Distribution, EchoCancel, Format, SpeechToCommand,
    TextToSpeech,
};
use ace_security::keys::KeyPair;
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

struct World {
    net: SimNet,
    fw: Framework,
    daemons: Vec<DaemonHandle>,
}

fn world() -> World {
    let net = SimNet::new();
    net.add_host("core");
    net.add_host("media");
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    World {
        net,
        fw,
        daemons: Vec::new(),
    }
}

impl World {
    fn spawn(
        &mut self,
        name: &str,
        behavior: Box<dyn ace_core::ServiceBehavior>,
        port: u16,
    ) -> Addr {
        let d = Daemon::spawn(
            &self.net,
            self.fw
                .service_config(name, "Service.Media", "hawk", "media", port),
            behavior,
        )
        .unwrap();
        let addr = d.addr().clone();
        self.daemons.push(d);
        addr
    }

    fn client(&self, addr: &Addr, id: &KeyPair) -> ServiceClient {
        ServiceClient::connect(&self.net, &"core".into(), addr.clone(), id).unwrap()
    }

    fn teardown(self) {
        for d in self.daemons.into_iter().rev() {
            d.shutdown();
        }
        self.fw.shutdown();
    }
}

fn add_sink(client: &mut ServiceClient, sink: &Addr) {
    client
        .call_ok(
            &CmdLine::new("addSink")
                .arg("host", sink.host.as_str())
                .arg("port", sink.port),
        )
        .unwrap();
}

fn push(client: &mut ServiceClient, stream: &str, seq: i64, samples: &[i16]) {
    client
        .call(
            &CmdLine::new("push")
                .arg("stream", stream)
                .arg("seq", seq)
                .arg("data", hex_encode(&dsp::samples_to_bytes(samples))),
        )
        .unwrap();
}

/// Fig. 13: video capture → converter → file storage, with real
/// compression on the way.
#[test]
fn converter_pipeline_compresses_video() {
    let mut w = world();
    let me = keypair();
    let storage = w.spawn("storage", Box::new(AudioSink::new()), 6000);
    let converter = w.spawn(
        "converter",
        Box::new(Converter::new(Format::Raw, Format::Rle)),
        6001,
    );

    let mut conv = w.client(&converter, &me);
    add_sink(&mut conv, &storage);

    // A flat camera frame compresses massively under RLE.
    let frame = vec![0x55u8; 320 * 240 / 64]; // scaled down for wire practicality
    let reply = conv
        .call(
            &CmdLine::new("push")
                .arg("stream", "cam")
                .arg("seq", 0)
                .arg("data", hex_encode(&frame)),
        )
        .unwrap();
    assert_eq!(reply.get_int("delivered"), Some(1));
    let out_bytes = reply.get_int("bytes").unwrap();
    assert!(
        out_bytes < frame.len() as i64 / 10,
        "compressed to {out_bytes}"
    );

    let stats = conv.call(&CmdLine::new("convertStats")).unwrap();
    assert_eq!(stats.get_int("bytesIn"), Some(frame.len() as i64));
    assert_eq!(stats.get_int("bytesOut"), Some(out_bytes));

    w.teardown();
}

#[test]
fn converter_ulaw_halves_audio_bytes() {
    let mut w = world();
    let me = keypair();
    let sink = w.spawn("sink", Box::new(AudioSink::new()), 6000);
    let converter = w.spawn(
        "a_conv",
        Box::new(Converter::new(Format::Pcm16, Format::Ulaw)),
        6001,
    );
    let mut conv = w.client(&converter, &me);
    add_sink(&mut conv, &sink);

    let signal = dsp::sine(800.0, 0.5, 320, 0.0);
    let pcm = dsp::samples_to_bytes(&signal);
    let reply = conv
        .call(
            &CmdLine::new("push")
                .arg("stream", "audio")
                .arg("seq", 0)
                .arg("data", hex_encode(&pcm)),
        )
        .unwrap();
    assert_eq!(reply.get_int("bytes"), Some(pcm.len() as i64 / 2));
    w.teardown();
}

/// Fig. 14: one source fanned out to several receiving services.
#[test]
fn distribution_fans_out() {
    let mut w = world();
    let me = keypair();
    let sinks: Vec<Addr> = (0..3)
        .map(|i| w.spawn(&format!("recv{i}"), Box::new(AudioSink::new()), 6000 + i))
        .collect();
    let dist = w.spawn("dist", Box::new(Distribution::new()), 6100);
    let mut d = w.client(&dist, &me);
    for s in &sinks {
        add_sink(&mut d, s);
    }

    let signal = dsp::sine(440.0, 0.4, 160, 0.0);
    for seq in 0..5 {
        push(&mut d, "video", seq, &signal);
    }

    let stats = d.call(&CmdLine::new("distStats")).unwrap();
    assert_eq!(stats.get_int("frames"), Some(5));
    assert_eq!(stats.get_int("deliveries"), Some(15));

    for s in &sinks {
        let mut c = w.client(s, &me);
        let st = c.call(&CmdLine::new("sinkStats")).unwrap();
        assert_eq!(st.get_int("frames"), Some(5));
        assert_eq!(st.get_int("samples"), Some(800));
    }
    w.teardown();
}

#[test]
fn distribution_survives_dead_sink() {
    let mut w = world();
    let me = keypair();
    let alive = w.spawn("alive", Box::new(AudioSink::new()), 6000);
    let dist = w.spawn("dist", Box::new(Distribution::new()), 6100);
    let mut d = w.client(&dist, &me);
    add_sink(&mut d, &alive);
    // A sink that never existed.
    d.call_ok(
        &CmdLine::new("addSink")
            .arg("host", "media")
            .arg("port", 9999),
    )
    .unwrap();

    let signal = dsp::sine(440.0, 0.4, 80, 0.0);
    let reply = d
        .call(
            &CmdLine::new("push")
                .arg("stream", "s")
                .arg("seq", 0)
                .arg("data", hex_encode(&dsp::samples_to_bytes(&signal))),
        )
        .unwrap();
    assert_eq!(
        reply.get_int("delivered"),
        Some(1),
        "healthy sink still served"
    );
    w.teardown();
}

/// The heart of Fig. 15: remote audio plays in the room; the microphone
/// picks up local voice + the speaker's echo; the mixer+echo-cancel chain
/// delivers clean local voice to the recorder.
#[test]
fn fig15_conference_echo_cancellation() {
    let mut w = world();
    let me = keypair();

    const FRAME: usize = 160;
    const DELAY: usize = 40; // acoustic path, in samples
    const FRAMES: usize = 8;

    let recorder = w.spawn("recorder", Box::new(AudioSink::new()), 6000);
    let speaker = w.spawn("speaker", Box::new(AudioSink::new()), 6001);
    let echo = w.spawn("echo", Box::new(EchoCancel::new(DELAY)), 6002);
    let mic_mixer = w.spawn("micmix", Box::new(AudioMixer::new("mic")), 6003);
    let dist = w.spawn("dist", Box::new(Distribution::new()), 6004);

    // Wiring: mic mixer → echo canceller → distribution → recorder.
    let mut mixer = w.client(&mic_mixer, &me);
    mixer
        .call_ok(&CmdLine::new("addInput").arg("stream", "voice"))
        .unwrap();
    mixer
        .call_ok(&CmdLine::new("addInput").arg("stream", "echopath"))
        .unwrap();
    add_sink(&mut mixer, &echo);
    let mut echo_client = w.client(&echo, &me);
    add_sink(&mut echo_client, &dist);
    let mut dist_client = w.client(&dist, &me);
    add_sink(&mut dist_client, &recorder);

    // Signals: local voice at 700 Hz, far-end audio at 1900 Hz.
    let voice = dsp::sine(700.0, 0.3, FRAME * FRAMES, 0.0);
    let far_end = dsp::sine(1900.0, 0.4, FRAME * FRAMES, 1.0);
    let echoed = dsp::delay(&far_end, DELAY);

    let mut speaker_client = w.client(&speaker, &me);
    for seq in 0..FRAMES {
        let range = seq * FRAME..(seq + 1) * FRAME;
        // Far-end audio reaches the speaker and the canceller's reference.
        push(
            &mut speaker_client,
            "fromRemote",
            seq as i64,
            &far_end[range.clone()],
        );
        echo_client
            .call(
                &CmdLine::new("pushRef")
                    .arg("stream", "fromRemote")
                    .arg("seq", seq as i64)
                    .arg(
                        "data",
                        hex_encode(&dsp::samples_to_bytes(&far_end[range.clone()])),
                    ),
            )
            .unwrap();
        // The microphone's two acoustic components.
        push(&mut mixer, "voice", seq as i64, &voice[range.clone()]);
        push(&mut mixer, "echopath", seq as i64, &echoed[range]);
    }

    // The recorder must hear the voice loudly and the far-end barely.
    let mut rec = w.client(&recorder, &me);
    let stats = rec.call(&CmdLine::new("sinkStats")).unwrap();
    assert_eq!(stats.get_int("samples"), Some((FRAME * FRAMES) as i64));
    let p_voice = rec
        .call(&CmdLine::new("sinkPower").arg("freq", 700.0))
        .unwrap()
        .get_f64("power")
        .unwrap();
    let p_far = rec
        .call(&CmdLine::new("sinkPower").arg("freq", 1900.0))
        .unwrap()
        .get_f64("power")
        .unwrap();
    assert!(
        p_voice > 100.0 * p_far,
        "voice power {p_voice} vs residual far-end {p_far}"
    );

    // Control: the speaker heard the raw far-end loudly.
    let p_speaker = speaker_client
        .call(&CmdLine::new("sinkPower").arg("freq", 1900.0))
        .unwrap()
        .get_f64("power")
        .unwrap();
    assert!(p_speaker > 100.0 * p_far);

    w.teardown();
}

/// Fig. 15's command path: text-to-speech output travels the audio plane and
/// is recognized back into an ACE command by speech-to-command.
#[test]
fn tts_to_speech_command_roundtrip() {
    let mut w = world();
    let me = keypair();
    let stc = w.spawn("stc", Box::new(SpeechToCommand::new()), 6000);
    let tts = w.spawn("tts", Box::new(TextToSpeech::new()), 6001);

    let mut tts_client = w.client(&tts, &me);
    add_sink(&mut tts_client, &stc);

    let reply = tts_client
        .call(&CmdLine::new("say").arg("text", Value::Str("ptzMove x=10 y=-3;".into())))
        .unwrap();
    assert_eq!(
        reply.get_int("samples"),
        Some(("ptzMove x=10 y=-3;".len() * 2 * SYMBOL_SAMPLES) as i64)
    );
    assert_eq!(reply.get_int("delivered"), Some(1));

    let mut stc_client = w.client(&stc, &me);
    let stats = stc_client.call(&CmdLine::new("stcStats")).unwrap();
    assert_eq!(stats.get_int("recognized"), Some(1));
    assert_eq!(stats.get_int("rejected"), Some(0));

    // Non-command speech is rejected, not crashed on.
    tts_client
        .call(&CmdLine::new("say").arg("text", Value::Str("just chatting".into())))
        .unwrap();
    let stats = stc_client.call(&CmdLine::new("stcStats")).unwrap();
    assert_eq!(stats.get_int("rejected"), Some(1));

    w.teardown();
}

#[test]
fn mixer_requires_registered_inputs_and_aligns_seqs() {
    let mut w = world();
    let me = keypair();
    let sink = w.spawn("sink", Box::new(AudioSink::new()), 6000);
    let mixer_addr = w.spawn("mix", Box::new(AudioMixer::new("out")), 6001);
    let mut mixer = w.client(&mixer_addr, &me);
    add_sink(&mut mixer, &sink);

    // Unregistered stream rejected.
    let err = mixer
        .call(
            &CmdLine::new("push")
                .arg("stream", "ghost")
                .arg("seq", 0)
                .arg("data", hex_encode(&dsp::samples_to_bytes(&[1, 2]))),
        )
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::BadState));

    mixer
        .call_ok(&CmdLine::new("addInput").arg("stream", "a"))
        .unwrap();
    mixer
        .call_ok(&CmdLine::new("addInput").arg("stream", "b"))
        .unwrap();

    // One input alone does not emit.
    push(&mut mixer, "a", 0, &[100i16; 4]);
    let mut sink_client = w.client(&sink, &me);
    assert_eq!(
        sink_client
            .call(&CmdLine::new("sinkStats"))
            .unwrap()
            .get_int("frames"),
        Some(0)
    );
    // The matching frame completes the set.
    push(&mut mixer, "b", 0, &[23i16; 4]);
    let stats = sink_client.call(&CmdLine::new("sinkStats")).unwrap();
    assert_eq!(stats.get_int("frames"), Some(1));
    assert_eq!(stats.get_int("samples"), Some(4));

    w.teardown();
}
