//! Media formats and conversions for the ACE Converter service (§4.12).
//!
//! The paper's example converts a raw camera stream to MPEG before storage
//! (Fig. 13).  The substitutions here are real codecs of toy sophistication:
//!
//! * `Raw` ⇄ `Rle` — run-length encoding standing in for video
//!   compression (camera frames are flat regions, so RLE genuinely
//!   compresses them, giving E11 a measurable ratio);
//! * `Pcm16` ⇄ `Ulaw` — actual ITU G.711 µ-law companding, halving audio
//!   byte rate exactly as the real codec does.

use std::fmt;

/// Known media formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Uncompressed video bytes.
    Raw,
    /// Run-length compressed video (the "MPEG" substitution).
    Rle,
    /// 16-bit little-endian PCM audio.
    Pcm16,
    /// G.711 µ-law audio (one byte per sample).
    Ulaw,
}

impl Format {
    pub fn from_word(w: &str) -> Option<Format> {
        Some(match w {
            "raw" => Format::Raw,
            "rle" => Format::Rle,
            "pcm16" => Format::Pcm16,
            "ulaw" => Format::Ulaw,
            _ => return None,
        })
    }

    pub fn as_word(&self) -> &'static str {
        match self {
            Format::Raw => "raw",
            Format::Rle => "rle",
            Format::Pcm16 => "pcm16",
            Format::Ulaw => "ulaw",
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_word())
    }
}

/// Conversion failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// No conversion path between the formats.
    Unsupported { from: Format, to: Format },
    /// The input bytes are not valid for the source format.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Unsupported { from, to } => {
                write!(f, "no conversion from {from} to {to}")
            }
            CodecError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}
impl std::error::Error for CodecError {}

/// Convert `data` between formats.  Identity conversions are free.
pub fn convert(from: Format, to: Format, data: &[u8]) -> Result<Vec<u8>, CodecError> {
    match (from, to) {
        (a, b) if a == b => Ok(data.to_vec()),
        (Format::Raw, Format::Rle) => Ok(rle_encode(data)),
        (Format::Rle, Format::Raw) => rle_decode(data),
        (Format::Pcm16, Format::Ulaw) => pcm_to_ulaw(data),
        (Format::Ulaw, Format::Pcm16) => Ok(ulaw_to_pcm(data)),
        (from, to) => Err(CodecError::Unsupported { from, to }),
    }
}

/// Run-length encode: `(count, byte)` pairs, counts 1–255.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    let mut i = 0;
    while i < data.len() {
        let byte = data[i];
        let mut run = 1usize;
        while run < 255 && i + run < data.len() && data[i + run] == byte {
            run += 1;
        }
        out.push(run as u8);
        out.push(byte);
        i += run;
    }
    out
}

/// Decode [`rle_encode`] output.
pub fn rle_decode(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    if !data.len().is_multiple_of(2) {
        return Err(CodecError::Malformed("odd RLE length"));
    }
    let mut out = Vec::with_capacity(data.len() * 4);
    for pair in data.chunks_exact(2) {
        let (count, byte) = (pair[0], pair[1]);
        if count == 0 {
            return Err(CodecError::Malformed("zero run length"));
        }
        out.extend(std::iter::repeat_n(byte, count as usize));
    }
    Ok(out)
}

const ULAW_BIAS: i32 = 0x84;
const ULAW_CLIP: i32 = 32_635;

/// G.711 µ-law compression of one sample.
pub fn ulaw_encode_sample(sample: i16) -> u8 {
    let mut s = sample as i32;
    let sign: u8 = if s < 0 {
        s = -s;
        0x80
    } else {
        0
    };
    if s > ULAW_CLIP {
        s = ULAW_CLIP;
    }
    s += ULAW_BIAS;
    let mut exponent: u8 = 7;
    let mut mask = 0x4000;
    while exponent > 0 && (s & mask) == 0 {
        exponent -= 1;
        mask >>= 1;
    }
    let mantissa = ((s >> (exponent as i32 + 3)) & 0x0f) as u8;
    !(sign | (exponent << 4) | mantissa)
}

/// G.711 µ-law expansion of one byte.
pub fn ulaw_decode_sample(byte: u8) -> i16 {
    let byte = !byte;
    let sign = byte & 0x80;
    let exponent = (byte >> 4) & 0x07;
    let mantissa = byte & 0x0f;
    let mut s = (((mantissa as i32) << 3) + ULAW_BIAS) << exponent as i32;
    s -= ULAW_BIAS;
    if sign != 0 {
        -s as i16
    } else {
        s as i16
    }
}

fn pcm_to_ulaw(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    if !data.len().is_multiple_of(2) {
        return Err(CodecError::Malformed("odd PCM16 length"));
    }
    Ok(data
        .chunks_exact(2)
        .map(|c| ulaw_encode_sample(i16::from_le_bytes([c[0], c[1]])))
        .collect())
}

fn ulaw_to_pcm(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 2);
    for &b in data {
        out.extend_from_slice(&ulaw_decode_sample(b).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsp::{rms, samples_to_bytes, sine};

    #[test]
    fn rle_roundtrip() {
        for data in [&b""[..], b"a", b"aaaaabbbbbcccc", b"abcdef", &[7u8; 1000]] {
            assert_eq!(rle_decode(&rle_encode(data)).unwrap(), data);
        }
    }

    #[test]
    fn rle_compresses_flat_frames() {
        let frame = vec![42u8; 320 * 240];
        let encoded = rle_encode(&frame);
        assert!(encoded.len() < frame.len() / 50, "{} bytes", encoded.len());
    }

    #[test]
    fn rle_decode_rejects_garbage() {
        assert!(rle_decode(&[1]).is_err());
        assert!(rle_decode(&[0, 42]).is_err());
    }

    #[test]
    fn ulaw_single_samples() {
        for s in [-32768i16, -1234, -1, 0, 1, 77, 1234, 32767] {
            let decoded = ulaw_decode_sample(ulaw_encode_sample(s));
            // µ-law is lossy; error is bounded by the segment step size
            // (~3% of magnitude, larger for the top segment).
            let err = (decoded as i32 - s as i32).abs();
            let bound = (s as i32).abs() / 16 + 140;
            assert!(err <= bound, "sample {s}: decoded {decoded}, err {err}");
        }
    }

    #[test]
    fn ulaw_preserves_audio_shape() {
        let signal = sine(800.0, 0.5, 800, 0.0);
        let pcm = samples_to_bytes(&signal);
        let ulaw = convert(Format::Pcm16, Format::Ulaw, &pcm).unwrap();
        assert_eq!(ulaw.len(), pcm.len() / 2, "half the byte rate");
        let back = convert(Format::Ulaw, Format::Pcm16, &ulaw).unwrap();
        let decoded = crate::dsp::bytes_to_samples(&back).unwrap();
        // The companded signal is close: difference RMS well under 1%.
        let diff: Vec<i16> = signal
            .iter()
            .zip(decoded.iter())
            .map(|(&a, &b)| a.saturating_sub(b))
            .collect();
        assert!(rms(&diff) < 0.01, "distortion rms {}", rms(&diff));
    }

    #[test]
    fn identity_and_unsupported() {
        assert_eq!(convert(Format::Raw, Format::Raw, b"x").unwrap(), b"x");
        assert!(matches!(
            convert(Format::Raw, Format::Ulaw, b"x"),
            Err(CodecError::Unsupported { .. })
        ));
    }

    #[test]
    fn format_words() {
        for f in [Format::Raw, Format::Rle, Format::Pcm16, Format::Ulaw] {
            assert_eq!(Format::from_word(f.as_word()), Some(f));
        }
        assert_eq!(Format::from_word("divx"), None);
    }
}
