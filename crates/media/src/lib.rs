//! # ace-media — data conversion, distribution, and the audio graph
//!
//! The §4.12–§4.15 services:
//!
//! * [`Converter`] — format conversion on a stream's way downstream
//!   (Fig. 13), with real toy codecs: RLE "video" and G.711 µ-law audio;
//! * [`Distribution`] — one-to-many stream fan-out (Fig. 14);
//! * the Fig. 15 audio-conferencing nodes: [`AudioCapture`], [`AudioMixer`],
//!   [`EchoCancel`], [`AudioSink`] (play/record), [`TextToSpeech`], and
//!   [`SpeechToCommand`] — all built on the pure DSP kernels in [`dsp`]
//!   (sine synthesis, saturating mixing, delayed-reference echo
//!   cancellation, Goertzel tone demodulation).
//!
//! Frames travel between daemons as `push stream=… seq=… data=<hex>`
//! commands ([`stream`]), so composing a pipeline is just `addSink` wiring —
//! Fig. 4's building blocks.

pub mod capture;
pub mod codec;
pub mod dsp;
pub mod services;
pub mod stream;
pub mod voice;

pub use capture::VideoCapture;
pub use codec::{convert, CodecError, Format};
pub use services::{
    AudioCapture, AudioMixer, AudioSink, Converter, Distribution, EchoCancel, SpeechToCommand,
    TextToSpeech,
};
pub use stream::{Downstream, Frame};
pub use voice::{wire_voice_control, VoiceControl};
