//! Voice control: executing spoken commands (§7.5).
//!
//! "The next stage in development for ACE is to have all the above
//! described commands be given by voice and gestures."  This service closes
//! that loop: it listens for the Speech-to-Command service's `voiceCommand`
//! events, resolves the target service through the ASD, and executes the
//! command — so a sentence spoken into the Fig. 15 audio graph ends up
//! moving the camera.
//!
//! Spoken command form: a regular ACE command carrying the target service
//! as a `target=` argument — e.g. the utterance decoded as
//! `ptzMove target=camera_hawk x=10;` executes `ptzMove x=10;` on the
//! service registered as `camera_hawk`.  (Keeping the utterance a single
//! well-formed command lets the speech-to-command stage validate it in the
//! audio plane before any routing happens.)

use ace_core::prelude::*;

/// The voice-control behavior.
#[derive(Default)]
pub struct VoiceControl {
    executed: u64,
    failed: u64,
    last_result: Option<String>,
}

impl VoiceControl {
    pub fn new() -> VoiceControl {
        VoiceControl::default()
    }

    /// Split a decoded utterance into `(target service, command)`: parse it
    /// as an ACE command, pull the `target=` argument out, and rebuild the
    /// command without it.
    fn split_utterance(text: &str) -> Option<(String, CmdLine)> {
        let spoken = ace_lang::parse(text).ok()?;
        let target = spoken.get_text("target")?.to_string();
        if !ace_lang::value::is_word(&target) {
            return None;
        }
        let mut cmd = CmdLine::new(spoken.name());
        for (name, value) in spoken.args() {
            if name != "target" {
                cmd.push_arg(name.clone(), value.clone());
            }
        }
        Some((target, cmd))
    }
}

impl ServiceBehavior for VoiceControl {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("onVoiceCommand", "notification from speech-to-command")
                    .optional("service", ArgType::Str, "origin")
                    .optional("cmd", ArgType::Str, "origin event")
                    .optional("text", ArgType::Str, "the decoded utterance"),
            )
            .with(CmdSpec::new("voiceStats", "execution counters"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "onVoiceCommand" => {
                let Some(text) = cmd.get_text("text").map(str::to_string) else {
                    return Reply::err(ErrorCode::Semantics, "notification without text");
                };
                let Some((target, spoken)) = Self::split_utterance(&text) else {
                    self.failed += 1;
                    ctx.log("warn", format!("unintelligible voice command: {text}"));
                    return Reply::ok_with(|c| c.arg("executed", false));
                };
                // Fig. 7: find the target through the ASD, then command it.
                let resolved = ctx.lookup_one(&target).ok().flatten();
                let Some(entry) = resolved else {
                    self.failed += 1;
                    ctx.log("warn", format!("voice target `{target}` not registered"));
                    return Reply::ok_with(|c| c.arg("executed", false));
                };
                match ctx.call(&entry.addr, &spoken) {
                    Ok(result) => {
                        self.executed += 1;
                        self.last_result = Some(result.to_wire());
                        ctx.log(
                            "info",
                            format!("voice: executed `{}` on {target}", spoken.name()),
                        );
                        Reply::ok_with(|c| c.arg("executed", true))
                    }
                    Err(e) => {
                        self.failed += 1;
                        ctx.log("warn", format!("voice command failed on {target}: {e}"));
                        Reply::ok_with(|c| c.arg("executed", false))
                    }
                }
            }
            "voiceStats" => {
                let last = self.last_result.clone().unwrap_or_default();
                Reply::ok_with(|c| {
                    c.arg("executed", self.executed as i64)
                        .arg("failed", self.failed as i64)
                        .arg("lastResult", Value::Str(last))
                })
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// Subscribe a voice-control daemon to a speech-to-command daemon's
/// `voiceCommand` events.
pub fn wire_voice_control(
    net: &SimNet,
    voice: &DaemonHandle,
    stc: &DaemonHandle,
    identity: &ace_security::keys::KeyPair,
) -> Result<(), ClientError> {
    let mut client = ServiceClient::connect(net, &voice.addr().host, stc.addr().clone(), identity)?;
    client.call_ok(
        &CmdLine::new("addNotification")
            .arg("cmd", "voiceCommand")
            .arg("service", voice.name())
            .arg("host", voice.addr().host.as_str())
            .arg("port", voice.addr().port)
            .arg("notifyCmd", "onVoiceCommand"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utterance_splitting() {
        let (target, cmd) =
            VoiceControl::split_utterance("ptzMove target=camera_hawk x=10;").unwrap();
        assert_eq!(target, "camera_hawk");
        assert_eq!(cmd.name(), "ptzMove");
        assert_eq!(cmd.get_int("x"), Some(10));
        assert_eq!(cmd.get("target"), None, "target stripped before forwarding");

        // No target argument.
        assert!(VoiceControl::split_utterance("ptzOn;").is_none());
        // Target must be a service name (word).
        assert!(VoiceControl::split_utterance("ptzOn target=\"two words\";").is_none());
        // Not a parseable command at all.
        assert!(VoiceControl::split_utterance("mumble mumble").is_none());
    }
}
