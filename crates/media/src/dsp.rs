//! Signal processing for the ACE media services (§4.15, Fig. 15).
//!
//! The paper's audio pipeline — capture, mixing, echo cancellation,
//! text-to-speech, speech-to-command — is built on these pure functions so
//! each stage is independently property-testable.  Everything operates on
//! 16-bit PCM at [`SAMPLE_RATE`] Hz.
//!
//! The speech pieces are substituted (DESIGN.md) with a *tone codec*: text
//! is modulated as a sequence of tones from a 16-symbol alphabet and
//! demodulated with a Goertzel filter bank — real signal-domain encode/
//! decode, so a TTS→network→speech-to-command round trip genuinely passes
//! through audio samples.

/// Samples per second.
pub const SAMPLE_RATE: u32 = 8000;
/// Samples per tone symbol (10 ms).
pub const SYMBOL_SAMPLES: usize = 80;

/// Generate a sine tone.
pub fn sine(freq: f64, amplitude: f64, len: usize, phase: f64) -> Vec<i16> {
    let w = 2.0 * std::f64::consts::PI * freq / SAMPLE_RATE as f64;
    (0..len)
        .map(|n| {
            let v = amplitude * (w * n as f64 + phase).sin();
            (v * i16::MAX as f64) as i16
        })
        .collect()
}

/// Mix several equal-length signals with saturating addition (the Audio
/// Mixer service's kernel).
pub fn mix(signals: &[&[i16]]) -> Vec<i16> {
    let len = signals.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut out = vec![0i16; len];
    for signal in signals {
        for (o, &s) in out.iter_mut().zip(signal.iter()) {
            *o = o.saturating_add(s);
        }
    }
    out
}

/// Root-mean-square level of a signal, in full-scale units `[0, 1]`.
pub fn rms(signal: &[i16]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    let sum: f64 = signal
        .iter()
        .map(|&s| {
            let v = s as f64 / i16::MAX as f64;
            v * v
        })
        .sum();
    (sum / signal.len() as f64).sqrt()
}

/// Delay a signal by `delay` samples (zero-padded).
pub fn delay(signal: &[i16], delay: usize) -> Vec<i16> {
    let mut out = vec![0i16; signal.len()];
    for (i, &s) in signal.iter().enumerate() {
        if i + delay < out.len() {
            out[i + delay] = s;
        }
    }
    out
}

/// The Echo Cancellation service's kernel: subtract a delayed copy of the
/// reference signal (what the room's speaker played) from the microphone
/// signal.  "Removes redundant audio signals (with an arbitrary amount of
/// delay) from an input audio signal."
#[derive(Debug, Clone)]
pub struct EchoCanceller {
    delay_samples: usize,
    /// Reference history, newest last.
    history: Vec<i16>,
    /// Absolute sample index of `history[0]` in the reference timeline
    /// (advances when old history is trimmed).
    history_base: usize,
}

impl EchoCanceller {
    pub fn new(delay_samples: usize) -> EchoCanceller {
        EchoCanceller {
            delay_samples,
            history: Vec::new(),
            history_base: 0,
        }
    }

    /// Feed the reference signal (the audio being played locally).
    pub fn feed_reference(&mut self, reference: &[i16]) {
        self.history.extend_from_slice(reference);
        // Bound the history to what the delay can ever need, keeping
        // absolute indexing valid via `history_base`.
        let keep = self.delay_samples + 8 * SYMBOL_SAMPLES + reference.len();
        if self.history.len() > 2 * keep {
            let cut = self.history.len() - keep;
            self.history.drain(..cut);
            self.history_base += cut;
        }
    }

    /// Cancel: subtract the reference, delayed, from the microphone input.
    /// `mic_offset` is the absolute sample index of `mic[0]` in the
    /// reference timeline.
    pub fn cancel(&self, mic: &[i16], mic_offset: usize) -> Vec<i16> {
        mic.iter()
            .enumerate()
            .map(|(i, &m)| {
                let r = (mic_offset + i)
                    .checked_sub(self.delay_samples)
                    .and_then(|abs| abs.checked_sub(self.history_base))
                    .and_then(|idx| self.history.get(idx))
                    .copied()
                    .unwrap_or(0);
                m.saturating_sub(r)
            })
            .collect()
    }
}

/// Goertzel power of `freq` in `signal` (normalized by length²).
pub fn goertzel(signal: &[i16], freq: f64) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    let w = 2.0 * std::f64::consts::PI * freq / SAMPLE_RATE as f64;
    let coeff = 2.0 * w.cos();
    let mut s_prev = 0.0f64;
    let mut s_prev2 = 0.0f64;
    for &sample in signal {
        let x = sample as f64 / i16::MAX as f64;
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power = s_prev2 * s_prev2 + s_prev * s_prev - coeff * s_prev * s_prev2;
    power / (signal.len() as f64 * signal.len() as f64 / 4.0)
}

/// The 16-tone alphabet (spaced to stay distinct under Goertzel at
/// [`SYMBOL_SAMPLES`] resolution: 100 Hz bins at 10 ms symbols).
const TONE_ALPHABET: [f64; 16] = [
    600.0, 800.0, 1000.0, 1200.0, 1400.0, 1600.0, 1800.0, 2000.0, 2200.0, 2400.0, 2600.0, 2800.0,
    3000.0, 3200.0, 3400.0, 3600.0,
];

/// Modulate bytes as tone symbols (two symbols per byte, high nibble
/// first).  The Text-to-Speech substitution.
pub fn encode_tones(data: &[u8]) -> Vec<i16> {
    let mut out = Vec::with_capacity(data.len() * 2 * SYMBOL_SAMPLES);
    for &byte in data {
        for nibble in [byte >> 4, byte & 0x0f] {
            out.extend(sine(
                TONE_ALPHABET[nibble as usize],
                0.6,
                SYMBOL_SAMPLES,
                0.0,
            ));
        }
    }
    out
}

/// Demodulate a tone-encoded signal back into bytes (the Speech-to-Command
/// substitution).  Returns `None` when the signal is not a whole number of
/// byte symbols or a symbol is ambiguous/too quiet.
pub fn decode_tones(signal: &[i16]) -> Option<Vec<u8>> {
    if signal.is_empty() || !signal.len().is_multiple_of(2 * SYMBOL_SAMPLES) {
        return None;
    }
    let mut nibbles = Vec::with_capacity(signal.len() / SYMBOL_SAMPLES);
    for symbol in signal.chunks(SYMBOL_SAMPLES) {
        let mut best = 0usize;
        let mut best_power = 0.0f64;
        let mut second = 0.0f64;
        for (i, &freq) in TONE_ALPHABET.iter().enumerate() {
            let p = goertzel(symbol, freq);
            if p > best_power {
                second = best_power;
                best_power = p;
                best = i;
            } else if p > second {
                second = p;
            }
        }
        // Require a clear winner and real energy.
        if best_power < 0.01 || second > best_power * 0.5 {
            return None;
        }
        nibbles.push(best as u8);
    }
    Some(
        nibbles
            .chunks(2)
            .map(|pair| (pair[0] << 4) | pair[1])
            .collect(),
    )
}

/// Serialize PCM samples to little-endian bytes (wire form of audio
/// frames).
pub fn samples_to_bytes(samples: &[i16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * 2);
    for &s in samples {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Deserialize little-endian bytes to PCM samples.
pub fn bytes_to_samples(bytes: &[u8]) -> Option<Vec<i16>> {
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_has_expected_level() {
        let s = sine(1000.0, 0.5, 8000, 0.0);
        let level = rms(&s);
        // RMS of a 0.5-amplitude sine is 0.5/√2 ≈ 0.354.
        assert!((level - 0.3535).abs() < 0.01, "rms {level}");
    }

    #[test]
    fn mix_sums_and_saturates() {
        let a = vec![1000i16; 10];
        let b = vec![2000i16; 10];
        assert_eq!(mix(&[&a, &b]), vec![3000i16; 10]);
        let loud = vec![i16::MAX; 4];
        assert_eq!(mix(&[&loud, &loud]), vec![i16::MAX; 4]);
    }

    #[test]
    fn mix_handles_unequal_lengths() {
        let a = vec![10i16; 4];
        let b = vec![1i16; 2];
        assert_eq!(mix(&[&a, &b]), vec![11, 11, 10, 10]);
    }

    #[test]
    fn echo_cancellation_removes_delayed_reference() {
        let voice = sine(700.0, 0.3, 800, 0.0);
        let far_end = sine(1900.0, 0.4, 800, 1.0);
        let d = 37;

        let mut canceller = EchoCanceller::new(d);
        canceller.feed_reference(&far_end);

        // Microphone hears the local voice plus the speaker's delayed
        // far-end audio.
        let echoed = delay(&far_end, d);
        let mic = mix(&[&voice, &echoed]);

        let cleaned = canceller.cancel(&mic, 0);
        // Residual relative to the pure voice is tiny (exact integer
        // subtraction up to saturation effects).
        let residual: Vec<i16> = cleaned
            .iter()
            .zip(voice.iter())
            .map(|(&c, &v)| c.saturating_sub(v))
            .collect();
        assert!(rms(&residual) < 0.01, "residual rms {}", rms(&residual));
        // Sanity: without cancellation the mic is much dirtier.
        let dirty: Vec<i16> = mic
            .iter()
            .zip(voice.iter())
            .map(|(&m, &v)| m.saturating_sub(v))
            .collect();
        assert!(rms(&dirty) > 0.2);
    }

    #[test]
    fn echo_cancellation_survives_history_trimming() {
        // A long stream forces the canceller to trim its reference history;
        // absolute indexing must stay correct (regression test).
        const FRAME: usize = 160;
        const FRAMES: usize = 40; // 6400 samples: well past the trim point
        let voice = sine(700.0, 0.3, FRAME * FRAMES, 0.0);
        let far_end = sine(1900.0, 0.4, FRAME * FRAMES, 1.0);
        let d = 40;
        let echoed = delay(&far_end, d);
        let mic = mix(&[&voice, &echoed]);

        let mut canceller = EchoCanceller::new(d);
        let mut cleaned = Vec::new();
        for f in 0..FRAMES {
            let range = f * FRAME..(f + 1) * FRAME;
            canceller.feed_reference(&far_end[range.clone()]);
            cleaned.extend(canceller.cancel(&mic[range.clone()], range.start));
        }
        let residual: Vec<i16> = cleaned
            .iter()
            .zip(voice.iter())
            .map(|(&c, &v)| c.saturating_sub(v))
            .collect();
        assert!(rms(&residual) < 1e-6, "residual rms {}", rms(&residual));
    }

    #[test]
    fn goertzel_detects_its_tone() {
        let s = sine(1000.0, 0.6, SYMBOL_SAMPLES, 0.0);
        assert!(goertzel(&s, 1000.0) > 10.0 * goertzel(&s, 2200.0));
    }

    #[test]
    fn tone_codec_roundtrip() {
        for data in [
            &b"ptzMove x=1;"[..],
            b"",
            b"hello world",
            &[0u8, 255, 16, 32],
        ] {
            if data.is_empty() {
                assert_eq!(decode_tones(&encode_tones(data)), None); // empty signal
                continue;
            }
            let signal = encode_tones(data);
            assert_eq!(decode_tones(&signal).as_deref(), Some(data));
        }
    }

    #[test]
    fn tone_decode_rejects_noise_and_partial_symbols() {
        // Wrong length.
        assert_eq!(decode_tones(&[0i16; SYMBOL_SAMPLES]), None);
        // Silence: no energy.
        assert_eq!(decode_tones(&[0i16; 2 * SYMBOL_SAMPLES]), None);
    }

    #[test]
    fn tone_codec_survives_mild_noise() {
        let data = b"turn on the projector";
        let mut signal = encode_tones(data);
        // Add small deterministic "noise".
        for (i, s) in signal.iter_mut().enumerate() {
            *s = s.saturating_add(((i * 2654435761) % 400) as i16 - 200);
        }
        assert_eq!(decode_tones(&signal).as_deref(), Some(&data[..]));
    }

    #[test]
    fn sample_bytes_roundtrip() {
        let s = sine(440.0, 0.9, 123, 0.5);
        assert_eq!(bytes_to_samples(&samples_to_bytes(&s)).unwrap(), s);
        assert_eq!(bytes_to_samples(&[1, 2, 3]), None);
    }

    #[test]
    fn delay_shifts() {
        assert_eq!(delay(&[1, 2, 3, 4], 2), vec![0, 0, 1, 2]);
        assert_eq!(delay(&[1, 2], 5), vec![0, 0]);
    }
}
