//! The push-stream convention shared by all media services.
//!
//! Media data moves between daemons as `push stream=<name> seq=<n>
//! data=<hex>` commands; every processing service forwards its output to a
//! set of downstream sinks registered with `addSink`.  Chaining pushes is
//! exactly Fig. 4's composition — "daemons come together like building
//! blocks … to provide more complex functionalities".

use ace_core::prelude::*;
use ace_core::protocol::{hex_decode, hex_encode};

/// Semantics for services that accept pushed frames.
pub fn push_spec() -> CmdSpec {
    CmdSpec::new("push", "deliver one media frame")
        .required("stream", ArgType::Word, "stream name")
        .required("seq", ArgType::Int, "frame sequence number")
        .required("data", ArgType::Word, "hex frame payload")
}

/// Semantics for services with configurable downstream sinks.
pub fn sink_specs() -> Vec<CmdSpec> {
    vec![
        CmdSpec::new("addSink", "forward output frames to another service")
            .required("host", ArgType::Word, "sink host")
            .required("port", ArgType::Int, "sink port"),
        CmdSpec::new("removeSink", "stop forwarding to a sink")
            .required("host", ArgType::Word, "sink host")
            .required("port", ArgType::Int, "sink port"),
    ]
}

/// A decoded pushed frame.
pub struct Frame {
    pub stream: String,
    pub seq: i64,
    pub data: Vec<u8>,
}

impl Frame {
    /// Decode a validated `push` command.
    pub fn from_cmd(cmd: &CmdLine) -> Result<Frame, Reply> {
        let missing = |name: &str| {
            Reply::err(
                ErrorCode::Semantics,
                format!("missing or mistyped `{name}`"),
            )
        };
        let data = hex_decode(cmd.get_text("data").ok_or_else(|| missing("data"))?)
            .ok_or_else(|| Reply::err(ErrorCode::Semantics, "data is not valid hex"))?;
        Ok(Frame {
            stream: cmd
                .get_text("stream")
                .ok_or_else(|| missing("stream"))?
                .to_string(),
            seq: cmd.get_int("seq").ok_or_else(|| missing("seq"))?,
            data,
        })
    }

    /// Build the `push` command for this frame.
    pub fn to_cmd(&self) -> CmdLine {
        CmdLine::new("push")
            .arg("stream", self.stream.as_str())
            .arg("seq", self.seq)
            .arg("data", hex_encode(&self.data))
    }
}

/// Downstream sink set with forwarding.
#[derive(Debug, Default)]
pub struct Downstream {
    sinks: Vec<Addr>,
}

impl Downstream {
    pub fn new() -> Downstream {
        Downstream::default()
    }

    /// Handle `addSink`/`removeSink`; `None` if the command is neither.
    pub fn handle(&mut self, cmd: &CmdLine) -> Option<Reply> {
        let sink_addr = |cmd: &CmdLine| -> Result<Addr, Reply> {
            match (cmd.get_text("host"), cmd.get_int("port")) {
                (Some(host), Some(port)) => Ok(Addr::new(host, port as u16)),
                _ => Err(Reply::err(
                    ErrorCode::Semantics,
                    "missing or mistyped sink address",
                )),
            }
        };
        match cmd.name() {
            "addSink" => {
                let addr = match sink_addr(cmd) {
                    Ok(addr) => addr,
                    Err(reply) => return Some(reply),
                };
                if !self.sinks.contains(&addr) {
                    self.sinks.push(addr);
                }
                Some(Reply::ok())
            }
            "removeSink" => {
                let addr = match sink_addr(cmd) {
                    Ok(addr) => addr,
                    Err(reply) => return Some(reply),
                };
                let before = self.sinks.len();
                self.sinks.retain(|a| a != &addr);
                Some(if self.sinks.len() != before {
                    Reply::ok()
                } else {
                    Reply::err(ErrorCode::NotFound, "no such sink")
                })
            }
            _ => None,
        }
    }

    /// The registered sinks.
    pub fn sinks(&self) -> &[Addr] {
        &self.sinks
    }

    /// Replace the sink set wholesale (snapshot restore across a live
    /// upgrade).
    pub fn set_sinks(&mut self, sinks: Vec<Addr>) {
        self.sinks = sinks;
    }

    /// Forward one frame to every sink.  Returns how many deliveries
    /// succeeded; dead sinks are skipped (and logged), not fatal —
    /// Fig. 14's distribution keeps serving the healthy receivers.
    pub fn forward(&self, ctx: &mut ServiceCtx, frame: &Frame) -> usize {
        let cmd = frame.to_cmd();
        let mut delivered = 0;
        for sink in &self.sinks {
            match ctx.call(sink, &cmd) {
                Ok(_) => delivered += 1,
                Err(e) => ctx.log("warn", format!("sink {sink} failed: {e}")),
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_cmd_roundtrip() {
        let f = Frame {
            stream: "mic1".into(),
            seq: 42,
            data: vec![1, 2, 3, 255],
        };
        let cmd = f.to_cmd();
        // Via the wire.
        let parsed = CmdLine::parse(&cmd.to_wire()).unwrap();
        let back = Frame::from_cmd(&parsed).unwrap();
        assert_eq!(back.stream, "mic1");
        assert_eq!(back.seq, 42);
        assert_eq!(back.data, vec![1, 2, 3, 255]);
    }

    #[test]
    fn downstream_add_remove() {
        let mut d = Downstream::new();
        let add = CmdLine::parse("addSink host=bar port=7;").unwrap();
        assert!(d.handle(&add).unwrap().is_ok());
        assert!(d.handle(&add).unwrap().is_ok()); // idempotent
        assert_eq!(d.sinks().len(), 1);
        let rm = CmdLine::parse("removeSink host=bar port=7;").unwrap();
        assert!(d.handle(&rm).unwrap().is_ok());
        assert!(!d.handle(&rm).unwrap().is_ok());
        assert!(d.handle(&CmdLine::new("other")).is_none());
    }
}
