//! The media service daemons: Converter (§4.12), Distribution (§4.13), and
//! the Fig. 15 audio-conferencing nodes (§4.15).

use crate::codec::{convert, Format};
use crate::dsp::{
    bytes_to_samples, decode_tones, encode_tones, mix, rms, samples_to_bytes, sine, EchoCanceller,
};
use crate::stream::{push_spec, sink_specs, Downstream, Frame};
use ace_core::prelude::*;
use std::collections::{BTreeMap, HashMap};

fn with_sink_specs(mut sem: Semantics) -> Semantics {
    for spec in sink_specs() {
        sem.define(spec);
    }
    sem
}

// ---------------------------------------------------------------------------
// Converter (Fig. 13)
// ---------------------------------------------------------------------------

/// The ACE Converter service: re-encodes frames between formats on their way
/// downstream.
pub struct Converter {
    from: Format,
    to: Format,
    downstream: Downstream,
    bytes_in: u64,
    bytes_out: u64,
}

impl Converter {
    pub fn new(from: Format, to: Format) -> Converter {
        Converter {
            from,
            to,
            downstream: Downstream::new(),
            bytes_in: 0,
            bytes_out: 0,
        }
    }
}

impl ServiceBehavior for Converter {
    fn semantics(&self) -> Semantics {
        with_sink_specs(
            Semantics::new()
                .with(push_spec())
                .with(
                    CmdSpec::new("convertConfig", "set the conversion direction")
                        .required("from", ArgType::Word, "source format")
                        .required("to", ArgType::Word, "target format"),
                )
                .with(CmdSpec::new("convertStats", "bytes in/out so far")),
        )
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        if let Some(reply) = self.downstream.handle(cmd) {
            return reply;
        }
        match cmd.name() {
            "convertConfig" => {
                let Some(from) = Format::from_word(req_text!(cmd, "from")) else {
                    return Reply::err(ErrorCode::Semantics, "unknown source format");
                };
                let Some(to) = Format::from_word(req_text!(cmd, "to")) else {
                    return Reply::err(ErrorCode::Semantics, "unknown target format");
                };
                self.from = from;
                self.to = to;
                Reply::ok()
            }
            "push" => {
                let frame = match Frame::from_cmd(cmd) {
                    Ok(f) => f,
                    Err(reply) => return reply,
                };
                self.bytes_in += frame.data.len() as u64;
                let converted = match convert(self.from, self.to, &frame.data) {
                    Ok(c) => c,
                    Err(e) => return Reply::err(ErrorCode::BadState, e.to_string()),
                };
                self.bytes_out += converted.len() as u64;
                let out = Frame {
                    stream: frame.stream,
                    seq: frame.seq,
                    data: converted,
                };
                let delivered = self.downstream.forward(ctx, &out);
                Reply::ok_with(|c| {
                    c.arg("bytes", out.data.len() as i64)
                        .arg("delivered", delivered as i64)
                })
            }
            "convertStats" => Reply::ok_with(|c| {
                c.arg("bytesIn", self.bytes_in as i64)
                    .arg("bytesOut", self.bytes_out as i64)
                    .arg("from", self.from.as_word())
                    .arg("to", self.to.as_word())
            }),
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

// ---------------------------------------------------------------------------
// Distribution (Fig. 14)
// ---------------------------------------------------------------------------

/// The ACE Distribution service: forwards one input stream to a set of
/// receiving services.
#[derive(Default)]
pub struct Distribution {
    downstream: Downstream,
    frames: u64,
    deliveries: u64,
}

impl Distribution {
    pub fn new() -> Distribution {
        Distribution::default()
    }
}

impl ServiceBehavior for Distribution {
    fn semantics(&self) -> Semantics {
        with_sink_specs(
            Semantics::new()
                .with(push_spec())
                .with(CmdSpec::new("distStats", "frames and deliveries so far")),
        )
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        if let Some(reply) = self.downstream.handle(cmd) {
            return reply;
        }
        match cmd.name() {
            "push" => {
                let frame = match Frame::from_cmd(cmd) {
                    Ok(f) => f,
                    Err(reply) => return reply,
                };
                self.frames += 1;
                let delivered = self.downstream.forward(ctx, &frame);
                self.deliveries += delivered as u64;
                Reply::ok_with(|c| c.arg("delivered", delivered as i64))
            }
            "distStats" => Reply::ok_with(|c| {
                c.arg("frames", self.frames as i64)
                    .arg("deliveries", self.deliveries as i64)
                    .arg("sinks", self.downstream.sinks().len() as i64)
            }),
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

// ---------------------------------------------------------------------------
// Audio nodes (Fig. 15)
// ---------------------------------------------------------------------------

/// Audio Capture: "captures an audio signal from a microphone and digitizes
/// it".  The microphone is a configurable sine source; `generate` produces
/// the next frame and pushes it downstream.
pub struct AudioCapture {
    freq: f64,
    amplitude: f64,
    phase_samples: u64,
    seq: i64,
    downstream: Downstream,
}

impl AudioCapture {
    pub fn new(freq: f64, amplitude: f64) -> AudioCapture {
        AudioCapture {
            freq,
            amplitude,
            phase_samples: 0,
            seq: 0,
            downstream: Downstream::new(),
        }
    }
}

impl ServiceBehavior for AudioCapture {
    fn semantics(&self) -> Semantics {
        with_sink_specs(
            Semantics::new()
                .with(
                    CmdSpec::new("generate", "capture the next audio frame")
                        .required("len", ArgType::Int, "samples in the frame")
                        .optional("stream", ArgType::Word, "stream name (default mic)"),
                )
                .with(
                    CmdSpec::new("captureConfig", "set the simulated source")
                        .required("freq", ArgType::Float, "tone frequency")
                        .required("amp", ArgType::Float, "amplitude 0..1"),
                ),
        )
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        if let Some(reply) = self.downstream.handle(cmd) {
            return reply;
        }
        match cmd.name() {
            "captureConfig" => {
                self.freq = req_f64!(cmd, "freq");
                self.amplitude = req_f64!(cmd, "amp").clamp(0.0, 1.0);
                Reply::ok()
            }
            "generate" => {
                let len = req_int!(cmd, "len").max(0) as usize;
                let stream = cmd.get_text("stream").unwrap_or("mic").to_string();
                // Keep phase continuous across frames.
                let w = 2.0 * std::f64::consts::PI * self.freq / crate::dsp::SAMPLE_RATE as f64;
                let samples = sine(
                    self.freq,
                    self.amplitude,
                    len,
                    w * self.phase_samples as f64,
                );
                self.phase_samples += len as u64;
                let frame = Frame {
                    stream,
                    seq: self.seq,
                    data: samples_to_bytes(&samples),
                };
                self.seq += 1;
                let delivered = self.downstream.forward(ctx, &frame);
                Reply::ok_with(|c| c.arg("seq", frame.seq).arg("delivered", delivered as i64))
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// Upper bound on buffered partial slots.  A silent input otherwise grows
/// `pending` without limit, one slot per frame the live inputs push.
const MAX_PENDING_SLOTS: usize = 64;

/// Audio Mixer: "combines multiple audio signals into one audio
/// signal/stream".  It waits until every registered input has delivered the
/// frame for a sequence number, then mixes and forwards.
pub struct AudioMixer {
    inputs: Vec<String>,
    pending: BTreeMap<i64, HashMap<String, Vec<i16>>>,
    out_stream: String,
    downstream: Downstream,
    mixed: u64,
    dropped_slots: u64,
}

impl AudioMixer {
    pub fn new(out_stream: &str) -> AudioMixer {
        AudioMixer {
            inputs: Vec::new(),
            pending: BTreeMap::new(),
            out_stream: out_stream.to_string(),
            downstream: Downstream::new(),
            mixed: 0,
            dropped_slots: 0,
        }
    }

    /// Mix and forward the completed slot at `seq`, dropping (and counting)
    /// any stale partial slots older than the emission point.
    fn emit(&mut self, ctx: &mut ServiceCtx, seq: i64) -> usize {
        let Some(parts) = self.pending.remove(&seq) else {
            return 0;
        };
        let refs: Vec<&[i16]> = parts.values().map(Vec::as_slice).collect();
        let mixed = mix(&refs);
        self.mixed += 1;
        let out = Frame {
            stream: self.out_stream.clone(),
            seq,
            data: samples_to_bytes(&mixed),
        };
        let forwarded = self.downstream.forward(ctx, &out);
        // Drop stale partial frames older than what we emitted.
        let stale: Vec<i64> = self.pending.range(..seq).map(|(&s, _)| s).collect();
        self.dropped_slots += stale.len() as u64;
        for s in stale {
            self.pending.remove(&s);
        }
        forwarded
    }

    /// Emit every slot the current input set makes complete (oldest first).
    /// Called after the input set changes: a slot buffered while a departed
    /// input was registered may suddenly have every remaining contribution.
    fn emit_ready(&mut self, ctx: &mut ServiceCtx) -> usize {
        let mut forwarded = 0;
        loop {
            let need = self.inputs.len();
            if need == 0 {
                break;
            }
            let Some(seq) = self
                .pending
                .iter()
                .find(|(_, slot)| slot.len() == need)
                .map(|(&s, _)| s)
            else {
                break;
            };
            forwarded += self.emit(ctx, seq);
        }
        forwarded
    }
}

impl ServiceBehavior for AudioMixer {
    fn semantics(&self) -> Semantics {
        with_sink_specs(
            Semantics::new()
                .with(push_spec())
                .with(
                    CmdSpec::new("addInput", "declare an input stream to mix").required(
                        "stream",
                        ArgType::Word,
                        "input stream name",
                    ),
                )
                .with(
                    CmdSpec::new("removeInput", "deregister an input stream").required(
                        "stream",
                        ArgType::Word,
                        "input stream name",
                    ),
                )
                .with(CmdSpec::new("mixerStats", "mixer counters")),
        )
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        if let Some(reply) = self.downstream.handle(cmd) {
            return reply;
        }
        match cmd.name() {
            "addInput" => {
                let stream = req_text!(cmd, "stream").to_string();
                if !self.inputs.contains(&stream) {
                    self.inputs.push(stream);
                }
                Reply::ok()
            }
            "removeInput" => {
                let stream = req_text!(cmd, "stream").to_string();
                let before = self.inputs.len();
                self.inputs.retain(|s| s != &stream);
                if self.inputs.len() == before {
                    return Reply::err(ErrorCode::NotFound, "no such input");
                }
                // Reconcile `pending` with the shrunk input set: strip the
                // departed stream's buffered contributions (a slot holding
                // only them would never complete and leak forever), then
                // emit any slots the removal just completed.
                for slot in self.pending.values_mut() {
                    slot.remove(&stream);
                }
                self.pending.retain(|_, slot| !slot.is_empty());
                let forwarded = self.emit_ready(ctx);
                Reply::ok_with(|c| c.arg("delivered", forwarded as i64))
            }
            "push" => {
                let frame = match Frame::from_cmd(cmd) {
                    Ok(f) => f,
                    Err(reply) => return reply,
                };
                if !self.inputs.contains(&frame.stream) {
                    return Reply::err(
                        ErrorCode::BadState,
                        format!("stream {} is not a registered input", frame.stream),
                    );
                }
                let Some(samples) = bytes_to_samples(&frame.data) else {
                    return Reply::err(ErrorCode::Semantics, "odd-length PCM frame");
                };
                // Keep `pending` bounded even when an input goes silent:
                // evict the oldest slot (or refuse a frame older than all
                // buffered work) rather than buffering without limit.
                if !self.pending.contains_key(&frame.seq) && self.pending.len() >= MAX_PENDING_SLOTS
                {
                    match self.pending.iter().next().map(|(&s, _)| s) {
                        Some(oldest) if oldest < frame.seq => {
                            self.pending.remove(&oldest);
                            self.dropped_slots += 1;
                        }
                        _ => {
                            self.dropped_slots += 1;
                            return Reply::ok_with(|c| c.arg("delivered", 0i64));
                        }
                    }
                }
                let slot = self.pending.entry(frame.seq).or_default();
                slot.insert(frame.stream, samples);
                let mut forwarded = 0;
                if slot.len() == self.inputs.len() {
                    forwarded = self.emit(ctx, frame.seq);
                }
                Reply::ok_with(|c| c.arg("delivered", forwarded as i64))
            }
            "mixerStats" => Reply::ok_with(|c| {
                c.arg("inputs", self.inputs.len() as i64)
                    .arg("mixed", self.mixed as i64)
                    .arg("pending", self.pending.len() as i64)
                    .arg("dropped", self.dropped_slots as i64)
            }),
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }

    fn on_stats(&mut self, ctx: &mut ServiceCtx) {
        let m = ctx.metrics();
        m.gauge("mixer.inputs").set(self.inputs.len() as i64);
        m.gauge("mixer.pending").set(self.pending.len() as i64);
        m.gauge("mixer.mixed").set(self.mixed as i64);
        m.gauge("mixer.droppedSlots").set(self.dropped_slots as i64);
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        // Routing only: registered inputs, the output stream name, and the
        // downstream sink set.  Partial `pending` slots are deliberately
        // dropped — producers retry the quiesce-window frames and the slot
        // refills on the replacement.
        let inputs: Vec<Scalar> = self.inputs.iter().map(|s| Scalar::Str(s.clone())).collect();
        // Port as a quoted string: array rows must be homogeneous per the
        // wire grammar (a Str/Int mix would be refused on re-parse).
        let sinks: Vec<Vec<Scalar>> = self
            .downstream
            .sinks()
            .iter()
            .map(|a| {
                vec![
                    Scalar::Str(a.host.to_string()),
                    Scalar::Str(a.port.to_string()),
                ]
            })
            .collect();
        let state = CmdLine::new("mixerState")
            .arg("outStream", self.out_stream.as_str())
            .arg("inputs", Value::Vector(inputs))
            .arg("sinks", Value::Array(sinks));
        Some(ace_core::protocol::seal_snapshot("audioMixer", state))
    }

    fn restore_state(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let state = ace_core::protocol::open_snapshot("audioMixer", snapshot)?;
        let out_stream = state
            .get_text("outStream")
            .ok_or_else(|| "mixer snapshot: missing outStream".to_string())?
            .to_string();
        let inputs_val = state
            .get("inputs")
            .ok_or_else(|| "mixer snapshot: missing inputs".to_string())?;
        let inputs: Vec<String> = inputs_val
            .as_vector()
            .ok_or_else(|| "mixer snapshot: malformed inputs".to_string())?
            .iter()
            .map(|s| match s {
                Scalar::Str(text) => Ok(text.clone()),
                _ => Err("mixer snapshot: malformed inputs".to_string()),
            })
            .collect::<Result<_, _>>()?;
        let sinks_val = state
            .get("sinks")
            .ok_or_else(|| "mixer snapshot: missing sinks".to_string())?;
        // An empty sink set round-trips through the wire form as an empty
        // vector, not an empty array.
        let sinks: Vec<Addr> = if sinks_val.as_vector().is_some_and(|s| s.is_empty()) {
            Vec::new()
        } else {
            sinks_val
                .as_array()
                .ok_or_else(|| "mixer snapshot: malformed sinks".to_string())?
                .iter()
                .map(|row| match row.as_slice() {
                    [Scalar::Str(host), Scalar::Str(port)] => port
                        .parse::<u16>()
                        .map(|p| Addr::new(host.as_str(), p))
                        .map_err(|_| "mixer snapshot: malformed sinks".to_string()),
                    _ => Err("mixer snapshot: malformed sinks".to_string()),
                })
                .collect::<Result<_, _>>()?
        };
        self.out_stream = out_stream;
        self.inputs = inputs;
        self.downstream.set_sinks(sinks);
        self.pending.clear();
        Ok(())
    }
}

/// Echo Cancellation: subtracts the delayed reference (fed with `pushRef`)
/// from the microphone stream (fed with `push`), forwarding the cleaned
/// signal.
pub struct EchoCancel {
    canceller: EchoCanceller,
    mic_samples_seen: usize,
    downstream: Downstream,
}

impl EchoCancel {
    /// `delay_samples` models the acoustic path speaker→microphone.
    pub fn new(delay_samples: usize) -> EchoCancel {
        EchoCancel {
            canceller: EchoCanceller::new(delay_samples),
            mic_samples_seen: 0,
            downstream: Downstream::new(),
        }
    }
}

impl ServiceBehavior for EchoCancel {
    fn semantics(&self) -> Semantics {
        with_sink_specs(
            Semantics::new().with(push_spec()).with(
                CmdSpec::new("pushRef", "deliver a reference (speaker) frame")
                    .required("stream", ArgType::Word, "reference stream name")
                    .required("seq", ArgType::Int, "frame sequence number")
                    .required("data", ArgType::Word, "hex frame payload"),
            ),
        )
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        if let Some(reply) = self.downstream.handle(cmd) {
            return reply;
        }
        match cmd.name() {
            "pushRef" => {
                let frame = match Frame::from_cmd(cmd) {
                    Ok(f) => f,
                    Err(reply) => return reply,
                };
                let Some(samples) = bytes_to_samples(&frame.data) else {
                    return Reply::err(ErrorCode::Semantics, "odd-length PCM frame");
                };
                self.canceller.feed_reference(&samples);
                Reply::ok()
            }
            "push" => {
                let frame = match Frame::from_cmd(cmd) {
                    Ok(f) => f,
                    Err(reply) => return reply,
                };
                let Some(mic) = bytes_to_samples(&frame.data) else {
                    return Reply::err(ErrorCode::Semantics, "odd-length PCM frame");
                };
                let cleaned = self.canceller.cancel(&mic, self.mic_samples_seen);
                self.mic_samples_seen += mic.len();
                let out = Frame {
                    stream: frame.stream,
                    seq: frame.seq,
                    data: samples_to_bytes(&cleaned),
                };
                let delivered = self.downstream.forward(ctx, &out);
                Reply::ok_with(|c| c.arg("delivered", delivered as i64))
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// Audio sink shared by Audio Play (speaker) and Audio Recorder ("records
/// on hard media a given input audio stream"): accumulates received frames
/// and reports level/length/decodes.
#[derive(Default)]
pub struct AudioSink {
    samples: Vec<i16>,
    frames: u64,
}

impl AudioSink {
    pub fn new() -> AudioSink {
        AudioSink::default()
    }
}

impl ServiceBehavior for AudioSink {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(push_spec())
            .with(CmdSpec::new("sinkStats", "received length and RMS level"))
            .with(
                CmdSpec::new("sinkPower", "Goertzel power of a frequency in the sink").required(
                    "freq",
                    ArgType::Float,
                    "frequency in Hz",
                ),
            )
            .with(CmdSpec::new(
                "sinkDecode",
                "attempt tone-demodulation of the whole recording",
            ))
    }

    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "push" => {
                let frame = match Frame::from_cmd(cmd) {
                    Ok(f) => f,
                    Err(reply) => return reply,
                };
                let Some(samples) = bytes_to_samples(&frame.data) else {
                    return Reply::err(ErrorCode::Semantics, "odd-length PCM frame");
                };
                self.samples.extend_from_slice(&samples);
                self.frames += 1;
                Reply::ok()
            }
            "sinkStats" => Reply::ok_with(|c| {
                c.arg("samples", self.samples.len() as i64)
                    .arg("frames", self.frames as i64)
                    .arg("rms", rms(&self.samples))
            }),
            "sinkPower" => {
                let freq = req_f64!(cmd, "freq");
                Reply::ok_with(|c| c.arg("power", crate::dsp::goertzel(&self.samples, freq)))
            }
            "sinkDecode" => match decode_tones(&self.samples) {
                Some(bytes) => match String::from_utf8(bytes) {
                    Ok(text) => {
                        Reply::ok_with(|c| c.arg("decoded", true).arg("text", Value::Str(text)))
                    }
                    Err(_) => Reply::ok_with(|c| c.arg("decoded", false)),
                },
                None => Reply::ok_with(|c| c.arg("decoded", false)),
            },
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// Text-to-Speech: "converts text messages into an audible voice signal" —
/// tone-modulates the text and pushes it downstream as one frame.
#[derive(Default)]
pub struct TextToSpeech {
    seq: i64,
    downstream: Downstream,
}

impl TextToSpeech {
    pub fn new() -> TextToSpeech {
        TextToSpeech::default()
    }
}

impl ServiceBehavior for TextToSpeech {
    fn semantics(&self) -> Semantics {
        with_sink_specs(
            Semantics::new().with(
                CmdSpec::new("say", "synthesize text into the output stream")
                    .required("text", ArgType::Str, "the text to speak")
                    .optional("stream", ArgType::Word, "stream name (default tts)"),
            ),
        )
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        if let Some(reply) = self.downstream.handle(cmd) {
            return reply;
        }
        match cmd.name() {
            "say" => {
                let text = req_text!(cmd, "text");
                let signal = encode_tones(text.as_bytes());
                let frame = Frame {
                    stream: cmd.get_text("stream").unwrap_or("tts").to_string(),
                    seq: self.seq,
                    data: samples_to_bytes(&signal),
                };
                self.seq += 1;
                let delivered = self.downstream.forward(ctx, &frame);
                Reply::ok_with(|c| {
                    c.arg("samples", (signal.len()) as i64)
                        .arg("delivered", delivered as i64)
                })
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// Speech-to-Command: "analyses an input audio signal for specific voice
/// commands and converts them, if any, to a specific and well-known ACE
/// service command message."  Each received frame is demodulated; frames
/// that decode to a parseable ACE command fire the `voiceCommand` event.
#[derive(Default)]
pub struct SpeechToCommand {
    recognized: u64,
    rejected: u64,
}

impl SpeechToCommand {
    pub fn new() -> SpeechToCommand {
        SpeechToCommand::default()
    }
}

impl ServiceBehavior for SpeechToCommand {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(push_spec())
            .with(CmdSpec::new("stcStats", "recognition counters"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "push" => {
                let frame = match Frame::from_cmd(cmd) {
                    Ok(f) => f,
                    Err(reply) => return reply,
                };
                let decoded = bytes_to_samples(&frame.data)
                    .as_deref()
                    .and_then(decode_tones)
                    .and_then(|bytes| String::from_utf8(bytes).ok())
                    .filter(|text| ace_lang::parse(text).is_ok());
                match decoded {
                    Some(text) => {
                        self.recognized += 1;
                        ctx.log("info", format!("voice command: {text}"));
                        ctx.fire_event(CmdLine::new("voiceCommand").arg("text", Value::Str(text)));
                        Reply::ok_with(|c| c.arg("recognized", true))
                    }
                    None => {
                        self.rejected += 1;
                        Reply::ok_with(|c| c.arg("recognized", false))
                    }
                }
            }
            "stcStats" => Reply::ok_with(|c| {
                c.arg("recognized", self.recognized as i64)
                    .arg("rejected", self.rejected as i64)
            }),
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}
