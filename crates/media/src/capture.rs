//! Video capture: the source end of the Fig. 13 pipeline.
//!
//! "If video information was being transferred from a camera in the ACE to
//! a file managing system … an ACE converter is placed in between the video
//! capture service and the file storage service."  The camera sensor is
//! substituted (DESIGN.md) by a synthetic frame generator: flat scenes with
//! a moving block, so RLE compression downstream behaves like it does on
//! real static-camera footage.

use crate::stream::{sink_specs, Downstream, Frame};
use ace_core::prelude::*;

/// The video-capture behavior.
pub struct VideoCapture {
    width: u32,
    height: u32,
    seq: i64,
    downstream: Downstream,
}

impl VideoCapture {
    /// A camera producing `width`×`height` 1-byte-per-pixel frames.
    pub fn new(width: u32, height: u32) -> VideoCapture {
        VideoCapture {
            width: width.max(1),
            height: height.max(1),
            seq: 0,
            downstream: Downstream::new(),
        }
    }

    /// Render frame `seq`: a flat background with an 8×8 moving block —
    /// mostly-static scene, the camera case Fig. 13 compresses.
    fn render(&self, seq: i64) -> Vec<u8> {
        let (w, h) = (self.width as usize, self.height as usize);
        let mut frame = vec![0x30u8; w * h];
        let bx = (seq as usize * 3) % w.saturating_sub(8).max(1);
        let by = (seq as usize * 2) % h.saturating_sub(8).max(1);
        for y in by..(by + 8).min(h) {
            for x in bx..(bx + 8).min(w) {
                frame[y * w + x] = 0xf0;
            }
        }
        frame
    }
}

impl ServiceBehavior for VideoCapture {
    fn semantics(&self) -> Semantics {
        let mut sem = Semantics::new()
            .with(
                CmdSpec::new("captureFrame", "capture and push the next frame").optional(
                    "count",
                    ArgType::Int,
                    "frames to capture (default 1)",
                ),
            )
            .with(CmdSpec::new("captureStatus", "camera state"));
        for spec in sink_specs() {
            sem.define(spec);
        }
        sem
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        if let Some(reply) = self.downstream.handle(cmd) {
            return reply;
        }
        match cmd.name() {
            "captureFrame" => {
                let count = cmd.get_int("count").unwrap_or(1).clamp(0, 256);
                let mut delivered = 0;
                for _ in 0..count {
                    let frame = Frame {
                        stream: "video".into(),
                        seq: self.seq,
                        data: self.render(self.seq),
                    };
                    self.seq += 1;
                    delivered += self.downstream.forward(ctx, &frame);
                }
                Reply::ok_with(|c| c.arg("frames", count).arg("delivered", delivered as i64))
            }
            "captureStatus" => Reply::ok_with(|c| {
                c.arg("width", self.width as i64)
                    .arg("height", self.height as i64)
                    .arg("captured", self.seq)
            }),
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_mostly_flat_and_change_over_time() {
        let cap = VideoCapture::new(64, 48);
        let f0 = cap.render(0);
        let f1 = cap.render(1);
        assert_eq!(f0.len(), 64 * 48);
        assert_ne!(f0, f1, "the block moves");
        let flat = f0.iter().filter(|&&b| b == 0x30).count();
        assert!(flat > f0.len() * 9 / 10, "mostly background");
        // And therefore RLE-compressible.
        let encoded = crate::codec::rle_encode(&f0);
        assert!(encoded.len() < f0.len() / 4);
    }
}
