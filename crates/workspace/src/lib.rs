//! # ace-workspace — user workspaces
//!
//! "A user workspace is a virtual computational space/environment that a
//! user may utilize to run his/her applications and access the ACE network"
//! (§1.3).  This crate implements §4.5 and §5.4:
//!
//! * [`Framebuffer`] — the tile-hash virtual framebuffer (the VNC
//!   substitution, Fig. 16);
//! * [`VncHost`] — a daemon hosting many workspace sessions, pushing tile
//!   updates to attached viewers over datagrams;
//! * [`VncViewer`] — the access-point side, replicating the framebuffer;
//! * [`Wss`] — the Workspace Server: creates/names/removes workspaces,
//!   manages session passwords invisibly, and reacts to `userAdded` /
//!   `userAt` events (Scenarios 1, 3, 4).

pub mod framebuffer;
pub mod vnc;
pub mod wss;

pub use framebuffer::{Framebuffer, Tile, TileUpdate, TILE_PIXELS};
pub use vnc::{VncHost, VncViewer};
pub use wss::{wire_wss, WorkspaceRecord, Wss};
