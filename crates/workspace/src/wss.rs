//! The Workspace Server — WSS (§4.5, §5.4).
//!
//! "Responsible for creating and removing user workspaces … naming and
//! keeping track of instances of these workspaces that are created for
//! specific users" and for driving the VNC password files "so that the
//! password verification by VNC was made invisible to the normal ACE user".
//!
//! Wiring (Scenarios 1, 3, 4):
//! * listens on the AUD's `userAdded` event → provisions a default
//!   workspace for every new user through the SAL (resource-aware host
//!   choice) and a VNC host;
//! * listens on the ID Monitor's `userAt` event → brings the user's
//!   workspace to their access point: one workspace shows immediately
//!   (`workspaceReady`), several raise the selector (`workspaceSelector`);
//! * `wssShow` performs the actual show (also the selector's confirm path).

use ace_core::prelude::*;
use std::collections::HashMap;

/// One workspace of one user.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkspaceRecord {
    pub user: String,
    pub name: String,
    pub session: String,
    /// The VNC host service holding the session.
    pub vnc_addr: Addr,
    pub vnc_service: String,
    /// Managed invisibly; handed only to the access point at show time.
    pub password: String,
}

/// The WSS behavior.
#[derive(Default)]
pub struct Wss {
    /// user → workspaces.
    workspaces: HashMap<String, Vec<WorkspaceRecord>>,
    sal: Option<Addr>,
    shows: u64,
}

impl Wss {
    pub fn new() -> Wss {
        Wss::default()
    }

    fn sal_addr(&mut self, ctx: &mut ServiceCtx) -> Option<Addr> {
        if self.sal.is_none() {
            self.sal = ctx.lookup_one("sal").ok().flatten().map(|e| e.addr);
        }
        self.sal.clone()
    }

    fn generate_password() -> String {
        format!("vnc-{:08x}", rand::random::<u32>())
    }

    /// Create a workspace: pick a VNC host, account the VNC server process
    /// through the SAL, and create the session (Scenario 1's
    /// AUD→WSS→SAL→SRM→HAL chain).
    fn create_workspace(
        &mut self,
        ctx: &mut ServiceCtx,
        user: &str,
        name: &str,
    ) -> Result<WorkspaceRecord, Reply> {
        if self
            .workspaces
            .get(user)
            .is_some_and(|list| list.iter().any(|w| w.name == name))
        {
            return Err(Reply::err(
                ErrorCode::BadState,
                format!("user {user} already has workspace {name}"),
            ));
        }
        let hosts = ctx
            .lookup(None, Some("VNCHost"), None)
            .map_err(|e| Reply::err(ErrorCode::Unavailable, format!("ASD: {e}")))?;
        if hosts.is_empty() {
            return Err(Reply::err(
                ErrorCode::Unavailable,
                "no VNC hosts registered",
            ));
        }

        // Ask the SAL (→SRM→HRM) where the VNC server process should run;
        // fall back to the first VNC host when the launcher tier is absent.
        let chosen = self
            .sal_addr(ctx)
            .and_then(|sal| {
                ctx.call(
                    &sal,
                    &CmdLine::new("launch")
                        .arg("app", Value::Str("vncserver".into()))
                        .arg("user", user)
                        .arg("load", 0.5)
                        .arg("mem", 48)
                        .arg("policy", "resource"),
                )
                .ok()
            })
            .and_then(|r| r.get_text("host").map(str::to_string))
            .and_then(|host| hosts.iter().find(|e| e.addr.host.as_str() == host).cloned())
            .unwrap_or_else(|| hosts[0].clone());

        let password = Self::generate_password();
        let reply = ctx
            .call(
                &chosen.addr,
                &CmdLine::new("vncCreate")
                    .arg("user", user)
                    .arg("password", Value::Str(password.clone())),
            )
            .map_err(|e| Reply::err(ErrorCode::Unavailable, format!("VNC host failed: {e}")))?;
        let session = reply.get_text("session").unwrap_or_default().to_string();
        let record = WorkspaceRecord {
            user: user.to_string(),
            name: name.to_string(),
            session,
            vnc_addr: chosen.addr.clone(),
            vnc_service: chosen.name.clone(),
            password,
        };
        ctx.log(
            "info",
            format!("workspace {name} for {user} on {}", chosen.name),
        );
        self.workspaces
            .entry(user.to_string())
            .or_default()
            .push(record.clone());
        Ok(record)
    }

    /// Show a workspace at an access point: account the viewer process via
    /// the SAL on the access host, then publish `workspaceReady` with the
    /// attach coordinates (the access point performs the actual attach).
    fn show_workspace(
        &mut self,
        ctx: &mut ServiceCtx,
        record: &WorkspaceRecord,
        access_host: &str,
    ) -> Reply {
        if let Some(sal) = self.sal_addr(ctx) {
            let _ = ctx.call(
                &sal,
                &CmdLine::new("launch")
                    .arg("app", Value::Str("vncviewer".into()))
                    .arg("user", record.user.as_str())
                    .arg("load", 0.2)
                    .arg("mem", 16)
                    .arg("host", access_host),
            );
        }
        self.shows += 1;
        ctx.fire_event(
            CmdLine::new("workspaceReady")
                .arg("username", record.user.as_str())
                .arg("workspace", record.name.as_str())
                .arg("session", record.session.as_str())
                .arg("vncHost", record.vnc_addr.host.as_str())
                .arg("vncPort", record.vnc_addr.port)
                .arg("password", Value::Str(record.password.clone()))
                .arg("accessHost", access_host),
        );
        let record = record.clone();
        Reply::ok_with(move |c| {
            c.arg("session", record.session)
                .arg("vncHost", record.vnc_addr.host.as_str())
                .arg("vncPort", record.vnc_addr.port)
                .arg("password", Value::Str(record.password))
        })
    }
}

impl ServiceBehavior for Wss {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("wssCreate", "create a workspace for a user")
                    .required("user", ArgType::Word, "owning user")
                    .optional("name", ArgType::Word, "workspace name (default `default`)"),
            )
            .with(CmdSpec::new("wssList", "a user's workspaces").required(
                "user",
                ArgType::Word,
                "user to list",
            ))
            .with(
                CmdSpec::new("wssShow", "bring a workspace to an access point")
                    .required("user", ArgType::Word, "owning user")
                    .required("accessHost", ArgType::Word, "where the user stands")
                    .optional("name", ArgType::Word, "workspace (default `default`)"),
            )
            .with(
                CmdSpec::new("wssRemove", "destroy a workspace")
                    .required("user", ArgType::Word, "owning user")
                    .required("name", ArgType::Word, "workspace name"),
            )
            .with(
                CmdSpec::new("onUserAdded", "notification from the AUD")
                    .optional("service", ArgType::Str, "origin")
                    .optional("cmd", ArgType::Str, "origin command")
                    .optional("username", ArgType::Word, "the new user"),
            )
            .with(
                CmdSpec::new("onUserAt", "notification from the ID Monitor")
                    .optional("service", ArgType::Str, "origin")
                    .optional("cmd", ArgType::Str, "origin command")
                    .optional("username", ArgType::Word, "identified user")
                    .optional("room", ArgType::Word, "where")
                    .optional("accessHost", ArgType::Word, "access point host"),
            )
            .with(CmdSpec::new("wssStats", "workspace counters"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "wssCreate" => {
                let user = cmd.get_text("user").expect("validated").to_string();
                let name = cmd.get_text("name").unwrap_or("default").to_string();
                match self.create_workspace(ctx, &user, &name) {
                    Ok(record) => Reply::ok_with(|c| {
                        c.arg("session", record.session)
                            .arg("vncHost", record.vnc_addr.host.as_str())
                            .arg("vncPort", record.vnc_addr.port)
                    }),
                    Err(reply) => reply,
                }
            }
            "wssList" => {
                let user = cmd.get_text("user").expect("validated");
                let list = self.workspaces.get(user).cloned().unwrap_or_default();
                let rows: Vec<Vec<Scalar>> = list
                    .iter()
                    .map(|w| {
                        vec![
                            Scalar::Str(w.name.clone()),
                            Scalar::Str(w.session.clone()),
                            Scalar::Str(w.vnc_service.clone()),
                        ]
                    })
                    .collect();
                Reply::ok_with(|c| {
                    c.arg("count", rows.len() as i64)
                        .arg("workspaces", Value::Array(rows))
                })
            }
            "wssShow" => {
                let user = cmd.get_text("user").expect("validated").to_string();
                let name = cmd.get_text("name").unwrap_or("default").to_string();
                let access_host = cmd.get_text("accessHost").expect("validated").to_string();
                let record = self
                    .workspaces
                    .get(&user)
                    .and_then(|list| list.iter().find(|w| w.name == name))
                    .cloned();
                match record {
                    Some(record) => self.show_workspace(ctx, &record, &access_host),
                    None => Reply::err(
                        ErrorCode::NotFound,
                        format!("user {user} has no workspace {name}"),
                    ),
                }
            }
            "wssRemove" => {
                let user = cmd.get_text("user").expect("validated");
                let name = cmd.get_text("name").expect("validated");
                let Some(list) = self.workspaces.get_mut(user) else {
                    return Reply::err(ErrorCode::NotFound, format!("no workspaces for {user}"));
                };
                let Some(pos) = list.iter().position(|w| w.name == name) else {
                    return Reply::err(ErrorCode::NotFound, format!("no workspace {name}"));
                };
                let record = list.remove(pos);
                let _ = ctx.call(
                    &record.vnc_addr,
                    &CmdLine::new("vncClose").arg("session", record.session.as_str()),
                );
                Reply::ok()
            }
            "onUserAdded" => {
                // Scenario 1: a brand-new user gets a default workspace.
                let Some(user) = cmd.get_text("username").map(str::to_string) else {
                    return Reply::err(ErrorCode::Semantics, "notification without username");
                };
                match self.create_workspace(ctx, &user, "default") {
                    Ok(_) => Reply::ok(),
                    Err(reply) => reply,
                }
            }
            "onUserAt" => {
                // Scenarios 3 & 4.
                let Some(user) = cmd.get_text("username").map(str::to_string) else {
                    return Reply::err(ErrorCode::Semantics, "notification without username");
                };
                let access_host = cmd.get_text("accessHost").unwrap_or("unknown").to_string();
                let list = self.workspaces.get(&user).cloned().unwrap_or_default();
                match list.len() {
                    0 => {
                        ctx.log("warn", format!("{user} identified but has no workspace"));
                        Reply::ok()
                    }
                    1 => self.show_workspace(ctx, &list[0], &access_host),
                    _ => {
                        // Several workspaces: raise the selector (Fig. 19's
                        // "Workspace Selector"); the user confirms via
                        // `wssShow`.
                        let names: Vec<Scalar> =
                            list.iter().map(|w| Scalar::Str(w.name.clone())).collect();
                        ctx.fire_event(
                            CmdLine::new("workspaceSelector")
                                .arg("username", user.as_str())
                                .arg("accessHost", access_host.as_str())
                                .arg("workspaces", Value::Vector(names)),
                        );
                        Reply::ok()
                    }
                }
            }
            "wssStats" => {
                let users = self.workspaces.len() as i64;
                let total: i64 = self.workspaces.values().map(|l| l.len() as i64).sum();
                Reply::ok_with(|c| {
                    c.arg("users", users)
                        .arg("workspaces", total)
                        .arg("shows", self.shows as i64)
                })
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// Subscribe the WSS to the events it drives on: the AUD's `userAdded` and
/// the ID Monitor's `userAt`.
pub fn wire_wss(
    net: &SimNet,
    wss: &DaemonHandle,
    aud: &DaemonHandle,
    id_monitor: Option<&DaemonHandle>,
    identity: &ace_security::keys::KeyPair,
) -> Result<(), ClientError> {
    let mut to_aud = ServiceClient::connect(net, &wss.addr().host, aud.addr().clone(), identity)?;
    to_aud.call_ok(
        &CmdLine::new("addNotification")
            .arg("cmd", "userAdded")
            .arg("service", wss.name())
            .arg("host", wss.addr().host.as_str())
            .arg("port", wss.addr().port)
            .arg("notifyCmd", "onUserAdded"),
    )?;
    if let Some(monitor) = id_monitor {
        let mut to_monitor =
            ServiceClient::connect(net, &wss.addr().host, monitor.addr().clone(), identity)?;
        to_monitor.call_ok(
            &CmdLine::new("addNotification")
                .arg("cmd", "userAt")
                .arg("service", wss.name())
                .arg("host", wss.addr().host.as_str())
                .arg("port", wss.addr().port)
                .arg("notifyCmd", "onUserAt"),
        )?;
    }
    Ok(())
}
