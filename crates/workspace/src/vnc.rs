//! The VNC substitution: workspace session hosting and remote viewers
//! (§5.4, Fig. 16).
//!
//! "The VNC server is responsible for actually housing or running the
//! user's workspace, maintaining all state information, and accepting input
//! and output to the workspace … the VNC viewer is simply a client program
//! that runs remotely on a simple network access point."
//!
//! A [`VncHost`] daemon hosts many workspace sessions (like an Xvnc server
//! hosting displays).  Applications draw into sessions with `vncDraw`;
//! attached viewers receive tile updates as datagrams and replicate the
//! framebuffer.  Session passwords gate attachment — managed invisibly by
//! the WSS exactly as the paper describes.

use crate::framebuffer::{Framebuffer, TileUpdate};
use ace_core::prelude::*;
use ace_core::protocol::hex_decode;
use ace_net::DatagramSocket;
use std::collections::HashMap;
use std::time::Duration;

/// One hosted workspace session.
#[derive(Debug)]
struct Session {
    user: String,
    password: String,
    fb: Framebuffer,
    viewers: Vec<Addr>,
    /// Keyboard/pointer events delivered to the workspace.
    input_log: Vec<String>,
}

/// The VNC host behavior.
pub struct VncHost {
    sessions: HashMap<String, Session>,
    next_id: u64,
}

impl VncHost {
    pub fn new() -> VncHost {
        VncHost {
            sessions: HashMap::new(),
            next_id: 1,
        }
    }
}

impl Default for VncHost {
    fn default() -> Self {
        VncHost::new()
    }
}

impl VncHost {
    fn push_updates(ctx: &ServiceCtx, session_id: &str, viewers: &[Addr], updates: &[TileUpdate]) {
        let from = ctx.addr();
        for update in updates {
            let wire = update.to_wire(session_id);
            for viewer in viewers {
                let _ = ctx.net().send_datagram(&from, viewer, wire.clone());
            }
        }
    }
}

impl ServiceBehavior for VncHost {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("vncCreate", "create a workspace session")
                    .required("user", ArgType::Word, "owning user")
                    .required("password", ArgType::Str, "session password")
                    .optional("width", ArgType::Int, "pixels (default 1024)")
                    .optional("height", ArgType::Int, "pixels (default 768)"),
            )
            .with(
                CmdSpec::new("vncDraw", "an application drew into the session")
                    .required("session", ArgType::Word, "session id")
                    .required("x", ArgType::Int, "rect x")
                    .required("y", ArgType::Int, "rect y")
                    .required("w", ArgType::Int, "rect width")
                    .required("h", ArgType::Int, "rect height")
                    .required("data", ArgType::Word, "hex content payload"),
            )
            .with(
                CmdSpec::new("vncAttach", "attach a viewer (password-gated)")
                    .required("session", ArgType::Word, "session id")
                    .required("password", ArgType::Str, "session password")
                    .required("host", ArgType::Word, "viewer datagram host")
                    .required("port", ArgType::Int, "viewer datagram port"),
            )
            .with(
                CmdSpec::new("vncDetach", "detach a viewer")
                    .required("session", ArgType::Word, "session id")
                    .required("host", ArgType::Word, "viewer host")
                    .required("port", ArgType::Int, "viewer port"),
            )
            .with(
                CmdSpec::new("vncInput", "deliver an input event to the workspace")
                    .required("session", ArgType::Word, "session id")
                    .required("event", ArgType::Str, "the event"),
            )
            .with(CmdSpec::new("vncState", "session state summary").required(
                "session",
                ArgType::Word,
                "session id",
            ))
            .with(
                CmdSpec::new("vncSetPassword", "rotate the session password (WSS only)")
                    .required("session", ArgType::Word, "session id")
                    .required("password", ArgType::Str, "new password"),
            )
            .with(CmdSpec::new("vncClose", "destroy a session").required(
                "session",
                ArgType::Word,
                "session id",
            ))
            .with(CmdSpec::new("vncList", "all hosted sessions"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "vncCreate" => {
                let id = format!("ws_{}", self.next_id);
                self.next_id += 1;
                let session = Session {
                    user: cmd.get_text("user").expect("validated").to_string(),
                    password: cmd.get_text("password").expect("validated").to_string(),
                    fb: Framebuffer::new(
                        cmd.get_int("width").unwrap_or(1024).max(16) as u32,
                        cmd.get_int("height").unwrap_or(768).max(16) as u32,
                    ),
                    viewers: Vec::new(),
                    input_log: Vec::new(),
                };
                ctx.log(
                    "info",
                    format!("created workspace session {id} for {}", session.user),
                );
                self.sessions.insert(id.clone(), session);
                Reply::ok_with(|c| c.arg("session", id))
            }
            "vncDraw" => {
                let id = cmd.get_text("session").expect("validated");
                let Some(session) = self.sessions.get_mut(id) else {
                    return Reply::err(ErrorCode::NotFound, format!("no session {id}"));
                };
                let Some(data) = hex_decode(cmd.get_text("data").expect("validated")) else {
                    return Reply::err(ErrorCode::Semantics, "data is not valid hex");
                };
                let updates = session.fb.draw_rect(
                    cmd.get_int("x").expect("validated").max(0) as u32,
                    cmd.get_int("y").expect("validated").max(0) as u32,
                    cmd.get_int("w").expect("validated").max(0) as u32,
                    cmd.get_int("h").expect("validated").max(0) as u32,
                    &data,
                );
                Self::push_updates(ctx, id, &session.viewers, &updates);
                Reply::ok_with(|c| {
                    c.arg("tiles", updates.len() as i64)
                        .arg("seq", session.fb.seq() as i64)
                })
            }
            "vncAttach" => {
                let id = cmd.get_text("session").expect("validated");
                let Some(session) = self.sessions.get_mut(id) else {
                    return Reply::err(ErrorCode::NotFound, format!("no session {id}"));
                };
                if session.password != cmd.get_text("password").expect("validated") {
                    ctx.log("security", format!("bad VNC password for session {id}"));
                    return Reply::err(ErrorCode::Denied, "bad password");
                }
                let viewer = Addr::new(
                    cmd.get_text("host").expect("validated"),
                    cmd.get_int("port").expect("validated") as u16,
                );
                if !session.viewers.contains(&viewer) {
                    session.viewers.push(viewer.clone());
                }
                // Attach-time full transfer.
                let full = session.fb.full_frame();
                Self::push_updates(ctx, id, std::slice::from_ref(&viewer), &full);
                let (w, h) = session.fb.size();
                Reply::ok_with(|c| {
                    c.arg("width", w as i64).arg("height", h as i64).arg(
                        "checksum",
                        Value::Word(format!("x{:016x}", session.fb.checksum())),
                    )
                })
            }
            "vncDetach" => {
                let id = cmd.get_text("session").expect("validated");
                let Some(session) = self.sessions.get_mut(id) else {
                    return Reply::err(ErrorCode::NotFound, format!("no session {id}"));
                };
                let viewer = Addr::new(
                    cmd.get_text("host").expect("validated"),
                    cmd.get_int("port").expect("validated") as u16,
                );
                session.viewers.retain(|v| v != &viewer);
                Reply::ok()
            }
            "vncInput" => {
                let id = cmd.get_text("session").expect("validated");
                let Some(session) = self.sessions.get_mut(id) else {
                    return Reply::err(ErrorCode::NotFound, format!("no session {id}"));
                };
                session
                    .input_log
                    .push(cmd.get_text("event").expect("validated").to_string());
                Reply::ok()
            }
            "vncState" => {
                let id = cmd.get_text("session").expect("validated");
                match self.sessions.get(id) {
                    Some(s) => Reply::ok_with(|c| {
                        c.arg("user", s.user.as_str())
                            .arg("viewers", s.viewers.len() as i64)
                            .arg("inputs", s.input_log.len() as i64)
                            .arg("seq", s.fb.seq() as i64)
                            .arg(
                                "checksum",
                                Value::Word(format!("x{:016x}", s.fb.checksum())),
                            )
                    }),
                    None => Reply::err(ErrorCode::NotFound, format!("no session {id}")),
                }
            }
            "vncSetPassword" => {
                let id = cmd.get_text("session").expect("validated");
                match self.sessions.get_mut(id) {
                    Some(s) => {
                        s.password = cmd.get_text("password").expect("validated").to_string();
                        Reply::ok()
                    }
                    None => Reply::err(ErrorCode::NotFound, format!("no session {id}")),
                }
            }
            "vncClose" => {
                let id = cmd.get_text("session").expect("validated");
                if self.sessions.remove(id).is_some() {
                    Reply::ok()
                } else {
                    Reply::err(ErrorCode::NotFound, format!("no session {id}"))
                }
            }
            "vncList" => {
                let mut ids: Vec<&String> = self.sessions.keys().collect();
                ids.sort();
                let rows: Vec<Vec<Scalar>> = ids
                    .iter()
                    .map(|id| {
                        vec![
                            Scalar::Str((*id).clone()),
                            Scalar::Str(self.sessions[*id].user.clone()),
                        ]
                    })
                    .collect();
                Reply::ok_with(|c| {
                    c.arg("count", rows.len() as i64)
                        .arg("sessions", Value::Array(rows))
                })
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// A viewer: binds a datagram socket on the access point and replicates the
/// session framebuffer from tile updates.
pub struct VncViewer {
    session: String,
    socket: DatagramSocket,
    fb: Framebuffer,
}

impl std::fmt::Debug for VncViewer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VncViewer(session {} at {})",
            self.session,
            self.socket.addr()
        )
    }
}

impl VncViewer {
    /// Bind the viewer's datagram socket and attach to `session` on the VNC
    /// host, authenticating with `password`.
    pub fn attach(
        net: &SimNet,
        access_host: &HostId,
        viewer_port: u16,
        vnc_host: &Addr,
        session: &str,
        password: &str,
        identity: &ace_security::keys::KeyPair,
    ) -> Result<VncViewer, ClientError> {
        let socket = net
            .bind_datagram(Addr::new(access_host.clone(), viewer_port))
            .map_err(|e| ClientError::Link(ace_core::LinkError::Net(e)))?;
        let mut client = ServiceClient::connect(net, access_host, vnc_host.clone(), identity)?;
        let reply = client.call(
            &CmdLine::new("vncAttach")
                .arg("session", session)
                .arg("password", Value::Str(password.into()))
                .arg("host", access_host.as_str())
                .arg("port", viewer_port),
        )?;
        let width = reply.get_int("width").unwrap_or(1024) as u32;
        let height = reply.get_int("height").unwrap_or(768) as u32;
        Ok(VncViewer {
            session: session.to_string(),
            socket,
            fb: Framebuffer::new(width, height),
        })
    }

    /// Drain pending updates into the local framebuffer; returns how many
    /// were applied.
    pub fn pump(&mut self) -> usize {
        let mut applied = 0;
        while let Some(datagram) = self.socket.try_recv() {
            if let Some((session, update)) = TileUpdate::from_wire(&datagram.payload) {
                if session == self.session {
                    self.fb.apply(update);
                    applied += 1;
                }
            }
        }
        applied
    }

    /// Block until at least one update arrives (or timeout), then drain.
    pub fn pump_wait(&mut self, timeout: Duration) -> usize {
        match self.socket.recv_timeout(timeout) {
            Ok(datagram) => {
                let mut applied = 0;
                if let Some((session, update)) = TileUpdate::from_wire(&datagram.payload) {
                    if session == self.session {
                        self.fb.apply(update);
                        applied += 1;
                    }
                }
                applied + self.pump()
            }
            Err(_) => 0,
        }
    }

    /// The replicated framebuffer.
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }

    /// Local checksum (compare against `vncState`'s).
    pub fn checksum(&self) -> u64 {
        self.fb.checksum()
    }
}
