//! The virtual framebuffer underlying a user workspace.
//!
//! VNC's remote framebuffer protocol is substituted (see DESIGN.md) by a
//! tile-hash model: the workspace surface is a grid of tiles, each carrying
//! a content hash and an update sequence number.  Applications "draw" by
//! writing tile payloads; viewers replicate the grid from tile-update
//! messages and converge to the same checksum.  This preserves what the
//! experiments need from VNC — dirty-region tracking, incremental updates,
//! attach-time full transfers, and update throughput — without pixel data.

use ace_security::hash::fnv64;

/// Tile side in abstract pixels (VNC implementations commonly use 16×16).
pub const TILE_PIXELS: u32 = 16;

/// One tile's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tile {
    /// Hash of the tile's current content.
    pub hash: u64,
    /// Bumped on every write to the tile.
    pub seq: u64,
}

/// A tiled virtual framebuffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    width_px: u32,
    height_px: u32,
    cols: u32,
    rows: u32,
    tiles: Vec<Tile>,
    /// Global update counter.
    seq: u64,
}

/// One tile update, as shipped to viewers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileUpdate {
    pub col: u32,
    pub row: u32,
    pub hash: u64,
    pub seq: u64,
}

impl Framebuffer {
    /// A blank framebuffer of the given pixel dimensions.
    pub fn new(width_px: u32, height_px: u32) -> Framebuffer {
        let cols = width_px.div_ceil(TILE_PIXELS).max(1);
        let rows = height_px.div_ceil(TILE_PIXELS).max(1);
        Framebuffer {
            width_px,
            height_px,
            cols,
            rows,
            tiles: vec![Tile::default(); (cols * rows) as usize],
            seq: 0,
        }
    }

    /// Pixel dimensions.
    pub fn size(&self) -> (u32, u32) {
        (self.width_px, self.height_px)
    }

    /// Grid dimensions.
    pub fn grid(&self) -> (u32, u32) {
        (self.cols, self.rows)
    }

    /// Total updates applied.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn index(&self, col: u32, row: u32) -> Option<usize> {
        (col < self.cols && row < self.rows).then(|| (row * self.cols + col) as usize)
    }

    /// Draw `data` into the tile at `(col, row)`.  Returns the update to
    /// broadcast, or `None` if out of bounds or a no-op (same content).
    pub fn draw(&mut self, col: u32, row: u32, data: &[u8]) -> Option<TileUpdate> {
        let idx = self.index(col, row)?;
        let hash = fnv64(data);
        if self.tiles[idx].hash == hash {
            return None; // identical content: VNC sends nothing
        }
        self.seq += 1;
        self.tiles[idx] = Tile {
            hash,
            seq: self.seq,
        };
        Some(TileUpdate {
            col,
            row,
            hash,
            seq: self.seq,
        })
    }

    /// Draw a pixel rectangle, touching every tile it overlaps (models an
    /// application window repaint).  Returns the updates.
    pub fn draw_rect(&mut self, x: u32, y: u32, w: u32, h: u32, data: &[u8]) -> Vec<TileUpdate> {
        if w == 0 || h == 0 {
            return Vec::new();
        }
        let c0 = x / TILE_PIXELS;
        let r0 = y / TILE_PIXELS;
        let c1 = ((x + w - 1) / TILE_PIXELS).min(self.cols.saturating_sub(1));
        let r1 = ((y + h - 1) / TILE_PIXELS).min(self.rows.saturating_sub(1));
        let mut updates = Vec::new();
        for row in r0..=r1 {
            for col in c0..=c1 {
                // Mix the tile coordinates into the content so overlapping
                // tiles differ.
                let mut payload = Vec::with_capacity(data.len() + 8);
                payload.extend_from_slice(&col.to_le_bytes());
                payload.extend_from_slice(&row.to_le_bytes());
                payload.extend_from_slice(data);
                if let Some(u) = self.draw(col, row, &payload) {
                    updates.push(u);
                }
            }
        }
        updates
    }

    /// Apply an update received from the server side (viewer path).
    pub fn apply(&mut self, update: TileUpdate) {
        if let Some(idx) = self.index(update.col, update.row) {
            // Out-of-order datagrams: keep the newest.
            if update.seq >= self.tiles[idx].seq {
                self.tiles[idx] = Tile {
                    hash: update.hash,
                    seq: update.seq,
                };
                self.seq = self.seq.max(update.seq);
            }
        }
    }

    /// Every tile as an update (attach-time full transfer).
    pub fn full_frame(&self) -> Vec<TileUpdate> {
        let mut out = Vec::with_capacity(self.tiles.len());
        for row in 0..self.rows {
            for col in 0..self.cols {
                let t = self.tiles[(row * self.cols + col) as usize];
                out.push(TileUpdate {
                    col,
                    row,
                    hash: t.hash,
                    seq: t.seq,
                });
            }
        }
        out
    }

    /// Content checksum over all tile hashes — two framebuffers with equal
    /// checksums show the same picture.
    pub fn checksum(&self) -> u64 {
        let mut material = Vec::with_capacity(self.tiles.len() * 8);
        for t in &self.tiles {
            material.extend_from_slice(&t.hash.to_le_bytes());
        }
        fnv64(&material)
    }

    /// Tiles whose seq exceeds `after` (incremental update query).
    pub fn updates_since(&self, after: u64) -> Vec<TileUpdate> {
        self.full_frame()
            .into_iter()
            .filter(|u| u.seq > after)
            .collect()
    }
}

impl TileUpdate {
    /// Datagram wire form: `fb <session> <col> <row> <hash> <seq>`.
    pub fn to_wire(&self, session: &str) -> Vec<u8> {
        format!(
            "fb {session} {} {} {:016x} {}",
            self.col, self.row, self.hash, self.seq
        )
        .into_bytes()
    }

    /// Parse the datagram wire form; returns `(session, update)`.
    pub fn from_wire(payload: &[u8]) -> Option<(String, TileUpdate)> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut parts = text.split(' ');
        if parts.next()? != "fb" {
            return None;
        }
        let session = parts.next()?.to_string();
        let col = parts.next()?.parse().ok()?;
        let row = parts.next()?.parse().ok()?;
        let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
        let seq = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some((
            session,
            TileUpdate {
                col,
                row,
                hash,
                seq,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_framebuffers_match() {
        let a = Framebuffer::new(1024, 768);
        let b = Framebuffer::new(1024, 768);
        assert_eq!(a.checksum(), b.checksum());
        assert_eq!(a.grid(), (64, 48));
    }

    #[test]
    fn draw_changes_checksum_and_noop_does_not() {
        let mut fb = Framebuffer::new(320, 240);
        let before = fb.checksum();
        let u = fb.draw(0, 0, b"window").unwrap();
        assert_ne!(fb.checksum(), before);
        assert_eq!(u.seq, 1);
        // Same content again: no update.
        assert!(fb.draw(0, 0, b"window").is_none());
        assert_eq!(fb.seq(), 1);
    }

    #[test]
    fn out_of_bounds_draw_ignored() {
        let mut fb = Framebuffer::new(32, 32); // 2x2 tiles
        assert!(fb.draw(5, 5, b"x").is_none());
    }

    #[test]
    fn rect_touches_overlapping_tiles() {
        let mut fb = Framebuffer::new(64, 64); // 4x4 tiles
        let updates = fb.draw_rect(8, 8, 20, 20, b"win");
        // Rect spans tiles (0..=1, 0..=1).
        assert_eq!(updates.len(), 4);
    }

    #[test]
    fn viewer_converges_via_updates() {
        let mut server = Framebuffer::new(320, 240);
        let mut viewer = Framebuffer::new(320, 240);
        for i in 0..20u32 {
            let updates = server.draw_rect(i * 7 % 300, i * 11 % 220, 30, 10, &i.to_le_bytes());
            for u in updates {
                viewer.apply(u);
            }
        }
        assert_eq!(server.checksum(), viewer.checksum());
    }

    #[test]
    fn viewer_converges_despite_reordering() {
        let mut server = Framebuffer::new(160, 160);
        let mut updates = Vec::new();
        for i in 0..30u32 {
            updates.extend(server.draw_rect(i % 100, i % 100, 40, 40, &i.to_le_bytes()));
        }
        // Deliver in reverse order: newest-seq still wins per tile.
        let mut viewer = Framebuffer::new(160, 160);
        for u in updates.iter().rev() {
            viewer.apply(*u);
        }
        assert_eq!(server.checksum(), viewer.checksum());
    }

    #[test]
    fn full_frame_attach() {
        let mut server = Framebuffer::new(320, 240);
        server.draw_rect(0, 0, 320, 240, b"desktop");
        let mut viewer = Framebuffer::new(320, 240);
        for u in server.full_frame() {
            viewer.apply(u);
        }
        assert_eq!(server.checksum(), viewer.checksum());
    }

    #[test]
    fn incremental_updates_since() {
        let mut fb = Framebuffer::new(320, 240);
        fb.draw(0, 0, b"a");
        let mark = fb.seq();
        fb.draw(1, 1, b"b");
        let inc = fb.updates_since(mark);
        assert_eq!(inc.len(), 1);
        assert_eq!((inc[0].col, inc[0].row), (1, 1));
    }

    #[test]
    fn wire_roundtrip() {
        let u = TileUpdate {
            col: 3,
            row: 7,
            hash: 0xdeadbeef,
            seq: 42,
        };
        let wire = u.to_wire("sess_1");
        let (session, back) = TileUpdate::from_wire(&wire).unwrap();
        assert_eq!(session, "sess_1");
        assert_eq!(back, u);
        assert!(TileUpdate::from_wire(b"garbage").is_none());
    }
}
