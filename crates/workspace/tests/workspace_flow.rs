//! Integration tests of the workspace tier: session hosting, viewer
//! replication (Fig. 16), password gating, and the WSS event wiring of
//! Scenarios 1, 3, and 4.

use ace_core::prelude::*;
use ace_core::protocol::hex_encode;
use ace_directory::{bootstrap, Framework};
use ace_identity::{IdMonitor, UserDb, UserDbClient};
use ace_resources::{spawn_host_services, spawn_system_services, HostProfile};
use ace_security::keys::KeyPair;
use ace_workspace::{wire_wss, VncHost, VncViewer, Wss};
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

struct World {
    net: SimNet,
    fw: Framework,
    extra: Vec<DaemonHandle>,
}

fn world(hosts: &[&str]) -> World {
    let net = SimNet::new();
    net.add_host("core");
    for h in hosts {
        net.add_host(*h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    World {
        net,
        fw,
        extra: Vec::new(),
    }
}

impl World {
    fn teardown(self) {
        for d in self.extra.into_iter().rev() {
            d.shutdown();
        }
        self.fw.shutdown();
    }
}

#[test]
fn viewer_replicates_session_framebuffer() {
    let mut w = world(&["vhost", "podium"]);
    let me = keypair();
    let vnc = Daemon::spawn(
        &w.net,
        w.fw.service_config("vnc_vhost", "Service.VNCHost", "machineroom", "vhost", 5500),
        Box::new(VncHost::new()),
    )
    .unwrap();

    let mut client =
        ServiceClient::connect(&w.net, &"podium".into(), vnc.addr().clone(), &me).unwrap();
    let created = client
        .call(
            &CmdLine::new("vncCreate")
                .arg("user", "jdoe")
                .arg("password", Value::Str("s3cret".into()))
                .arg("width", 320)
                .arg("height", 240),
        )
        .unwrap();
    let session = created.get_text("session").unwrap().to_string();

    // Draw before the viewer attaches — the attach-time full transfer must
    // cover it.
    client
        .call(
            &CmdLine::new("vncDraw")
                .arg("session", session.as_str())
                .arg("x", 0)
                .arg("y", 0)
                .arg("w", 100)
                .arg("h", 80)
                .arg("data", hex_encode(b"xterm")),
        )
        .unwrap();

    let mut viewer = VncViewer::attach(
        &w.net,
        &"podium".into(),
        6000,
        vnc.addr(),
        &session,
        "s3cret",
        &me,
    )
    .unwrap();
    // Drain the full-frame transfer.
    while viewer.pump_wait(Duration::from_millis(300)) > 0 {}

    // Draw after attach — incremental updates flow.
    client
        .call(
            &CmdLine::new("vncDraw")
                .arg("session", session.as_str())
                .arg("x", 120)
                .arg("y", 60)
                .arg("w", 64)
                .arg("h", 64)
                .arg("data", hex_encode(b"presentation.ppt")),
        )
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        viewer.pump_wait(Duration::from_millis(100));
        let state = client
            .call(&CmdLine::new("vncState").arg("session", session.as_str()))
            .unwrap();
        let server_sum = state.get_text("checksum").unwrap().to_string();
        if format!("x{:016x}", viewer.checksum()) == server_sum {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "viewer never converged"
        );
    }

    w.extra.push(vnc);
    w.teardown();
}

#[test]
fn attach_requires_password() {
    let mut w = world(&["vhost", "podium"]);
    let me = keypair();
    let vnc = Daemon::spawn(
        &w.net,
        w.fw.service_config("vnc_vhost", "Service.VNCHost", "machineroom", "vhost", 5500),
        Box::new(VncHost::new()),
    )
    .unwrap();
    let mut client =
        ServiceClient::connect(&w.net, &"podium".into(), vnc.addr().clone(), &me).unwrap();
    let created = client
        .call(
            &CmdLine::new("vncCreate")
                .arg("user", "jdoe")
                .arg("password", Value::Str("right".into())),
        )
        .unwrap();
    let session = created.get_text("session").unwrap().to_string();

    let err = VncViewer::attach(
        &w.net,
        &"podium".into(),
        6000,
        vnc.addr(),
        &session,
        "wrong",
        &me,
    )
    .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Denied));

    // Input events reach the session; state reflects them.
    client
        .call_ok(
            &CmdLine::new("vncInput")
                .arg("session", session.as_str())
                .arg("event", Value::Str("key:Enter".into())),
        )
        .unwrap();
    let state = client
        .call(&CmdLine::new("vncState").arg("session", session.as_str()))
        .unwrap();
    assert_eq!(state.get_int("inputs"), Some(1));

    w.extra.push(vnc);
    w.teardown();
}

/// Scenario 1 end-to-end: adding a user provisions a default workspace
/// through AUD → WSS → SAL → SRM → HAL → VNC host.
#[test]
fn scenario1_new_user_gets_default_workspace() {
    let mut w = world(&["bar", "tube"]);
    let me = keypair();
    let john = keypair();

    // Resource tier on both hosts, VNC hosts on both, system services.
    for h in ["bar", "tube"] {
        let (hrm, hal) = spawn_host_services(&w.net, &w.fw, h, HostProfile::default()).unwrap();
        w.extra.push(hrm);
        w.extra.push(hal);
        let vnc = Daemon::spawn(
            &w.net,
            w.fw.service_config(
                &format!("vnc_{h}"),
                "Service.VNCHost",
                "machineroom",
                h,
                5500,
            ),
            Box::new(VncHost::new()),
        )
        .unwrap();
        w.extra.push(vnc);
    }
    let (srm, sal) = spawn_system_services(&w.net, &w.fw, "core").unwrap();
    w.extra.push(srm);
    w.extra.push(sal);

    let aud = Daemon::spawn(
        &w.net,
        w.fw.service_config("aud", "Service.Database.User", "machineroom", "core", 5200),
        Box::new(UserDb::new()),
    )
    .unwrap();
    let wss = Daemon::spawn(
        &w.net,
        w.fw.service_config(
            "wss",
            "Service.WorkspaceServer",
            "machineroom",
            "core",
            5600,
        ),
        Box::new(Wss::new()),
    )
    .unwrap();
    wire_wss(&w.net, &wss, &aud, None, &me).unwrap();

    // The administrator registers John (Scenario 1).
    let mut aud_client =
        UserDbClient::connect(&w.net, &"core".into(), aud.addr().clone(), &me).unwrap();
    aud_client
        .add_user(
            "jdoe",
            "John Doe",
            "pw",
            &john.principal(),
            Some("fp_jdoe"),
            None,
        )
        .unwrap();

    // The default workspace appears (async notification chain).
    let mut wss_client =
        ServiceClient::connect(&w.net, &"core".into(), wss.addr().clone(), &me).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let list = loop {
        let reply = wss_client
            .call(&CmdLine::new("wssList").arg("user", "jdoe"))
            .unwrap();
        if reply.get_int("count") == Some(1) {
            break reply;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "default workspace never appeared"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let rows = list.get_array("workspaces").unwrap();
    assert_eq!(rows[0][0].as_text(), Some("default"));

    w.extra.push(aud);
    w.extra.push(wss);
    w.teardown();
}

/// Scenarios 2+3+4 end-to-end: identification at the podium brings up the
/// single workspace; with two workspaces the selector event fires instead.
#[test]
fn scenario3_and_4_show_and_selector() {
    let w = world(&["bar", "podium"]);
    let me = keypair();
    let john = keypair();

    let vnc = Daemon::spawn(
        &w.net,
        w.fw.service_config("vnc_bar", "Service.VNCHost", "machineroom", "bar", 5500),
        Box::new(VncHost::new()),
    )
    .unwrap();
    let aud = Daemon::spawn(
        &w.net,
        w.fw.service_config("aud", "Service.Database.User", "machineroom", "core", 5200),
        Box::new(UserDb::new()),
    )
    .unwrap();
    let monitor = Daemon::spawn(
        &w.net,
        w.fw.service_config(
            "idmonitor",
            "Service.IDMonitor",
            "machineroom",
            "core",
            5301,
        ),
        Box::new(IdMonitor::new()),
    )
    .unwrap();
    let fiu = Daemon::spawn(
        &w.net,
        w.fw.service_config("fiu_hawk", "Service.Device.FIU", "hawk", "podium", 5300),
        Box::new(ace_identity::Fiu::new({
            let mut d = ace_identity::ScannerDevice::default();
            d.enroll("fp_jdoe", 0.95);
            d
        })),
    )
    .unwrap();
    ace_identity::IdMonitor::subscribe_to_devices(&w.net, &monitor, &[&fiu], &me).unwrap();
    let wss = Daemon::spawn(
        &w.net,
        w.fw.service_config(
            "wss",
            "Service.WorkspaceServer",
            "machineroom",
            "core",
            5600,
        ),
        Box::new(Wss::new()),
    )
    .unwrap();
    wire_wss(&w.net, &wss, &aud, Some(&monitor), &me).unwrap();

    // A listener service records workspaceReady / workspaceSelector events.
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    #[derive(Default)]
    struct Recorder {
        ready: Arc<AtomicU64>,
        selector: Arc<AtomicU64>,
        last_ready: Arc<Mutex<Option<CmdLine>>>,
    }
    impl ServiceBehavior for Recorder {
        fn semantics(&self) -> Semantics {
            Semantics::new()
                .with(
                    CmdSpec::new("onReady", "sink")
                        .optional("service", ArgType::Str, "")
                        .optional("cmd", ArgType::Str, "")
                        .optional("username", ArgType::Word, "")
                        .optional("workspace", ArgType::Word, "")
                        .optional("session", ArgType::Word, "")
                        .optional("vncHost", ArgType::Word, "")
                        .optional("vncPort", ArgType::Int, "")
                        .optional("password", ArgType::Str, "")
                        .optional("accessHost", ArgType::Word, ""),
                )
                .with(
                    CmdSpec::new("onSelector", "sink")
                        .optional("service", ArgType::Str, "")
                        .optional("cmd", ArgType::Str, "")
                        .optional("username", ArgType::Word, "")
                        .optional("accessHost", ArgType::Word, "")
                        .optional("workspaces", ArgType::Vector(ace_lang::ScalarType::Str), ""),
                )
        }
        fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
            match cmd.name() {
                "onReady" => {
                    self.ready.fetch_add(1, Ordering::SeqCst);
                    *self.last_ready.lock().unwrap() = Some(cmd.clone());
                }
                "onSelector" => {
                    self.selector.fetch_add(1, Ordering::SeqCst);
                }
                _ => {}
            }
            Reply::ok()
        }
    }
    let recorder = Recorder::default();
    let ready = Arc::clone(&recorder.ready);
    let selector = Arc::clone(&recorder.selector);
    let last_ready = Arc::clone(&recorder.last_ready);
    let rec = Daemon::spawn(
        &w.net,
        w.fw.service_config("recorder", "Service.Test", "machineroom", "core", 5700),
        Box::new(recorder),
    )
    .unwrap();
    let mut to_wss =
        ServiceClient::connect(&w.net, &"core".into(), wss.addr().clone(), &me).unwrap();
    for (event, sink) in [
        ("workspaceReady", "onReady"),
        ("workspaceSelector", "onSelector"),
    ] {
        to_wss
            .call_ok(
                &CmdLine::new("addNotification")
                    .arg("cmd", event)
                    .arg("service", "recorder")
                    .arg("host", "core")
                    .arg("port", 5700)
                    .arg("notifyCmd", sink),
            )
            .unwrap();
    }

    // Register John (auto-creates the default workspace).
    let mut aud_client =
        UserDbClient::connect(&w.net, &"core".into(), aud.addr().clone(), &me).unwrap();
    aud_client
        .add_user(
            "jdoe",
            "John Doe",
            "pw",
            &john.principal(),
            Some("fp_jdoe"),
            None,
        )
        .unwrap();
    // Wait for the workspace to exist.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while to_wss
        .call(&CmdLine::new("wssList").arg("user", "jdoe"))
        .unwrap()
        .get_int("count")
        != Some(1)
    {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(20));
    }

    // Scenario 3: John identifies at the podium → workspaceReady.
    let mut scanner =
        ServiceClient::connect(&w.net, &"podium".into(), fiu.addr().clone(), &john).unwrap();
    scanner
        .call(&CmdLine::new("press").arg("template", Value::Str("fp_jdoe".into())))
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while ready.load(Ordering::SeqCst) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "workspaceReady never fired"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The event carries everything the access point needs to attach.
    let event = last_ready.lock().unwrap().clone().unwrap();
    assert_eq!(event.get_text("accessHost"), Some("podium"));
    let session = event.get_text("session").unwrap().to_string();
    let password = event.get_text("password").unwrap().to_string();
    let vnc_addr = Addr::new(
        event.get_text("vncHost").unwrap(),
        event.get_int("vncPort").unwrap() as u16,
    );
    let viewer = VncViewer::attach(
        &w.net,
        &"podium".into(),
        6100,
        &vnc_addr,
        &session,
        &password,
        &me,
    );
    assert!(
        viewer.is_ok(),
        "access point can attach with the event's coordinates"
    );

    // Scenario 4: a second workspace → the selector fires on the next
    // identification.
    to_wss
        .call(
            &CmdLine::new("wssCreate")
                .arg("user", "jdoe")
                .arg("name", "slides"),
        )
        .unwrap();
    scanner
        .call(&CmdLine::new("press").arg("template", Value::Str("fp_jdoe".into())))
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while selector.load(Ordering::SeqCst) == 0 {
        assert!(std::time::Instant::now() < deadline, "selector never fired");
        std::thread::sleep(Duration::from_millis(20));
    }
    // And the confirm path: explicit show of the chosen workspace.
    let shown = to_wss
        .call(
            &CmdLine::new("wssShow")
                .arg("user", "jdoe")
                .arg("name", "slides")
                .arg("accessHost", "podium"),
        )
        .unwrap();
    assert!(shown.get_text("session").is_some());

    for d in [rec, wss, fiu, monitor, aud, vnc] {
        d.shutdown();
    }
    w.teardown();
}

#[test]
fn wss_remove_closes_session() {
    let mut w = world(&["bar"]);
    let me = keypair();
    let vnc = Daemon::spawn(
        &w.net,
        w.fw.service_config("vnc_bar", "Service.VNCHost", "machineroom", "bar", 5500),
        Box::new(VncHost::new()),
    )
    .unwrap();
    let wss = Daemon::spawn(
        &w.net,
        w.fw.service_config(
            "wss",
            "Service.WorkspaceServer",
            "machineroom",
            "core",
            5600,
        ),
        Box::new(Wss::new()),
    )
    .unwrap();

    let mut client =
        ServiceClient::connect(&w.net, &"core".into(), wss.addr().clone(), &me).unwrap();
    let created = client
        .call(&CmdLine::new("wssCreate").arg("user", "jdoe"))
        .unwrap();
    let session = created.get_text("session").unwrap().to_string();

    client
        .call_ok(
            &CmdLine::new("wssRemove")
                .arg("user", "jdoe")
                .arg("name", "default"),
        )
        .unwrap();

    // The session is gone on the VNC host.
    let mut vnc_client =
        ServiceClient::connect(&w.net, &"core".into(), vnc.addr().clone(), &me).unwrap();
    let err = vnc_client
        .call(&CmdLine::new("vncState").arg("session", session.as_str()))
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::NotFound));

    // Duplicate create rejected; unknown remove rejected.
    client
        .call(&CmdLine::new("wssCreate").arg("user", "jdoe"))
        .unwrap();
    let err = client
        .call(&CmdLine::new("wssCreate").arg("user", "jdoe"))
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::BadState));

    w.extra.push(vnc);
    w.extra.push(wss);
    w.teardown();
}
