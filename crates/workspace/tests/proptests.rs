//! Property tests on the framebuffer protocol: viewers converge to the
//! server under arbitrary draw sequences and arbitrary update reordering,
//! and the wire form is total.

use ace_workspace::{Framebuffer, TileUpdate};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Draw {
    x: u32,
    y: u32,
    w: u32,
    h: u32,
    payload: u64,
}

fn draw_strategy() -> impl Strategy<Value = Draw> {
    (0u32..320, 0u32..240, 1u32..128, 1u32..96, any::<u64>()).prop_map(|(x, y, w, h, payload)| {
        Draw {
            x,
            y,
            w,
            h,
            payload,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// In-order delivery converges the viewer exactly.
    #[test]
    fn viewer_converges_in_order(draws in prop::collection::vec(draw_strategy(), 0..32)) {
        let mut server = Framebuffer::new(320, 240);
        let mut viewer = Framebuffer::new(320, 240);
        for d in &draws {
            for u in server.draw_rect(d.x, d.y, d.w, d.h, &d.payload.to_le_bytes()) {
                viewer.apply(u);
            }
        }
        prop_assert_eq!(server.checksum(), viewer.checksum());
    }

    /// Arbitrary reordering of the whole update stream still converges
    /// (per-tile newest-seq wins).
    #[test]
    fn viewer_converges_reordered(
        draws in prop::collection::vec(draw_strategy(), 1..32),
        seed in any::<u64>(),
    ) {
        let mut server = Framebuffer::new(320, 240);
        let mut updates = Vec::new();
        for d in &draws {
            updates.extend(server.draw_rect(d.x, d.y, d.w, d.h, &d.payload.to_le_bytes()));
        }
        // Deterministic shuffle.
        let mut state = seed | 1;
        for i in (1..updates.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            updates.swap(i, (state as usize) % (i + 1));
        }
        let mut viewer = Framebuffer::new(320, 240);
        for u in updates {
            viewer.apply(u);
        }
        prop_assert_eq!(server.checksum(), viewer.checksum());
    }

    /// Losing a *prefix-closed per-tile* set of updates and then applying a
    /// full frame reconverges (the attach-time repair path).
    #[test]
    fn full_frame_repairs_any_loss(
        draws in prop::collection::vec(draw_strategy(), 1..24),
        keep_mask in any::<u64>(),
    ) {
        let mut server = Framebuffer::new(320, 240);
        let mut viewer = Framebuffer::new(320, 240);
        let mut i = 0u64;
        for d in &draws {
            for u in server.draw_rect(d.x, d.y, d.w, d.h, &d.payload.to_le_bytes()) {
                if keep_mask & (1 << (i % 64)) != 0 {
                    viewer.apply(u); // some arrive, some are lost
                }
                i += 1;
            }
        }
        for u in server.full_frame() {
            viewer.apply(u);
        }
        prop_assert_eq!(server.checksum(), viewer.checksum());
    }

    /// Wire round-trip for arbitrary updates and session names.
    #[test]
    fn update_wire_roundtrip(
        col in any::<u32>(),
        row in any::<u32>(),
        hash in any::<u64>(),
        seq in any::<u64>(),
        session in "[a-z_][a-z0-9_]{0,12}",
    ) {
        let u = TileUpdate { col, row, hash, seq };
        let (s, back) = TileUpdate::from_wire(&u.to_wire(&session)).unwrap();
        prop_assert_eq!(s, session);
        prop_assert_eq!(back, u);
    }

    /// The wire parser is total on arbitrary bytes.
    #[test]
    fn wire_parse_total(payload in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = TileUpdate::from_wire(&payload);
    }

    /// `updates_since(0)` equals the full frame restricted to drawn tiles.
    #[test]
    fn updates_since_zero_covers_all_draws(draws in prop::collection::vec(draw_strategy(), 0..16)) {
        let mut server = Framebuffer::new(320, 240);
        for d in &draws {
            server.draw_rect(d.x, d.y, d.w, d.h, &d.payload.to_le_bytes());
        }
        let mut viewer = Framebuffer::new(320, 240);
        for u in server.updates_since(0) {
            viewer.apply(u);
        }
        prop_assert_eq!(server.checksum(), viewer.checksum());
    }
}
