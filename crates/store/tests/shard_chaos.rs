//! The sharded store under fire: kill one replica in the middle of a
//! write storm and hold three properties:
//!
//! 1. **Zero lost acked writes** — every `put` that returned `Ok` is
//!    readable after the fault plan resolves, including through the
//!    snapshot-ship + WAL-tail rebuild of the victim replica.
//! 2. **Monotone incarnations** — the rebuilt replica comes back with a
//!    strictly higher incarnation than the one that died.
//! 3. **Shard-local blast radius** — groups that do not contain the
//!    victim serve reads and writes uninterrupted (zero errors) for the
//!    whole plan.

use ace_core::prelude::*;
use ace_net::fault::{FaultPlan, FaultPlanConfig};
use ace_security::keys::KeyPair;
use ace_store::{spawn_sharded_store, ShardedStoreClient, WalConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GROUPS: usize = 3;
const REPLICATION: usize = 3;
const WRITERS: usize = 4;
const SYNC: Duration = Duration::from_millis(100);
const PLAN_LEN: Duration = Duration::from_millis(1500);
const RECOVERY_DEADLINE: Duration = Duration::from_secs(15);

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

fn await_true(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + RECOVERY_DEADLINE;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One full chaos run for `seed`: the victim replica is a pure function
/// of the seed, the fault schedule is `FaultPlan::generate` over its host.
fn run_shard_chaos(seed: u64) {
    let net = SimNet::new();
    net.add_host("client");
    let hosts: Vec<HostId> = (0..GROUPS * REPLICATION)
        .map(|i| {
            let h = format!("s{i}");
            net.add_host(h.as_str());
            HostId::from(h.as_str())
        })
        .collect();
    let mut cluster = spawn_sharded_store(
        &net,
        &hosts,
        GROUPS,
        REPLICATION,
        SYNC,
        WalConfig::default(),
    )
    .unwrap();
    let placement = cluster.placement.clone();

    let client = |name: &str| {
        let identity = keypair();
        let pool = Arc::new(LinkPool::new(&net, "client", identity));
        let _ = name;
        ShardedStoreClient::new(net.clone(), "client", identity, pool, placement.clone())
    };

    // Pre-seed keys on every group so readers have stable targets.
    let mut seeder = client("seeder");
    for i in 0..30 {
        seeder.put("app", &format!("seed{i}"), b"steady").unwrap();
    }

    // The victim is derived from the seed.
    let victim_idx = (seed as usize) % (GROUPS * REPLICATION);
    let victim_group = victim_idx / REPLICATION;
    let victim_replica = victim_idx % REPLICATION;
    let victim_addr = placement.replicas(victim_group)[victim_replica].clone();
    let victim_host = victim_addr.host.clone();
    let old_incarnation = cluster.groups[victim_group][victim_replica].0.incarnation();

    let mut fault_config = FaultPlanConfig::new(PLAN_LEN, vec![victim_host.clone()]);
    fault_config.crash_windows = 2;
    fault_config.max_latency = Duration::from_millis(1);
    let plan = FaultPlan::generate(seed, &fault_config);
    assert_eq!(
        plan,
        FaultPlan::generate(seed, &fault_config),
        "fault schedule must be a pure function of the seed"
    );

    let foreign_write_errors = AtomicU64::new(0);
    let foreign_read_errors = AtomicU64::new(0);
    let victim_group_failures = AtomicU64::new(0);
    let reads_ok = AtomicU64::new(0);

    // Write storm: each writer records exactly the puts that were ACKED.
    // A quorum failure is a clean refusal, not a loss — losses are acked
    // writes that later read back wrong or missing.
    let acked: Vec<Vec<String>> = std::thread::scope(|scope| {
        let storm_deadline = Instant::now() + PLAN_LEN;
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let mut c = client("writer");
                let foreign_errors = &foreign_write_errors;
                let victim_failures = &victim_group_failures;
                scope.spawn(move || {
                    let mut acked = Vec::new();
                    let mut i = 0usize;
                    while Instant::now() < storm_deadline {
                        let key = format!("w{w}k{i}");
                        let on_victim_group = c.group_for("app", &key) == victim_group;
                        match c.put("app", &key, key.as_bytes()) {
                            Ok(_) => acked.push(key),
                            Err(_) if on_victim_group => {
                                victim_failures.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                foreign_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        i += 1;
                    }
                    acked
                })
            })
            .collect();

        // Read storm over the pre-seeded keys of non-victim groups: their
        // shards must serve uninterrupted while the victim's host flaps.
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let mut c = client("reader");
                let errors = &foreign_read_errors;
                let ok = &reads_ok;
                scope.spawn(move || {
                    let mut i = r;
                    while Instant::now() < storm_deadline {
                        let key = format!("seed{}", i % 30);
                        if c.group_for("app", &key) != victim_group {
                            match c.get("app", &key) {
                                Ok(v) if v == b"steady" => {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                }
                                _ => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        i += 1;
                    }
                })
            })
            .collect();

        let runner = plan.spawn(&net);
        let acked: Vec<Vec<String>> = writers
            .into_iter()
            .map(|h| h.join().expect("writer panicked"))
            .collect();
        for h in readers {
            h.join().expect("reader panicked");
        }
        runner.join(); // network fully healed
        acked
    });

    // Property 3: shard-local blast radius.
    assert_eq!(
        foreign_write_errors.load(Ordering::Relaxed),
        0,
        "seed {seed}: writes to non-victim groups failed"
    );
    assert_eq!(
        foreign_read_errors.load(Ordering::Relaxed),
        0,
        "seed {seed}: reads on non-victim groups failed"
    );
    assert!(reads_ok.load(Ordering::Relaxed) > 0, "read storm never ran");

    // Rebuild the victim via snapshot shipping + WAL tail.
    let report = cluster
        .rebuild_replica(&net, victim_group, victim_replica)
        .unwrap();
    assert!(
        report.snapshot_records > 0,
        "seed {seed}: rebuild shipped an empty snapshot: {report:?}"
    );
    assert_ne!(report.peer, victim_addr);

    // Property 2: monotone incarnations.
    let new_incarnation = cluster.groups[victim_group][victim_replica].0.incarnation();
    assert!(
        new_incarnation > old_incarnation,
        "seed {seed}: incarnation went {old_incarnation} -> {new_incarnation}"
    );

    // Property 1: zero lost acked writes — through the client...
    let total_acked: usize = acked.iter().map(Vec::len).sum();
    assert!(total_acked > 0, "seed {seed}: storm never acked a write");
    let mut auditor = client("auditor");
    for key in acked.iter().flatten() {
        assert_eq!(
            auditor.get("app", key).unwrap(),
            key.as_bytes(),
            "seed {seed}: acked write {key} lost after the fault plan"
        );
    }
    // ...and on the rebuilt disk itself, once tail + anti-entropy settle:
    // every acked key the victim's group owns must land there.
    let rebuilt = cluster.groups[victim_group][victim_replica].1.clone();
    let victim_keys: Vec<&String> = acked
        .iter()
        .flatten()
        .filter(|k| placement.group_for("app", k) == victim_group)
        .collect();
    assert!(
        !victim_keys.is_empty(),
        "seed {seed}: victim group owns no storm keys — rebalance the fixture"
    );
    await_true(
        "rebuilt replica to hold every acked victim-group key",
        || {
            victim_keys
                .iter()
                .all(|k| rebuilt.get(&("app".to_string(), (*k).clone())).is_some())
        },
    );

    eprintln!(
        "shard_chaos seed {seed:#x}: victim s{victim_group}r{victim_replica} ({victim_host}), \
         {total_acked} acked writes ({} on victim group), {} clean refusals, \
         snapshot {} records + tail {} via {}",
        victim_keys.len(),
        victim_group_failures.load(Ordering::Relaxed),
        report.snapshot_records,
        report.tail_records,
        report.peer,
    );

    cluster.shutdown();
}

#[test]
fn shard_chaos_seed_a() {
    run_shard_chaos(0xACE5);
}

#[test]
fn shard_chaos_seed_b() {
    run_shard_chaos(17);
}

/// Seed expansion hook for the CI soak job, mirroring `shard_failover`:
/// `CHAOS_SEEDS="0xACE3,42,7"` runs each listed seed.
#[test]
fn shard_chaos_env_seeds() {
    let Ok(spec) = std::env::var("CHAOS_SEEDS") else {
        return;
    };
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let seed = match token.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => token.parse(),
        }
        .unwrap_or_else(|_| panic!("CHAOS_SEEDS: unparsable seed `{token}`"));
        eprintln!("shard_chaos: running env seed {seed:#x}");
        run_shard_chaos(seed);
    }
}
