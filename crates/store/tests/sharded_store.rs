//! Integration tests of the sharded store plane: rendezvous routing,
//! placement bootstrap over the wire, parallel batch splitting, read
//! leases with quorum fallback, and snapshot-ship rebuild.

use ace_core::prelude::*;
use ace_security::keys::KeyPair;
use ace_store::{
    spawn_sharded_store, ShardedStoreClient, ShardedStoreCluster, StorePlacement, WalConfig,
};
use std::sync::Arc;
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

const SYNC: Duration = Duration::from_millis(100);

struct World {
    net: SimNet,
    cluster: ShardedStoreCluster,
}

/// `groups × replication` replicas, one host each, plus a `core` host the
/// clients dial from.
fn world(groups: usize, replication: usize) -> World {
    let net = SimNet::new();
    net.add_host("core");
    let hosts: Vec<HostId> = (0..groups * replication)
        .map(|i| {
            let h = format!("sh{i}");
            net.add_host(h.as_str());
            HostId::from(h.as_str())
        })
        .collect();
    let cluster = spawn_sharded_store(
        &net,
        &hosts,
        groups,
        replication,
        SYNC,
        WalConfig::default(),
    )
    .unwrap();
    World { net, cluster }
}

fn client(w: &World) -> ShardedStoreClient {
    let identity = keypair();
    let pool = Arc::new(LinkPool::new(&w.net, "core", identity));
    w.cluster
        .client(&w.net, "core", identity, pool)
        .with_lease_ttl(Duration::from_secs(2))
}

#[test]
fn routing_roundtrip_across_groups() {
    let w = world(4, 3);
    let mut c = client(&w);
    for i in 0..40 {
        let key = format!("k{i}");
        c.put("app", &key, format!("v{i}").as_bytes()).unwrap();
    }
    for i in 0..40 {
        let key = format!("k{i}");
        assert_eq!(c.get("app", &key).unwrap(), format!("v{i}").as_bytes());
    }
    // Keys really spread: every group owns at least one of the 40.
    let owners: std::collections::BTreeSet<usize> = (0..40)
        .map(|i| c.group_for("app", &format!("k{i}")))
        .collect();
    assert_eq!(owners.len(), 4, "rendezvous left a group empty on 40 keys");
    w.cluster.shutdown();
}

#[test]
fn writes_land_only_on_the_owning_group() {
    let w = world(2, 3);
    let mut c = client(&w);
    for i in 0..30 {
        c.put("app", &format!("k{i}"), b"x").unwrap();
    }
    // Give anti-entropy a moment, then check isolation: a replica of
    // group g holds only keys g owns (shard-local blast radius starts
    // with shard-local data).
    std::thread::sleep(Duration::from_millis(300));
    for g in 0..2 {
        for (_, disk) in &w.cluster.groups[g] {
            for (_, key, _, _) in disk.digest() {
                assert_eq!(
                    c.group_for("app", &key),
                    g,
                    "replica of group {g} holds foreign key {key}"
                );
            }
        }
    }
    w.cluster.shutdown();
}

#[test]
fn placement_bootstraps_from_any_replica() {
    let w = world(3, 2);
    let identity = keypair();
    let pool = Arc::new(LinkPool::new(&w.net, "core", identity));
    for addr in w.cluster.placement.all_replicas() {
        let fetched = StorePlacement::fetch(&pool, addr).unwrap();
        assert_eq!(fetched, w.cluster.placement);
    }
    w.cluster.shutdown();
}

#[test]
fn batches_split_per_shard_and_commit_in_parallel() {
    let w = world(4, 3);
    let mut c = client(&w);
    let items: Vec<(String, Vec<u8>)> = (0..60)
        .map(|i| (format!("batch{i}"), format!("payload{i}").into_bytes()))
        .collect();
    let versions = c.put_many("app", &items).unwrap();
    assert_eq!(versions.len(), 60);
    assert!(versions.iter().all(|&v| v == 1), "fresh keys start at v1");
    assert_eq!(c.stats().split_batches, 1);
    for (key, data) in &items {
        assert_eq!(&c.get("app", key).unwrap(), data);
    }
    // Each group committed its slice as batch writes on its own client.
    for g in 0..4 {
        let gs = c.group_client(g).stats();
        assert_eq!(gs.batch_writes, 1, "group {g} saw exactly one batch");
        assert!(gs.batched_records > 0, "group {g} committed records");
    }
    w.cluster.shutdown();
}

#[test]
fn healthy_shard_reads_are_leased_single_replica() {
    let w = world(2, 3);
    let mut c = client(&w);
    c.put("app", "hot", b"value").unwrap();
    for _ in 0..20 {
        assert_eq!(c.get("app", "hot").unwrap(), b"value");
    }
    let s = c.stats();
    assert!(s.lease_grants >= 1, "no lease was ever granted: {s:?}");
    assert!(
        s.leased_reads >= 19,
        "healthy-shard reads should ride the lease: {s:?}"
    );
    w.cluster.shutdown();
}

#[test]
fn leased_read_of_missing_key_is_not_found() {
    let w = world(2, 3);
    let mut c = client(&w);
    // Warm a lease on the owning group, then read a key that group never
    // stored: the live holder's NotFound is authoritative.
    c.put("app", "warm", b"x").unwrap();
    let g = c.group_for("app", "warm");
    let _ = c.get("app", "warm");
    let mut probe = None;
    for i in 0..200 {
        let key = format!("ghost{i}");
        if c.group_for("app", &key) == g {
            probe = Some(key);
            break;
        }
    }
    let probe = probe.expect("some key lands on the warmed group");
    assert!(matches!(
        c.get("app", &probe),
        Err(ace_store::StoreError::NotFound)
    ));
    w.cluster.shutdown();
}

#[test]
fn dead_leaseholder_falls_back_to_quorum() {
    let w = world(1, 3);
    let mut c = client(&w);
    c.put("app", "k", b"v").unwrap();
    assert_eq!(c.get("app", "k").unwrap(), b"v");
    let holder = c.lease_holder(0).expect("lease granted");
    let holder_host = w.cluster.placement.replicas(0)[holder].host.clone();
    w.net.kill_host(&holder_host);
    // The leased path dies with the holder; reads must keep answering.
    assert_eq!(c.get("app", "k").unwrap(), b"v");
    assert!(c.stats().quorum_fallbacks >= 1, "{:?}", c.stats());
    for (handle, _) in &w.cluster.groups[0] {
        if handle.addr().host == holder_host {
            handle.crash();
        } else {
            handle.shutdown();
        }
    }
}

#[test]
fn write_missed_by_holder_drops_the_lease() {
    let w = world(1, 3);
    let mut c = client(&w);
    c.put("app", "k", b"v1").unwrap();
    assert_eq!(c.get("app", "k").unwrap(), b"v1");
    let holder = c.lease_holder(0).expect("lease granted");
    let holder_host = w.cluster.placement.replicas(0)[holder].host.clone();
    // Partition the holder from the writer: the next put quorums 2/3
    // without the holder's ack, so serving leased reads from it could
    // return v1 — the client must drop the lease instead.
    w.net.partition(&"core".into(), &holder_host);
    c.put("app", "k", b"v2").unwrap();
    assert_eq!(c.stats().lease_losses, 1, "{:?}", c.stats());
    assert_eq!(c.lease_holder(0), None);
    // Reads stay correct (quorum scan or a re-granted reachable holder).
    assert_eq!(c.get("app", "k").unwrap(), b"v2");
    w.net.heal_all();
    w.cluster.shutdown();
}

#[test]
fn snapshot_ship_rebuild_restores_a_dead_replica() {
    let mut w = world(2, 3);
    let mut c = client(&w);
    for i in 0..50 {
        c.put("app", &format!("pre{i}"), format!("v{i}").as_bytes())
            .unwrap();
    }
    // Kill replica 0 of group 0, then keep writing while it is down.
    let victim_addr = w.cluster.placement.replicas(0)[0].clone();
    let old_incarnation = w.cluster.groups[0][0].0.incarnation();
    w.cluster.groups[0][0].0.crash();
    for i in 0..30 {
        c.put("app", &format!("during{i}"), b"while down").unwrap();
    }

    let report = w.cluster.rebuild_replica(&w.net, 0, 0).unwrap();
    assert!(
        report.snapshot_records > 0,
        "rebuild shipped an empty snapshot: {report:?}"
    );
    assert!(report.snapshot_chunks >= 1);
    assert_ne!(report.peer, victim_addr, "shipped from a live peer");
    assert!(
        w.cluster.groups[0][0].0.incarnation() > old_incarnation,
        "incarnation must be monotone across rebuild"
    );

    // The rebuilt disk holds every group-0 key, including writes it
    // missed (snapshot + WAL tail + anti-entropy top-up).
    let rebuilt = w.cluster.groups[0][0].1.clone();
    let owned: Vec<String> = (0..50)
        .map(|i| format!("pre{i}"))
        .chain((0..30).map(|i| format!("during{i}")))
        .filter(|k| c.group_for("app", k) == 0)
        .collect();
    assert!(!owned.is_empty());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let missing: Vec<&String> = owned
            .iter()
            .filter(|k| rebuilt.get(&("app".to_string(), (*k).clone())).is_none())
            .collect();
        if missing.is_empty() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "rebuilt replica still missing {missing:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The plane still serves everything.
    for i in 0..30 {
        assert_eq!(c.get("app", &format!("during{i}")).unwrap(), b"while down");
    }
    w.cluster.shutdown();
}

#[test]
fn rebuild_catches_up_from_wal_tail_under_load() {
    let mut w = world(1, 3);
    let mut c = client(&w);
    for i in 0..20 {
        c.put("app", &format!("seed{i}"), b"s").unwrap();
    }
    w.cluster.groups[0][2].0.crash();
    // Writes that land *after* the rebuild's snapshot cut arrive via the
    // WAL tail: race a writer thread against the rebuild.
    let report = std::thread::scope(|scope| {
        let net = w.net.clone();
        let placement = w.cluster.placement.clone();
        let writer = scope.spawn(move || {
            let identity = keypair();
            let pool = Arc::new(LinkPool::new(&net, "core", identity));
            let mut wc = ShardedStoreClient::new(net.clone(), "core", identity, pool, placement);
            for i in 0..40 {
                wc.put("app", &format!("live{i}"), b"l").unwrap();
            }
        });
        let report = w.cluster.rebuild_replica(&w.net, 0, 2).unwrap();
        writer.join().unwrap();
        report
    });
    assert!(report.snapshot_records >= 20);
    // Everything is readable and the rebuilt disk converges fully.
    for i in 0..40 {
        assert_eq!(c.get("app", &format!("live{i}")).unwrap(), b"l");
    }
    let rebuilt = w.cluster.groups[0][2].1.clone();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while rebuilt.len() < 60 {
        assert!(
            std::time::Instant::now() < deadline,
            "rebuilt replica converged to {} of 60 keys",
            rebuilt.len()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    w.cluster.shutdown();
}
