//! Integration tests of the persistent store (§6, Fig. 17): replication,
//! quorum behaviour under failures, anti-entropy convergence, crash
//! recovery with intact disks, and conflict resolution.

use ace_core::prelude::*;
use ace_directory::{bootstrap, Framework};
use ace_security::keys::KeyPair;
use ace_store::{respawn_replica, spawn_store_cluster, StoreClient, StoreCluster, StoreError};
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

const SYNC: Duration = Duration::from_millis(100);

struct World {
    net: SimNet,
    fw: Framework,
    cluster: StoreCluster,
}

fn world() -> World {
    let net = SimNet::new();
    net.add_host("core");
    for h in ["s1", "s2", "s3"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let cluster = spawn_store_cluster(&net, &fw, &["s1", "s2", "s3"], SYNC).unwrap();
    World { net, fw, cluster }
}

fn client(w: &World) -> StoreClient {
    StoreClient::new(w.net.clone(), "core", keypair(), w.cluster.addrs.clone())
}

fn wait_converged(w: &World, deadline: Duration) -> bool {
    let end = std::time::Instant::now() + deadline;
    while std::time::Instant::now() < end {
        let sums: Vec<u64> = w
            .cluster
            .replicas
            .iter()
            .map(|(_, disk)| disk.checksum())
            .collect();
        if sums.windows(2).all(|p| p[0] == p[1]) && !w.cluster.replicas[0].1.is_empty() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

#[test]
fn put_get_roundtrip_and_replication() {
    let w = world();
    let mut c = client(&w);

    c.put("appstate", "counter_1", b"count=42").unwrap();
    assert_eq!(c.get("appstate", "counter_1").unwrap(), b"count=42");

    // The write reached a quorum immediately and all three eventually.
    assert!(
        wait_converged(&w, Duration::from_secs(5)),
        "replicas converged"
    );
    for (_, disk) in &w.cluster.replicas {
        let v = disk.get(&("appstate".into(), "counter_1".into())).unwrap();
        assert_eq!(v.data, b"count=42");
    }

    w.cluster.shutdown();
    w.fw.shutdown();
}

#[test]
fn versions_increment_and_overwrite() {
    let w = world();
    let mut c = client(&w);
    let v1 = c.put("ns", "k", b"one").unwrap();
    let v2 = c.put("ns", "k", b"two").unwrap();
    assert!(v2 > v1);
    assert_eq!(c.get("ns", "k").unwrap(), b"two");
    w.cluster.shutdown();
    w.fw.shutdown();
}

#[test]
fn missing_key_is_not_found() {
    let w = world();
    let mut c = client(&w);
    assert!(matches!(c.get("ns", "ghost"), Err(StoreError::NotFound)));
    w.cluster.shutdown();
    w.fw.shutdown();
}

#[test]
fn delete_tombstones_propagate() {
    let w = world();
    let mut c = client(&w);
    c.put("ns", "k", b"data").unwrap();
    assert_eq!(c.list("ns").unwrap(), vec!["k".to_string()]);
    c.delete("ns", "k").unwrap();
    assert!(matches!(c.get("ns", "k"), Err(StoreError::NotFound)));
    assert!(c.list("ns").unwrap().is_empty());
    w.cluster.shutdown();
    w.fw.shutdown();
}

/// "If one or two of the servers fail or crash, ACE services may still
/// access the stored information."
#[test]
fn one_replica_down_reads_and_writes_continue() {
    let w = world();
    let mut c = client(&w);
    c.put("ns", "before", b"x").unwrap();

    // Crash replica 1 abruptly.
    w.net.kill_host(&"s1".into());

    // Reads and quorum (2/3) writes still work.
    assert_eq!(c.get("ns", "before").unwrap(), b"x");
    c.put("ns", "during", b"y").unwrap();
    assert_eq!(c.get("ns", "during").unwrap(), b"y");

    // Cleanup: the s1 daemon is dead; crash its handle.
    for (handle, _) in w.cluster.replicas {
        if handle.addr().host.as_str() == "s1" {
            handle.crash();
        } else {
            handle.shutdown();
        }
    }
    w.fw.shutdown();
}

#[test]
fn two_replicas_down_reads_work_writes_fail() {
    let w = world();
    let mut c = client(&w);
    c.put("ns", "k", b"v").unwrap();

    w.net.kill_host(&"s1".into());
    w.net.kill_host(&"s2".into());

    assert_eq!(
        c.get("ns", "k").unwrap(),
        b"v",
        "one survivor still serves reads"
    );
    assert!(matches!(
        c.put("ns", "k", b"new"),
        Err(StoreError::QuorumFailed {
            acked: 1,
            quorum: 2
        })
    ));

    for (handle, _) in w.cluster.replicas {
        if handle.addr().host.as_str() == "s3" {
            handle.shutdown();
        } else {
            handle.crash();
        }
    }
    w.fw.shutdown();
}

#[test]
fn all_replicas_down_is_distinguished() {
    let w = world();
    let mut c = client(&w);
    c.put("ns", "k", b"v").unwrap();
    for h in ["s1", "s2", "s3"] {
        w.net.kill_host(&h.into());
    }
    assert!(matches!(c.get("ns", "k"), Err(StoreError::AllReplicasDown)));
    for (handle, _) in w.cluster.replicas {
        handle.crash();
    }
    w.fw.shutdown();
}

/// The E15/E19 recovery path: a replica crashes, misses writes, restarts on
/// its surviving disk, and anti-entropy brings it back up to date.
#[test]
fn crashed_replica_recovers_via_anti_entropy() {
    let w = world();
    let mut c = client(&w);
    c.put("ns", "old", b"before crash").unwrap();
    assert!(wait_converged(&w, Duration::from_secs(5)));

    // Crash s1, write while it is down.
    let mut survivors = Vec::new();
    let mut crashed_disk = None;
    for (handle, disk) in w.cluster.replicas {
        if handle.addr().host.as_str() == "s1" {
            handle.crash();
            crashed_disk = Some(disk);
        } else {
            survivors.push((handle, disk));
        }
    }
    let crashed_disk = crashed_disk.unwrap();
    for i in 0..10 {
        c.put("ns", &format!("missed_{i}"), b"written while down")
            .unwrap();
    }
    // s1's disk does not have the new keys yet.
    assert!(crashed_disk
        .get(&("ns".into(), "missed_0".into()))
        .is_none());

    // Revive the host and respawn the replica on its old disk.
    w.net.revive_host(&"s1".into());
    let revived = respawn_replica(&w.net, &w.fw, 0, "s1", crashed_disk.clone(), SYNC).unwrap();

    // Anti-entropy catches it up.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let ok = (0..10).all(|i| {
            crashed_disk
                .get(&("ns".into(), format!("missed_{i}")))
                .is_some()
        });
        if ok {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replica never caught up"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    revived.shutdown();
    for (handle, _) in survivors {
        handle.shutdown();
    }
    w.fw.shutdown();
}

/// Two writers racing on the same key converge to one deterministic winner
/// on every replica.
#[test]
fn concurrent_writers_converge() {
    let w = world();
    let mut a = client(&w);
    let mut b = client(&w);
    a.put("ns", "seed", b"seed").unwrap();

    // Both clients read version v and write v+1 concurrently (the writer id
    // breaks the tie).
    let aj = {
        let mut a2 = client(&w);
        std::thread::spawn(move || a2.put("ns", "contested", b"from A"))
    };
    let bj = std::thread::spawn(move || b.put("ns", "contested", b"from B"));
    aj.join().unwrap().unwrap();
    bj.join().unwrap().unwrap();

    assert!(
        wait_converged(&w, Duration::from_secs(5)),
        "replicas converged"
    );
    let winner = a.get("ns", "contested").unwrap();
    assert!(winner == b"from A" || winner == b"from B");
    // Every replica holds exactly the winner.
    for (_, disk) in &w.cluster.replicas {
        assert_eq!(
            disk.get(&("ns".into(), "contested".into())).unwrap().data,
            winner
        );
    }

    w.cluster.shutdown();
    w.fw.shutdown();
}

#[test]
fn read_repair_fixes_stale_replica() {
    let w = world();
    let mut c = client(&w);
    c.put("ns", "k", b"v1").unwrap();
    assert!(wait_converged(&w, Duration::from_secs(5)));

    // Manually regress replica 3's disk to simulate staleness.
    let disk3 = &w.cluster.replicas[2].1;
    disk3
        .apply(
            ("ns".into(), "k".into()),
            ace_store::Versioned {
                data: b"v1".to_vec(),
                version: 0,
                writer: "old".into(),
                deleted: false,
            },
        )
        .unwrap();
    // (apply refuses to regress — so instead verify repair via a fresh key
    // missing from one replica: partition s3, write, heal, read.)
    w.net.partition(&"core".into(), &"s3".into());
    c.put("ns", "repaired", b"value").unwrap();
    w.net.heal_all();
    // Also cut s3 off from its peers' sync briefly?  Not needed: the read
    // itself must repair.  Read through the client (which reaches s3 now).
    assert_eq!(c.get("ns", "repaired").unwrap(), b"value");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if disk3.get(&("ns".into(), "repaired".into())).is_some() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "read repair never landed"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    w.cluster.shutdown();
    w.fw.shutdown();
}

#[test]
fn degraded_writes_are_counted_and_logged() {
    let w = world();
    let mut c = client(&w).with_logger(w.fw.logger_addr.clone());

    // Full-strength write: counted, not degraded.
    c.put("ns", "k0", b"all-up").unwrap();
    let s = c.stats();
    assert_eq!((s.writes, s.degraded_writes, s.quorum_failures), (1, 0, 0));

    // One replica down: the write still reaches quorum but is degraded.
    w.cluster.replicas[2].0.crash();
    c.put("ns", "k1", b"degraded").unwrap();
    let s = c.stats();
    assert_eq!((s.writes, s.degraded_writes), (2, 1));
    assert_eq!(s.quorum_failures, 0);

    // The warning reached the Net Logger.
    let me = keypair();
    let mut logger =
        ace_directory::LoggerClient::connect(&w.net, &"core".into(), w.fw.logger_addr.clone(), &me)
            .unwrap();
    let warnings = logger.tail(50, Some("warn")).unwrap();
    assert!(
        warnings
            .iter()
            .any(|(_, _, _, _, msg)| msg.contains("degraded psPut ns/k1") && msg.contains("2/3")),
        "degraded-write warning missing from logger tail: {warnings:?}"
    );

    // Two replicas down: below quorum — failure counted, no ack.
    w.cluster.replicas[1].0.crash();
    assert!(matches!(
        c.put("ns", "k2", b"no quorum"),
        Err(StoreError::QuorumFailed { .. })
    ));
    let s = c.stats();
    assert_eq!((s.writes, s.degraded_writes, s.quorum_failures), (2, 1, 1));

    w.cluster.shutdown();
    w.fw.shutdown();
}

#[test]
fn replica_durability_is_on_by_default() {
    let w = world();
    let mut c = client(&w);
    c.put("ns", "k", b"logged").unwrap();
    // Every replica that acked has the write in its WAL, not just in RAM.
    let logged = w
        .cluster
        .replicas
        .iter()
        .filter(|(_, disk)| disk.wal_stats().is_some_and(|s| s.appends >= 1))
        .count();
    assert!(logged >= 2, "quorum of replicas must have WAL appends");

    w.cluster.shutdown();
    w.fw.shutdown();
}
