//! Crash-consistency tests for the store's write-ahead log.
//!
//! The headline property: a replica killed at **any byte offset** of a WAL
//! append recovers with no acknowledged write lost and no undetected
//! corruption.  These tests iterate every crash offset deterministically —
//! no randomness, no timing — so a failure pinpoints the exact torn byte.

use ace_net::fault::{StorageFault, StorageFaultHub};
use ace_net::HostId;
use ace_store::wal::frame_record;
use ace_store::{DiskImage, MemStorage, StorageHandle, StoreError, Versioned, WalConfig};

fn value(version: u64, data: &[u8]) -> Versioned {
    Versioned {
        data: data.to_vec(),
        version,
        writer: "rsa:test:10001".into(),
        deleted: false,
    }
}

fn key(k: &str) -> (String, String) {
    ("chaos".to_string(), k.to_string())
}

/// Kill-at-any-byte: for every crash offset within (and one past) the next
/// record's framing, tear the append there, then recover and check that
/// every *acknowledged* write survives byte-for-byte and the unacked one
/// either vanished cleanly or applied completely — never half.
#[test]
fn kill_at_any_byte_offset_loses_no_acked_write() {
    let probe = frame_record(&key("k-next"), &value(100, b"the write under test"));
    for crash_at in 0..=probe.len() as u64 {
        let hub = StorageFaultHub::new();
        let host = HostId::from("s1");
        let storage = MemStorage::new().with_faults(hub.clone(), host.clone());
        let handle = StorageHandle::Memory(storage);

        // A replica acknowledges some writes...
        let (disk, _) = DiskImage::open(&handle, WalConfig::default()).unwrap();
        let mut acked = Vec::new();
        for i in 0..5u64 {
            let (k, v) = (key(&format!("k{i}")), value(i + 1, &[i as u8; 9]));
            assert!(disk.apply(k.clone(), v.clone()).unwrap());
            acked.push((k, v));
        }

        // ...then the host dies `crash_at` bytes into the next append.
        hub.arm(&host, StorageFault::CrashAtByte(crash_at));
        let attempt = disk.apply(key("k-next"), value(100, b"the write under test"));

        // Recovery on the respawn path.
        let (recovered, report) = DiskImage::open_or_reset(&handle, WalConfig::default())
            .unwrap_or_else(|e| panic!("crash at byte {crash_at}: recovery failed: {e}"));
        assert!(
            !report.reset,
            "crash at byte {crash_at}: a clean tear must never read as corruption"
        );
        for (k, v) in &acked {
            assert_eq!(
                recovered.get(k).as_ref(),
                Some(v),
                "crash at byte {crash_at}: acked write {k:?} lost or mangled"
            );
        }
        // The torn write is all-or-nothing, and "all" only when the full
        // record reached the disk (in which case it was merely unacked).
        match recovered.get(&key("k-next")) {
            None => assert!(
                attempt.is_err(),
                "crash at byte {crash_at}: acked write vanished"
            ),
            Some(v) => assert_eq!(
                v,
                value(100, b"the write under test"),
                "crash at byte {crash_at}: partial write became visible"
            ),
        }
    }
}

/// A torn write (transient media failure, replica survives) repairs the
/// log in place: later writes land on a clean record boundary.
#[test]
fn torn_write_then_more_writes_then_crash_recovers_all_acked() {
    let hub = StorageFaultHub::new();
    let host = HostId::from("s1");
    let storage = MemStorage::new().with_faults(hub.clone(), host.clone());
    let handle = StorageHandle::Memory(storage);
    let (disk, _) = DiskImage::open(&handle, WalConfig::default()).unwrap();

    assert!(disk.apply(key("a"), value(1, b"first")).unwrap());
    hub.arm(&host, StorageFault::TornWrite(3));
    assert!(matches!(
        disk.apply(key("b"), value(2, b"torn")),
        Err(StoreError::Io(_))
    ));
    assert!(disk.apply(key("c"), value(3, b"after")).unwrap());

    let (recovered, report) = DiskImage::open_or_reset(&handle, WalConfig::default()).unwrap();
    assert!(!report.reset);
    assert_eq!(recovered.get(&key("a")).unwrap().data, b"first");
    assert_eq!(recovered.get(&key("c")).unwrap().data, b"after");
    assert!(recovered.get(&key("b")).is_none(), "unacked write replayed");
}

/// A latent bit flip is *detected* at recovery: `open` refuses, and the
/// controlled path resets for an anti-entropy rebuild — corrupt data is
/// never served as valid.
#[test]
fn bit_flip_is_detected_and_leads_to_controlled_reset() {
    let hub = StorageFaultHub::new();
    let host = HostId::from("s1");
    let storage = MemStorage::new().with_faults(hub.clone(), host.clone());
    let handle = StorageHandle::Memory(storage);
    let (disk, _) = DiskImage::open(&handle, WalConfig::default()).unwrap();

    assert!(disk.apply(key("a"), value(1, b"victim bytes")).unwrap());
    // The flip lands in the already-persisted record; the append carrying
    // it succeeds (latent damage).
    hub.arm(&host, StorageFault::BitFlip(40));
    assert!(disk.apply(key("b"), value(2, b"carrier")).unwrap());

    match DiskImage::open(&handle, WalConfig::default()) {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let (recovered, report) = DiskImage::open_or_reset(&handle, WalConfig::default()).unwrap();
    assert!(report.reset, "corruption must be reported as a reset");
    assert!(recovered.is_empty(), "reset replica must start empty");
}

/// Compaction under a crash: killing the replica right after the log has
/// been compacted into a snapshot still recovers the full state.
#[test]
fn recovery_after_compaction_sees_snapshot_plus_tail() {
    let handle = StorageHandle::Memory(MemStorage::new());
    let config = WalConfig {
        fsync_on_commit: true,
        compact_threshold: 512,
    };
    let (disk, _) = DiskImage::open(&handle, config.clone()).unwrap();
    for i in 0..200u64 {
        disk.apply(key(&format!("k{}", i % 17)), value(i + 1, &[0x5a; 21]))
            .unwrap();
    }
    let wal = disk.wal_stats().unwrap();
    assert!(wal.compactions >= 1, "threshold never triggered compaction");

    let (recovered, report) = DiskImage::open_or_reset(&handle, config).unwrap();
    assert!(report.snapshot_records > 0, "snapshot not used in recovery");
    assert_eq!(recovered.len(), 17);
    for i in 0..17u64 {
        let got = recovered.get(&key(&format!("k{i}"))).unwrap();
        let expected_version = (0..200u64)
            .filter(|n| n % 17 == i)
            .map(|n| n + 1)
            .max()
            .unwrap();
        assert_eq!(got.version, expected_version, "key k{i} regressed");
    }
}

/// The same recovery contract holds on real files (temp dir kept inside
/// the workspace `target/` tree).
#[test]
fn file_backend_roundtrips_and_truncates_torn_tail() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "wal-file-{}-{}",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = StorageHandle::Dir(dir.clone());

    let (disk, _) = DiskImage::open(&handle, WalConfig::default()).unwrap();
    for i in 0..20u64 {
        disk.apply(key(&format!("k{i}")), value(i + 1, b"file-backed"))
            .unwrap();
    }
    drop(disk);

    // Tear the log file mid-record, as a power cut would.
    let log = dir.join("wal.log");
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..bytes.len() - 7]).unwrap();

    let (recovered, report) = DiskImage::open_or_reset(&handle, WalConfig::default()).unwrap();
    assert!(!report.reset);
    assert!(
        report.torn_bytes > 0,
        "the partial record is reported as a torn tail"
    );
    assert_eq!(recovered.len(), 19, "all but the torn record recovered");
    for i in 0..19u64 {
        assert!(recovered.get(&key(&format!("k{i}"))).is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// File-backend compaction commits snapshots atomically (tmp + rename) and
/// survives reopen.
#[test]
fn file_backend_compaction_survives_reopen() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "wal-file-{}-{}",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = StorageHandle::Dir(dir.clone());
    let config = WalConfig {
        fsync_on_commit: false,
        compact_threshold: 1024,
    };

    let (disk, _) = DiskImage::open(&handle, config.clone()).unwrap();
    for i in 0..300u64 {
        disk.apply(key(&format!("k{}", i % 11)), value(i + 1, &[0xb7; 33]))
            .unwrap();
    }
    assert!(disk.wal_stats().unwrap().compactions >= 1);
    drop(disk);

    let (recovered, report) = DiskImage::open_or_reset(&handle, config).unwrap();
    assert!(report.snapshot_records > 0);
    assert_eq!(recovered.len(), 11);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reopening storage fences the previous instance: a zombie replica that
/// survived its own "crash" can no longer write behind the successor.
#[test]
fn reopen_fences_zombie_replica() {
    let handle = StorageHandle::Memory(MemStorage::new());
    let (zombie, _) = DiskImage::open(&handle, WalConfig::default()).unwrap();
    zombie.apply(key("a"), value(1, b"before")).unwrap();

    let (successor, _) = DiskImage::open_or_reset(&handle, WalConfig::default()).unwrap();
    assert!(matches!(
        zombie.apply(key("b"), value(2, b"zombie write")),
        Err(StoreError::Io(_))
    ));
    successor.apply(key("c"), value(3, b"real write")).unwrap();

    let (final_state, _) = DiskImage::open_or_reset(&handle, WalConfig::default()).unwrap();
    assert!(final_state.get(&key("a")).is_some());
    assert!(final_state.get(&key("b")).is_none(), "zombie write landed");
    assert!(final_state.get(&key("c")).is_some());
}
