//! Crash-consistency tests for the store's write-ahead log.
//!
//! The headline property: a replica killed at **any byte offset** of a WAL
//! append recovers with no acknowledged write lost and no undetected
//! corruption.  These tests iterate every crash offset deterministically —
//! no randomness, no timing — so a failure pinpoints the exact torn byte.

use ace_net::fault::{StorageFault, StorageFaultHub};
use ace_net::HostId;
use ace_store::wal::frame_record;
use ace_store::{DiskImage, MemStorage, StorageHandle, StoreError, Versioned, WalConfig};

fn value(version: u64, data: &[u8]) -> Versioned {
    Versioned {
        data: data.to_vec(),
        version,
        writer: "rsa:test:10001".into(),
        deleted: false,
    }
}

fn key(k: &str) -> (String, String) {
    ("chaos".to_string(), k.to_string())
}

/// Kill-at-any-byte: for every crash offset within (and one past) the next
/// record's framing, tear the append there, then recover and check that
/// every *acknowledged* write survives byte-for-byte and the unacked one
/// either vanished cleanly or applied completely — never half.
#[test]
fn kill_at_any_byte_offset_loses_no_acked_write() {
    let probe = frame_record(&key("k-next"), &value(100, b"the write under test"));
    for crash_at in 0..=probe.len() as u64 {
        let hub = StorageFaultHub::new();
        let host = HostId::from("s1");
        let storage = MemStorage::new().with_faults(hub.clone(), host.clone());
        let handle = StorageHandle::Memory(storage);

        // A replica acknowledges some writes...
        let (disk, _) = DiskImage::open(&handle, WalConfig::default()).unwrap();
        let mut acked = Vec::new();
        for i in 0..5u64 {
            let (k, v) = (key(&format!("k{i}")), value(i + 1, &[i as u8; 9]));
            assert!(disk.apply(k.clone(), v.clone()).unwrap());
            acked.push((k, v));
        }

        // ...then the host dies `crash_at` bytes into the next append.
        hub.arm(&host, StorageFault::CrashAtByte(crash_at));
        let attempt = disk.apply(key("k-next"), value(100, b"the write under test"));

        // Recovery on the respawn path.
        let (recovered, report) = DiskImage::open_or_reset(&handle, WalConfig::default())
            .unwrap_or_else(|e| panic!("crash at byte {crash_at}: recovery failed: {e}"));
        assert!(
            !report.reset,
            "crash at byte {crash_at}: a clean tear must never read as corruption"
        );
        for (k, v) in &acked {
            assert_eq!(
                recovered.get(k).as_ref(),
                Some(v),
                "crash at byte {crash_at}: acked write {k:?} lost or mangled"
            );
        }
        // The torn write is all-or-nothing, and "all" only when the full
        // record reached the disk (in which case it was merely unacked).
        match recovered.get(&key("k-next")) {
            None => assert!(
                attempt.is_err(),
                "crash at byte {crash_at}: acked write vanished"
            ),
            Some(v) => assert_eq!(
                v,
                value(100, b"the write under test"),
                "crash at byte {crash_at}: partial write became visible"
            ),
        }
    }
}

/// Group commit under kill-at-any-byte: tear a *batch* commit at every
/// offset of its concatenated record stream.  The batch must fail as a
/// unit (no ticket acks), earlier acked writes survive, and unacked batch
/// records may reappear after recovery only as a clean record-aligned
/// prefix of the batch — never a hole, never a torn record.
#[test]
fn crash_at_any_byte_of_a_batch_commit_is_prefix_atomic() {
    let entries: Vec<((String, String), Versioned)> = (0..3u64)
        .map(|i| (key(&format!("b{i}")), value(10 + i, &[0xc3 ^ i as u8; 11])))
        .collect();
    let total: usize = entries.iter().map(|(k, v)| frame_record(k, v).len()).sum();
    for crash_at in 0..=total as u64 {
        let hub = StorageFaultHub::new();
        let host = HostId::from("s1");
        let storage = MemStorage::new().with_faults(hub.clone(), host.clone());
        let handle = StorageHandle::Memory(storage);
        let (disk, _) = DiskImage::open(&handle, WalConfig::default()).unwrap();
        assert!(disk.apply(key("acked"), value(1, b"safe")).unwrap());

        hub.arm(&host, StorageFault::CrashAtByte(crash_at));
        assert!(
            disk.apply_batch(entries.clone()).is_err(),
            "crash at byte {crash_at}: batch acked through a crash"
        );

        let (recovered, report) = DiskImage::open_or_reset(&handle, WalConfig::default())
            .unwrap_or_else(|e| panic!("crash at byte {crash_at}: recovery failed: {e}"));
        assert!(
            !report.reset,
            "crash at byte {crash_at}: a clean tear must never read as corruption"
        );
        assert_eq!(
            recovered.get(&key("acked")).unwrap().data,
            b"safe",
            "crash at byte {crash_at}: acked write lost"
        );
        let visible: Vec<bool> = (0..3)
            .map(|i| recovered.get(&key(&format!("b{i}"))).is_some())
            .collect();
        let survivors = visible.iter().position(|v| !v).unwrap_or(visible.len());
        assert!(
            visible[survivors..].iter().all(|v| !v),
            "crash at byte {crash_at}: non-prefix batch survival {visible:?}"
        );
        for (i, (k, v)) in entries.iter().take(survivors).enumerate() {
            assert_eq!(
                recovered.get(k).as_ref(),
                Some(v),
                "crash at byte {crash_at}: surviving batch record {i} mangled"
            );
        }
    }
}

/// Concurrent writers sharing group-commit batches, killed mid-batch: no
/// writer that saw `Ok` may lose its record, however the committer grouped
/// the in-flight appends when the disk died.
#[test]
fn concurrent_writers_crash_mid_batch_lose_nothing_acked() {
    const WRITERS: u64 = 8;
    for crash_at in [0u64, 1, 9, 25, 47, 80, 133, 190] {
        let hub = StorageFaultHub::new();
        let host = HostId::from("s1");
        let storage = MemStorage::new().with_faults(hub.clone(), host.clone());
        let handle = StorageHandle::Memory(storage);
        // A short linger encourages the committer to group the writers.
        let config = WalConfig {
            max_batch_delay: std::time::Duration::from_millis(2),
            ..WalConfig::default()
        };
        let (disk, _) = DiskImage::open(&handle, config.clone()).unwrap();
        let mut acked = Vec::new();
        for i in 0..3u64 {
            let (k, v) = (key(&format!("pre{i}")), value(i + 1, &[i as u8; 7]));
            assert!(disk.apply(k.clone(), v.clone()).unwrap());
            acked.push((k, v));
        }

        hub.arm(&host, StorageFault::CrashAtByte(crash_at));
        let barrier = std::sync::Barrier::new(WRITERS as usize);
        let results: Vec<((String, String), Versioned, bool)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..WRITERS)
                .map(|i| {
                    let (disk, barrier) = (disk.clone(), &barrier);
                    s.spawn(move || {
                        let (k, v) = (key(&format!("w{i}")), value(100 + i, &[0x40 | i as u8; 13]));
                        barrier.wait();
                        let ok = disk.apply(k.clone(), v.clone()).is_ok();
                        (k, v, ok)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let (recovered, report) = DiskImage::open_or_reset(&handle, config)
            .unwrap_or_else(|e| panic!("crash at byte {crash_at}: recovery failed: {e}"));
        assert!(
            !report.reset,
            "crash at byte {crash_at}: a clean tear must never read as corruption"
        );
        for (k, v) in &acked {
            assert_eq!(
                recovered.get(k).as_ref(),
                Some(v),
                "crash at byte {crash_at}: pre-crash acked write {k:?} lost"
            );
        }
        for (k, v, ok) in &results {
            match recovered.get(k) {
                Some(got) => assert_eq!(
                    &got, v,
                    "crash at byte {crash_at}: surviving write {k:?} mangled"
                ),
                None => assert!(
                    !ok,
                    "crash at byte {crash_at}: acked concurrent write {k:?} lost"
                ),
            }
        }
    }
}

/// A torn write (transient media failure, replica survives) repairs the
/// log in place: later writes land on a clean record boundary.
#[test]
fn torn_write_then_more_writes_then_crash_recovers_all_acked() {
    let hub = StorageFaultHub::new();
    let host = HostId::from("s1");
    let storage = MemStorage::new().with_faults(hub.clone(), host.clone());
    let handle = StorageHandle::Memory(storage);
    let (disk, _) = DiskImage::open(&handle, WalConfig::default()).unwrap();

    assert!(disk.apply(key("a"), value(1, b"first")).unwrap());
    hub.arm(&host, StorageFault::TornWrite(3));
    assert!(matches!(
        disk.apply(key("b"), value(2, b"torn")),
        Err(StoreError::Io(_))
    ));
    assert!(disk.apply(key("c"), value(3, b"after")).unwrap());

    let (recovered, report) = DiskImage::open_or_reset(&handle, WalConfig::default()).unwrap();
    assert!(!report.reset);
    assert_eq!(recovered.get(&key("a")).unwrap().data, b"first");
    assert_eq!(recovered.get(&key("c")).unwrap().data, b"after");
    assert!(recovered.get(&key("b")).is_none(), "unacked write replayed");
}

/// A latent bit flip is *detected* at recovery: `open` refuses, and the
/// controlled path resets for an anti-entropy rebuild — corrupt data is
/// never served as valid.
#[test]
fn bit_flip_is_detected_and_leads_to_controlled_reset() {
    let hub = StorageFaultHub::new();
    let host = HostId::from("s1");
    let storage = MemStorage::new().with_faults(hub.clone(), host.clone());
    let handle = StorageHandle::Memory(storage);
    let (disk, _) = DiskImage::open(&handle, WalConfig::default()).unwrap();

    assert!(disk.apply(key("a"), value(1, b"victim bytes")).unwrap());
    // The flip lands in the already-persisted record; the append carrying
    // it succeeds (latent damage).
    hub.arm(&host, StorageFault::BitFlip(40));
    assert!(disk.apply(key("b"), value(2, b"carrier")).unwrap());

    match DiskImage::open(&handle, WalConfig::default()) {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let (recovered, report) = DiskImage::open_or_reset(&handle, WalConfig::default()).unwrap();
    assert!(report.reset, "corruption must be reported as a reset");
    assert!(recovered.is_empty(), "reset replica must start empty");
}

/// Compaction under a crash: killing the replica right after the log has
/// been compacted into a snapshot still recovers the full state.
#[test]
fn recovery_after_compaction_sees_snapshot_plus_tail() {
    let handle = StorageHandle::Memory(MemStorage::new());
    let config = WalConfig {
        fsync_on_commit: true,
        compact_threshold: 512,
        ..WalConfig::default()
    };
    let (disk, _) = DiskImage::open(&handle, config.clone()).unwrap();
    for i in 0..200u64 {
        disk.apply(key(&format!("k{}", i % 17)), value(i + 1, &[0x5a; 21]))
            .unwrap();
    }
    let wal = disk.wal_stats().unwrap();
    assert!(wal.compactions >= 1, "threshold never triggered compaction");

    let (recovered, report) = DiskImage::open_or_reset(&handle, config).unwrap();
    assert!(report.snapshot_records > 0, "snapshot not used in recovery");
    assert_eq!(recovered.len(), 17);
    for i in 0..17u64 {
        let got = recovered.get(&key(&format!("k{i}"))).unwrap();
        let expected_version = (0..200u64)
            .filter(|n| n % 17 == i)
            .map(|n| n + 1)
            .max()
            .unwrap();
        assert_eq!(got.version, expected_version, "key k{i} regressed");
    }
}

/// The same recovery contract holds on real files (temp dir kept inside
/// the workspace `target/` tree).
#[test]
fn file_backend_roundtrips_and_truncates_torn_tail() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "wal-file-{}-{}",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = StorageHandle::Dir(dir.clone());

    let (disk, _) = DiskImage::open(&handle, WalConfig::default()).unwrap();
    for i in 0..20u64 {
        disk.apply(key(&format!("k{i}")), value(i + 1, b"file-backed"))
            .unwrap();
    }
    drop(disk);

    // Tear the log file mid-record, as a power cut would.
    let log = dir.join("wal.log");
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..bytes.len() - 7]).unwrap();

    let (recovered, report) = DiskImage::open_or_reset(&handle, WalConfig::default()).unwrap();
    assert!(!report.reset);
    assert!(
        report.torn_bytes > 0,
        "the partial record is reported as a torn tail"
    );
    assert_eq!(recovered.len(), 19, "all but the torn record recovered");
    for i in 0..19u64 {
        assert!(recovered.get(&key(&format!("k{i}"))).is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// File-backend compaction commits snapshots atomically (tmp + rename) and
/// survives reopen.
#[test]
fn file_backend_compaction_survives_reopen() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "wal-file-{}-{}",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = StorageHandle::Dir(dir.clone());
    let config = WalConfig {
        fsync_on_commit: false,
        compact_threshold: 1024,
        ..WalConfig::default()
    };

    let (disk, _) = DiskImage::open(&handle, config.clone()).unwrap();
    for i in 0..300u64 {
        disk.apply(key(&format!("k{}", i % 11)), value(i + 1, &[0xb7; 33]))
            .unwrap();
    }
    assert!(disk.wal_stats().unwrap().compactions >= 1);
    drop(disk);

    let (recovered, report) = DiskImage::open_or_reset(&handle, config).unwrap();
    assert!(report.snapshot_records > 0);
    assert_eq!(recovered.len(), 11);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reopening storage fences the previous instance: a zombie replica that
/// survived its own "crash" can no longer write behind the successor.
#[test]
fn reopen_fences_zombie_replica() {
    let handle = StorageHandle::Memory(MemStorage::new());
    let (zombie, _) = DiskImage::open(&handle, WalConfig::default()).unwrap();
    zombie.apply(key("a"), value(1, b"before")).unwrap();

    let (successor, _) = DiskImage::open_or_reset(&handle, WalConfig::default()).unwrap();
    assert!(matches!(
        zombie.apply(key("b"), value(2, b"zombie write")),
        Err(StoreError::Io(_))
    ));
    successor.apply(key("c"), value(3, b"real write")).unwrap();

    let (final_state, _) = DiskImage::open_or_reset(&handle, WalConfig::default()).unwrap();
    assert!(final_state.get(&key("a")).is_some());
    assert!(final_state.get(&key("b")).is_none(), "zombie write landed");
    assert!(final_state.get(&key("c")).is_some());
}
