//! Property tests on the store's convergence model: for any interleaving of
//! writes across replicas, pairwise anti-entropy converges every disk to
//! the same contents, and the winner of each key is the globally maximal
//! `(version, writer)` pair.

use ace_store::{DiskImage, Versioned};
use proptest::prelude::*;

/// One generated write.
#[derive(Debug, Clone)]
struct Op {
    replica: usize,
    key: u8,
    version: u64,
    writer: u8,
    delete: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The real system guarantees that a (version, writer) pair uniquely
    // determines a write (writers are distinct principals and bump their
    // own versions), so content derives deterministically from the pair.
    (0usize..3, any::<u8>(), 1u64..16, 0u8..4).prop_map(|(replica, key, version, writer)| Op {
        replica,
        key: key % 8,
        version,
        writer,
        delete: (version + writer as u64).is_multiple_of(3),
    })
}

/// Pull-based pairwise sync: `a` pulls everything newer from `b` (the same
/// rule the replica daemon's sync worker applies).
fn pull(a: &DiskImage, b: &DiskImage) {
    for (ns, key, _, _) in b.digest() {
        let k = (ns, key);
        let remote = b.get(&k).expect("digested");
        a.apply(k, remote);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any write sequence + enough sync rounds ⇒ all replicas identical,
    /// and each key holds the maximal (version, writer) value.
    #[test]
    fn anti_entropy_converges(ops in prop::collection::vec(op_strategy(), 1..64)) {
        let disks = [DiskImage::new(), DiskImage::new(), DiskImage::new()];
        for op in &ops {
            disks[op.replica].apply(
                ("ns".into(), format!("k{}", op.key)),
                Versioned {
                    data: format!("v{}w{}", op.version, op.writer).into_bytes(),
                    version: op.version,
                    writer: format!("w{}", op.writer),
                    deleted: op.delete,
                },
            );
        }
        // Two full rounds of pairwise pulls guarantee propagation through
        // any 3-node topology.
        for _ in 0..2 {
            for i in 0..3 {
                for j in 0..3 {
                    if i != j {
                        pull(&disks[i], &disks[j]);
                    }
                }
            }
        }
        prop_assert_eq!(disks[0].checksum(), disks[1].checksum());
        prop_assert_eq!(disks[1].checksum(), disks[2].checksum());

        // Winner per key = maximal (version, writer) among all ops on it.
        for key in 0u8..8 {
            let expected = ops
                .iter()
                .filter(|o| o.key == key)
                .max_by_key(|o| (o.version, format!("w{}", o.writer)));
            let stored = disks[0].get(&("ns".into(), format!("k{key}")));
            match (expected, stored) {
                (None, None) => {}
                (Some(op), Some(v)) => {
                    prop_assert_eq!(v.version, op.version);
                    prop_assert_eq!(v.writer, format!("w{}", op.writer));
                    prop_assert_eq!(v.deleted, op.delete);
                }
                (e, s) => prop_assert!(false, "mismatch: {e:?} vs {s:?}"),
            }
        }
    }

    /// Applying the same set of writes in any order yields the same disk.
    #[test]
    fn apply_order_irrelevant(
        ops in prop::collection::vec(op_strategy(), 1..32),
        seed in any::<u64>(),
    ) {
        let value = |op: &Op| Versioned {
            data: vec![op.version as u8],
            version: op.version,
            writer: format!("w{}", op.writer),
            deleted: op.delete,
        };
        let a = DiskImage::new();
        for op in &ops {
            a.apply(("ns".into(), format!("k{}", op.key)), value(op));
        }
        // A deterministic shuffle of the same ops.
        let mut shuffled = ops.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        let b = DiskImage::new();
        for op in &shuffled {
            b.apply(("ns".into(), format!("k{}", op.key)), value(op));
        }
        prop_assert_eq!(a.checksum(), b.checksum());
    }

    /// `beats` is a strict total order on distinct (version, writer) pairs.
    #[test]
    fn beats_total_order(v1 in 0u64..8, w1 in 0u8..4, v2 in 0u64..8, w2 in 0u8..4) {
        let a = Versioned { data: vec![], version: v1, writer: format!("w{w1}"), deleted: false };
        let b = Versioned { data: vec![], version: v2, writer: format!("w{w2}"), deleted: false };
        if (v1, w1) == (v2, w2) {
            prop_assert!(!a.beats(&b) && !b.beats(&a));
        } else {
            prop_assert!(a.beats(&b) ^ b.beats(&a));
        }
    }
}
