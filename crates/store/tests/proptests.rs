//! Property tests on the store's convergence model: for any interleaving of
//! writes across replicas, pairwise anti-entropy converges every disk to
//! the same contents, and the winner of each key is the globally maximal
//! `(version, writer)` pair.

use ace_store::{DiskImage, Versioned};
use proptest::prelude::*;

/// One generated write.
#[derive(Debug, Clone)]
struct Op {
    replica: usize,
    key: u8,
    version: u64,
    writer: u8,
    delete: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The real system guarantees that a (version, writer) pair uniquely
    // determines a write (writers are distinct principals and bump their
    // own versions), so content derives deterministically from the pair.
    (0usize..3, any::<u8>(), 1u64..16, 0u8..4).prop_map(|(replica, key, version, writer)| Op {
        replica,
        key: key % 8,
        version,
        writer,
        delete: (version + writer as u64).is_multiple_of(3),
    })
}

/// Pull-based pairwise sync: `a` pulls everything newer from `b` (the same
/// rule the replica daemon's sync worker applies).
fn pull(a: &DiskImage, b: &DiskImage) {
    for (ns, key, _, _) in b.digest() {
        let k = (ns, key);
        let remote = b.get(&k).expect("digested");
        a.apply(k, remote).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any write sequence + enough sync rounds ⇒ all replicas identical,
    /// and each key holds the maximal (version, writer) value.
    #[test]
    fn anti_entropy_converges(ops in prop::collection::vec(op_strategy(), 1..64)) {
        let disks = [DiskImage::new(), DiskImage::new(), DiskImage::new()];
        for op in &ops {
            disks[op.replica].apply(
                ("ns".into(), format!("k{}", op.key)),
                Versioned {
                    data: format!("v{}w{}", op.version, op.writer).into_bytes(),
                    version: op.version,
                    writer: format!("w{}", op.writer),
                    deleted: op.delete,
                },
            ).unwrap();
        }
        // Two full rounds of pairwise pulls guarantee propagation through
        // any 3-node topology.
        for _ in 0..2 {
            for i in 0..3 {
                for j in 0..3 {
                    if i != j {
                        pull(&disks[i], &disks[j]);
                    }
                }
            }
        }
        prop_assert_eq!(disks[0].checksum(), disks[1].checksum());
        prop_assert_eq!(disks[1].checksum(), disks[2].checksum());

        // Winner per key = maximal (version, writer) among all ops on it.
        for key in 0u8..8 {
            let expected = ops
                .iter()
                .filter(|o| o.key == key)
                .max_by_key(|o| (o.version, format!("w{}", o.writer)));
            let stored = disks[0].get(&("ns".into(), format!("k{key}")));
            match (expected, stored) {
                (None, None) => {}
                (Some(op), Some(v)) => {
                    prop_assert_eq!(v.version, op.version);
                    prop_assert_eq!(v.writer, format!("w{}", op.writer));
                    prop_assert_eq!(v.deleted, op.delete);
                }
                (e, s) => prop_assert!(false, "mismatch: {e:?} vs {s:?}"),
            }
        }
    }

    /// Applying the same set of writes in any order yields the same disk.
    #[test]
    fn apply_order_irrelevant(
        ops in prop::collection::vec(op_strategy(), 1..32),
        seed in any::<u64>(),
    ) {
        let value = |op: &Op| Versioned {
            data: vec![op.version as u8],
            version: op.version,
            writer: format!("w{}", op.writer),
            deleted: op.delete,
        };
        let a = DiskImage::new();
        for op in &ops {
            a.apply(("ns".into(), format!("k{}", op.key)), value(op)).unwrap();
        }
        // A deterministic shuffle of the same ops.
        let mut shuffled = ops.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        let b = DiskImage::new();
        for op in &shuffled {
            b.apply(("ns".into(), format!("k{}", op.key)), value(op)).unwrap();
        }
        prop_assert_eq!(a.checksum(), b.checksum());
    }

    /// `beats` is a strict total order on distinct (version, writer) pairs.
    #[test]
    fn beats_total_order(v1 in 0u64..8, w1 in 0u8..4, v2 in 0u64..8, w2 in 0u8..4) {
        let a = Versioned { data: vec![], version: v1, writer: format!("w{w1}"), deleted: false };
        let b = Versioned { data: vec![], version: v2, writer: format!("w{w2}"), deleted: false };
        if (v1, w1) == (v2, w2) {
            prop_assert!(!a.beats(&b) && !b.beats(&a));
        } else {
            prop_assert!(a.beats(&b) ^ b.beats(&a));
        }
    }

    /// Antisymmetry: `beats` never holds in both directions — the payload
    /// (data, tombstone flag) must not influence the order.
    #[test]
    fn beats_antisymmetric(
        v1 in 0u64..8, w1 in 0u8..4, d1 in any::<bool>(),
        v2 in 0u64..8, w2 in 0u8..4, d2 in any::<bool>(),
        data in prop::collection::vec(any::<u8>(), 0..8),
    ) {
        let a = Versioned { data, version: v1, writer: format!("w{w1}"), deleted: d1 };
        let b = Versioned { data: vec![0xFF], version: v2, writer: format!("w{w2}"), deleted: d2 };
        prop_assert!(!(a.beats(&b) && b.beats(&a)));
    }

    /// Read-max-plus-one monotonicity: the client's versioning rule (read
    /// the maximal version visible anywhere, write max+1) always produces
    /// a value that beats every value it read past — regardless of the
    /// writer id — and successive rounds are strictly increasing.
    #[test]
    fn read_max_plus_one_is_monotone(
        existing in prop::collection::vec((0u64..32, 0u8..4, any::<bool>()), 1..16),
        writer in 0u8..4,
        rounds in 1usize..5,
    ) {
        let mut seen: Vec<Versioned> = existing
            .into_iter()
            .map(|(version, w, deleted)| Versioned {
                data: vec![],
                version,
                writer: format!("w{w}"),
                deleted,
            })
            .collect();
        let mut last: Option<Versioned> = None;
        for _ in 0..rounds {
            let max = seen.iter().map(|v| v.version).max().unwrap_or(0);
            let new = Versioned {
                data: vec![],
                version: max + 1,
                writer: format!("w{writer}"),
                deleted: false,
            };
            for old in &seen {
                prop_assert!(new.beats(old), "{new:?} must beat visible {old:?}");
            }
            if let Some(prev) = &last {
                prop_assert!(new.beats(prev), "successive writes must be monotone");
            }
            last = Some(new.clone());
            seen.push(new);
        }
    }
}

// ---------------------------------------------------------------------------
// WAL record codec properties
// ---------------------------------------------------------------------------

mod wal_props {
    use super::*;
    use ace_store::wal::{frame_record, replay_bytes};
    use ace_store::{StoreError, StoreKey};

    fn entry_strategy() -> impl Strategy<Value = (StoreKey, Versioned)> {
        (
            0u8..4,
            any::<u8>(),
            1u64..1000,
            0u8..4,
            any::<bool>(),
            prop::collection::vec(any::<u8>(), 0..32),
        )
            .prop_map(|(ns, key, version, writer, deleted, data)| {
                (
                    (format!("ns{ns}"), format!("k{key}")),
                    Versioned {
                        data,
                        version,
                        writer: format!("w{writer}"),
                        deleted,
                    },
                )
            })
    }

    fn concat(entries: &[(StoreKey, Versioned)]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for (k, v) in entries {
            bytes.extend_from_slice(&frame_record(k, v));
        }
        bytes
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Encode → replay is the identity on any record sequence.
        #[test]
        fn records_roundtrip(entries in prop::collection::vec(entry_strategy(), 0..16)) {
            let bytes = concat(&entries);
            let replay = replay_bytes(&bytes).unwrap();
            prop_assert_eq!(replay.entries, entries);
            prop_assert_eq!(replay.good_len, bytes.len() as u64);
            prop_assert_eq!(replay.torn_bytes, 0);
        }

        /// Cutting the log at ANY byte never panics and always replays a
        /// strict prefix of the original records (the crash-tear model).
        #[test]
        fn truncation_replays_a_strict_prefix(
            entries in prop::collection::vec(entry_strategy(), 1..12),
            cut in any::<u16>(),
        ) {
            let bytes = concat(&entries);
            let full = replay_bytes(&bytes).unwrap();
            let cut = (cut as usize) % (bytes.len() + 1);
            let replay = replay_bytes(&bytes[..cut]).unwrap();
            prop_assert!(replay.entries.len() <= full.entries.len());
            prop_assert_eq!(
                replay.entries.as_slice(),
                &full.entries[..replay.entries.len()]
            );
            prop_assert_eq!(replay.good_len + replay.torn_bytes, cut as u64);
        }

        /// Flipping ANY single bit never panics and never fabricates data:
        /// replay either refuses with `Corrupt`, or (when the flip turned
        /// the tail into an apparent tear) yields a strict prefix of the
        /// original records, byte-identical to what was written.
        #[test]
        fn bit_flip_never_panics_and_never_fabricates(
            entries in prop::collection::vec(entry_strategy(), 1..12),
            flip in any::<u32>(),
        ) {
            let mut bytes = concat(&entries);
            let full = replay_bytes(&bytes).unwrap();
            let bit = (flip as usize) % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            match replay_bytes(&bytes) {
                Err(StoreError::Corrupt { offset, .. }) => {
                    prop_assert!(offset <= bytes.len() as u64);
                }
                Err(e) => prop_assert!(false, "unexpected error class: {e}"),
                Ok(replay) => {
                    prop_assert!(replay.entries.len() <= full.entries.len());
                    prop_assert_eq!(
                        replay.entries.as_slice(),
                        &full.entries[..replay.entries.len()]
                    );
                }
            }
        }
    }
}
