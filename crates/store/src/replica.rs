//! One persistent-store replica (§6, Fig. 17).
//!
//! "Three completely redundant storage systems guarantee safe and up to
//! date storage of information … the three storage systems perform constant
//! data synchronization."
//!
//! Each replica daemon owns a [`DiskImage`] — shared state standing in for
//! the machine's disk, so a crashed replica that restarts on the same host
//! finds its data again.  Anti-entropy runs on a dedicated *sync worker
//! thread*, not the daemon's control thread: replicas synchronously query
//! each other (digest pulls), and two control threads calling each other
//! would deadlock — the worker keeps command service and synchronization
//! independent, mirroring the paper's separation of command and data paths.

use crate::client::StoreError;
use crate::placement::StorePlacement;
use crate::version::{StoreKey, Versioned};
use crate::wal::{RecoveryReport, StorageHandle, Wal, WalConfig, WalStats};
use ace_core::prelude::*;
use ace_core::protocol::{hex_decode, hex_encode};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many recently applied writes a replica remembers for WAL-tail
/// catch-up.  A rebuilding peer whose snapshot cut falls off this window
/// re-fetches the snapshot instead (the shipper reports a gap).
const TAIL_CAP: usize = 4096;

/// Sequence-numbered ring of recently applied writes, feeding `psWalTail`.
#[derive(Debug, Default)]
struct TailRing {
    /// Sequence number the next applied write will get.
    next_seq: u64,
    /// `(seq, key, value)` for the last [`TAIL_CAP`] applied writes.
    ring: VecDeque<(u64, StoreKey, Versioned)>,
}

impl TailRing {
    fn push(&mut self, key: StoreKey, value: Versioned) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.ring.len() == TAIL_CAP {
            self.ring.pop_front();
        }
        self.ring.push_back((seq, key, value));
    }
}

/// The disk of one replica: survives daemon crash/restart.  A volatile
/// image ([`DiskImage::new`]) survives by being handed to the respawned
/// daemon; a durable one ([`DiskImage::open`]) additionally recovers from
/// its write-ahead log + snapshot, so it survives the *process* dying with
/// the image unreferenced.
///
/// The map and the WAL are deliberately *not* behind one lock: appenders
/// log first (where the WAL's group-commit engine batches them across
/// threads) and only then take the map lock to publish, so concurrent
/// writers share fsyncs instead of serialising on the image.
#[derive(Debug, Clone, Default)]
pub struct DiskImage {
    map: Arc<Mutex<HashMap<StoreKey, Versioned>>>,
    /// `None` for a volatile image (unit tests, benchmarks); durable
    /// images log every applied write here *before* it becomes visible.
    wal: Option<Arc<Wal>>,
    /// Writes durably in the log but not yet published to `map`.
    /// Compaction snapshots the map and truncates the log, so it must
    /// not run while this is non-zero (see [`Wal::maybe_compact_when`]).
    in_flight: Arc<AtomicU64>,
    /// Recently applied writes by sequence number (snapshot shipping's
    /// catch-up source).  Lock order: `map` before `tail` — never the
    /// reverse — so snapshot cuts see a (state, seq) pair no applied
    /// write can slip between.
    tail: Arc<Mutex<TailRing>>,
}

impl DiskImage {
    /// A volatile, empty image (no WAL).
    pub fn new() -> DiskImage {
        DiskImage::default()
    }

    /// Open a durable image: recover state from the snapshot + log behind
    /// `handle`, then log every further applied write.  Refuses with
    /// [`StoreError::Corrupt`] when validation fails mid-log or in a
    /// snapshot slot.
    pub fn open(
        handle: &StorageHandle,
        config: WalConfig,
    ) -> Result<(DiskImage, RecoveryReport), StoreError> {
        let (wal, map, report) = Wal::open(handle, config)?;
        Ok((
            DiskImage {
                map: Arc::new(Mutex::new(map)),
                wal: Some(Arc::new(wal)),
                in_flight: Arc::new(AtomicU64::new(0)),
                tail: Arc::new(Mutex::new(TailRing::default())),
            },
            report,
        ))
    }

    /// [`DiskImage::open`], but detected corruption resets the storage to
    /// empty (reported via `reset = true`) instead of failing — the
    /// controlled response for a replica with peers: never serve
    /// corrupt data, rebuild from anti-entropy instead.
    pub fn open_or_reset(
        handle: &StorageHandle,
        config: WalConfig,
    ) -> Result<(DiskImage, RecoveryReport), StoreError> {
        match DiskImage::open(handle, config.clone()) {
            Err(StoreError::Corrupt { .. }) => {
                Wal::reset(handle)?;
                let (disk, mut report) = DiskImage::open(handle, config)?;
                report.reset = true;
                Ok((disk, report))
            }
            other => other,
        }
    }

    /// Apply a versioned write if it beats the current entry.  Returns
    /// `Ok(true)` if applied — for a durable image, only after the write
    /// is in the log (and synced, per [`WalConfig`]).  An `Err` means the
    /// write is *not* durable and must not be acknowledged.
    pub fn apply(&self, key: StoreKey, value: Versioned) -> Result<bool, StoreError> {
        // Cheap staleness pre-check: losing the race to a concurrent
        // newer write is fine — the authoritative check repeats under
        // the map lock after logging.
        {
            let map = self.map.lock();
            if let Some(existing) = map.get(&key) {
                if !value.beats(existing) {
                    return Ok(false);
                }
            }
        }
        if let Some(wal) = &self.wal {
            // Log before visibility.  `in_flight` brackets the window in
            // which the record is durable but not yet published, keeping
            // compaction from truncating it out from under us.
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            if let Err(e) = wal.append(&key, &value) {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                return Err(e);
            }
        }
        let mut map = self.map.lock();
        let applied = match map.get(&key) {
            Some(existing) if !value.beats(existing) => false,
            _ => {
                self.tail.lock().push(key.clone(), value.clone());
                map.insert(key, value);
                true
            }
        };
        if let Some(wal) = &self.wal {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            wal.maybe_compact_when(&map, || self.in_flight.load(Ordering::SeqCst) == 0);
        }
        Ok(applied)
    }

    /// Apply a run of versioned writes, sharing one WAL batch (one fsync,
    /// batch size permitting) across all of them.  Stale entries are
    /// filtered; the survivors are logged contiguously and then published
    /// together.  Returns how many entries were applied.  An `Err` means
    /// *none* of the writes may be acknowledged.
    pub fn apply_batch(&self, entries: Vec<(StoreKey, Versioned)>) -> Result<usize, StoreError> {
        let fresh: Vec<(StoreKey, Versioned)> = {
            let map = self.map.lock();
            entries
                .into_iter()
                .filter(|(key, value)| match map.get(key) {
                    Some(existing) => value.beats(existing),
                    None => true,
                })
                .collect()
        };
        if fresh.is_empty() {
            return Ok(0);
        }
        if let Some(wal) = &self.wal {
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            if let Err(e) = wal.append_batch(&fresh) {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                return Err(e);
            }
        }
        let mut map = self.map.lock();
        let mut applied = 0;
        for (key, value) in fresh {
            match map.get(&key) {
                Some(existing) if !value.beats(existing) => {}
                _ => {
                    self.tail.lock().push(key.clone(), value.clone());
                    map.insert(key, value);
                    applied += 1;
                }
            }
        }
        if let Some(wal) = &self.wal {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            wal.maybe_compact_when(&map, || self.in_flight.load(Ordering::SeqCst) == 0);
        }
        Ok(applied)
    }

    /// Read a key (tombstones included).
    pub fn get(&self, key: &StoreKey) -> Option<Versioned> {
        self.map.lock().get(key).cloned()
    }

    /// Live (non-tombstone) keys in a namespace, sorted.
    pub fn list(&self, ns: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .map
            .lock()
            .iter()
            .filter(|((n, _), v)| n == ns && !v.deleted)
            .map(|((_, k), _)| k.clone())
            .collect();
        keys.sort();
        keys
    }

    /// Digest of everything held: `(ns, key, version, writer)`.
    pub fn digest(&self) -> Vec<(String, String, u64, String)> {
        let mut out: Vec<_> = self
            .map
            .lock()
            .iter()
            .map(|((ns, k), v)| (ns.clone(), k.clone(), v.version, v.writer.clone()))
            .collect();
        out.sort();
        out
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// WAL counters (`None` for a volatile image).
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(|w| w.stats())
    }

    /// Cut a consistent shippable snapshot: the encoded full state plus
    /// the tail sequence number the fetcher must catch up from.  The
    /// snapshot's generation field carries that sequence cut, so the
    /// fetcher reads it straight out of the validated bytes.
    pub fn snapshot_cut(&self) -> (u64, Vec<u8>) {
        let map = self.map.lock();
        let seq = self.tail.lock().next_seq;
        (seq, crate::wal::encode_snapshot(seq, &map))
    }

    /// Applied writes with sequence number `>= since`, capped at `max`,
    /// plus the next sequence number this replica will assign.  `None`
    /// means `since` has fallen off the tail ring — a **gap**: the fetcher
    /// must re-ship a snapshot instead of catching up record by record.
    #[allow(clippy::type_complexity)]
    pub fn tail_since(
        &self,
        since: u64,
        max: usize,
    ) -> Option<(Vec<(u64, StoreKey, Versioned)>, u64)> {
        let tail = self.tail.lock();
        let oldest = tail.next_seq - tail.ring.len() as u64;
        if since < oldest {
            return None;
        }
        let entries = tail
            .ring
            .iter()
            .filter(|(seq, _, _)| *seq >= since)
            .take(max)
            .cloned()
            .collect();
        Some((entries, tail.next_seq))
    }

    /// Install a shipped snapshot: merge `entries` newest-wins, then (for
    /// a durable image) commit the merged state as one snapshot-slot write
    /// — the whole keyspace costs one slot replace + sync instead of
    /// re-appending every record through the log.  Returns how many
    /// entries won.
    pub fn install_snapshot(
        &self,
        entries: Vec<(StoreKey, Versioned)>,
    ) -> Result<usize, StoreError> {
        let mut map = self.map.lock();
        let mut applied = 0;
        for (key, value) in entries {
            match map.get(&key) {
                Some(existing) if !value.beats(existing) => {}
                _ => {
                    map.insert(key, value);
                    applied += 1;
                }
            }
        }
        if let Some(wal) = &self.wal {
            wal.install_snapshot(&map)?;
        }
        Ok(applied)
    }

    /// Checksum over the full digest — equal checksums mean replicas have
    /// converged.
    pub fn checksum(&self) -> u64 {
        let mut material = Vec::new();
        for (ns, k, version, writer) in self.digest() {
            material.extend_from_slice(ns.as_bytes());
            material.push(0);
            material.extend_from_slice(k.as_bytes());
            material.push(0);
            material.extend_from_slice(&version.to_le_bytes());
            material.extend_from_slice(writer.as_bytes());
            material.push(0);
        }
        ace_security::hash::fnv64(&material)
    }
}

/// Counters shared between the daemon and its sync worker.
#[derive(Debug, Default)]
struct SyncStats {
    syncs: AtomicU64,
    pulled: AtomicU64,
    /// Pulled values the local disk refused (WAL append failed): the
    /// entry stays missing locally and a later round retries it.
    pull_errors: AtomicU64,
}

/// The shard read lease one replica may hold: clients grant it through
/// the quorum path, and only the live holder serves `psGetLeased`.
#[derive(Debug, Clone)]
struct ReadLease {
    /// Holder address as `host:port` — compared against the replica's own
    /// bound address when serving leased reads.
    holder: String,
    /// Grant epoch: a newer grant supersedes, an older one is fenced.
    epoch: u64,
    until: Instant,
}

/// The replica daemon behavior.
pub struct StoreReplica {
    disk: DiskImage,
    sync_interval: Duration,
    stats: Arc<SyncStats>,
    stop: Arc<AtomicBool>,
    worker: Option<std::thread::JoinHandle<()>>,
    /// Nudges the worker to sync immediately (`psSync`).
    nudge: Option<crossbeam_channel::Sender<()>>,
    /// Fixed anti-entropy peer list (sharded deployments).  `None` keeps
    /// the classic behaviour: discover peers via the ASD class lookup.
    peers: Option<Vec<Addr>>,
    /// Shard placement map served via `psPlacement` (sharded deployments).
    placement: Option<StorePlacement>,
    /// Cached encoded snapshot for chunked `psSnapFetch`: `(seq, bytes)`.
    /// Cut fresh on every offset-0 fetch; later offsets read the cache so
    /// one rebuild streams one consistent snapshot.
    snap_cache: Option<(u64, Arc<Vec<u8>>)>,
    /// The shard read lease, if any client granted one.
    lease: Option<ReadLease>,
    /// `psGetLeased` requests served as the holder.
    leased_gets: u64,
    /// `psGetLeased` requests refused (not holder / lease expired).
    leased_refusals: u64,
}

impl StoreReplica {
    pub fn new(disk: DiskImage, sync_interval: Duration) -> StoreReplica {
        StoreReplica {
            disk,
            sync_interval,
            stats: Arc::new(SyncStats::default()),
            stop: Arc::new(AtomicBool::new(false)),
            worker: None,
            nudge: None,
            peers: None,
            placement: None,
            snap_cache: None,
            lease: None,
            leased_gets: 0,
            leased_refusals: 0,
        }
    }

    /// Anti-entropy against a fixed peer list (this replica's shard group)
    /// instead of an ASD class lookup — a sharded replica must never pull
    /// keys that belong to another shard's group.
    pub fn with_peers(mut self, peers: Vec<Addr>) -> StoreReplica {
        self.peers = Some(peers);
        self
    }

    /// Serve the shard placement map via `psPlacement`, so clients can
    /// bootstrap routing from any replica.
    pub fn with_placement(mut self, placement: StorePlacement) -> StoreReplica {
        self.placement = Some(placement);
        self
    }
}

/// One anti-entropy round from the worker thread: pull newer versions
/// from every peer replica — either the fixed shard-group list, or every
/// `PersistentStore` found in the ASD.
#[allow(clippy::too_many_arguments)]
fn sync_round(
    net: &SimNet,
    host: &HostId,
    identity: &ace_security::keys::KeyPair,
    asd: Option<&Addr>,
    fixed_peers: Option<&[Addr]>,
    own_name: &str,
    disk: &DiskImage,
    stats: &SyncStats,
    clients: &mut HashMap<Addr, ServiceClient>,
) {
    let call = |clients: &mut HashMap<Addr, ServiceClient>,
                addr: &Addr,
                cmd: &CmdLine|
     -> Option<CmdLine> {
        for attempt in 0..2 {
            if !clients.contains_key(addr) {
                match ServiceClient::connect(net, host, addr.clone(), identity) {
                    Ok(c) => {
                        clients.insert(addr.clone(), c);
                    }
                    Err(_) => return None,
                }
            }
            match clients.get_mut(addr).expect("present").call(cmd) {
                Ok(r) => return Some(r),
                Err(ClientError::Service { .. }) => return None,
                Err(ClientError::Link(_)) => {
                    clients.remove(addr);
                    if attempt == 1 {
                        return None;
                    }
                }
            }
        }
        None
    };

    let peer_addrs: Vec<Addr> = match fixed_peers {
        // Sharded deployment: the group membership is fixed at spawn, and
        // pulling from the ASD class instead would drag other shards'
        // keys into this group.
        Some(list) => list.to_vec(),
        None => {
            let Some(asd) = asd else { return };
            let Some(reply) = call(
                clients,
                asd,
                &CmdLine::new("lookup").arg("class", Value::Str("PersistentStore".into())),
            ) else {
                return;
            };
            let Some(peers) = reply
                .get("services")
                .and_then(ace_core::protocol::entries_from_value)
            else {
                return;
            };
            peers
                .into_iter()
                .filter(|p| p.name != own_name)
                .map(|p| p.addr)
                .collect()
        }
    };
    for peer_addr in peer_addrs {
        let Some(reply) = call(clients, &peer_addr, &CmdLine::new("psDigest")) else {
            continue; // peer down: catch up later
        };
        let Some(rows) = digest_from_reply(&reply) else {
            continue;
        };
        for (ns, key, version, writer) in rows {
            let key_pair = (ns.clone(), key.clone());
            let newer_remote = match disk.get(&key_pair) {
                None => true,
                Some(local) => (version, writer.as_str()) > (local.version, local.writer.as_str()),
            };
            if !newer_remote {
                continue;
            }
            let Some(got) = call(
                clients,
                &peer_addr,
                &CmdLine::new("psGet")
                    .arg("ns", ns.as_str())
                    .arg("key", Value::Str(key.clone())),
            ) else {
                continue;
            };
            if let Some(value) = versioned_from_reply(&got) {
                match disk.apply(key_pair, value) {
                    Ok(true) => {
                        stats.pulled.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(false) => {}
                    Err(_) => {
                        stats.pull_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
    stats.syncs.fetch_add(1, Ordering::Relaxed);
}

/// Strictly parse a `psGet`-style reply; `None` when any field is missing
/// or malformed (callers treat that as a corrupt reply, never as defaults).
pub(crate) fn versioned_from_reply(reply: &CmdLine) -> Option<Versioned> {
    Some(Versioned {
        data: hex_decode(reply.get_text("data")?)?,
        version: reply.get_int("version")? as u64,
        writer: reply.get_text("writer")?.to_string(),
        deleted: reply.get_bool("deleted")?,
    })
}

pub(crate) fn digest_from_reply(reply: &CmdLine) -> Option<Vec<(String, String, u64, String)>> {
    let rows = match reply.get("entries")? {
        v if v.as_vector().is_some_and(|s| s.is_empty()) => return Some(Vec::new()),
        v => v.as_array()?,
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != 4 {
            return None;
        }
        let cell = |i: usize| row[i].as_text();
        out.push((
            cell(0)?.to_string(),
            cell(1)?.to_string(),
            cell(2)?.parse().ok()?,
            cell(3)?.to_string(),
        ));
    }
    Some(out)
}

impl ServiceBehavior for StoreReplica {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .inheriting(&ace_core::protocol::store_scaleout_semantics())
            .with(
                CmdSpec::new("psPut", "store a versioned value")
                    .required("ns", ArgType::Word, "namespace")
                    .required("key", ArgType::Str, "key within the namespace")
                    .required("data", ArgType::Word, "hex value bytes")
                    .required("version", ArgType::Int, "client-assigned version")
                    .required("writer", ArgType::Str, "writer id (tie-break)"),
            )
            .with(
                CmdSpec::new("psPutBatch", "store many versioned values in one commit")
                    .required("ns", ArgType::Word, "namespace")
                    .required(
                        "items",
                        ArgType::Array(ace_lang::ScalarType::Str),
                        "rows of {key, data-hex, version, writer}",
                    ),
            )
            .with(
                CmdSpec::new("psGet", "read a key")
                    .required("ns", ArgType::Word, "namespace")
                    .required("key", ArgType::Str, "key")
                    .optional(
                        "digest",
                        ArgType::Word,
                        "true for version/writer/deleted only, no value bytes",
                    ),
            )
            .with(
                CmdSpec::new("psDelete", "tombstone a key")
                    .required("ns", ArgType::Word, "namespace")
                    .required("key", ArgType::Str, "key")
                    .required("version", ArgType::Int, "client-assigned version")
                    .required("writer", ArgType::Str, "writer id"),
            )
            .with(CmdSpec::new("psList", "live keys in a namespace").required(
                "ns",
                ArgType::Word,
                "namespace",
            ))
            .with(CmdSpec::new(
                "psDigest",
                "full (ns,key,version,writer) digest",
            ))
            .with(CmdSpec::new("psSync", "nudge the sync worker to run now"))
            .with(CmdSpec::new("psStats", "replica counters"))
    }

    fn on_start(&mut self, ctx: &mut ServiceCtx) {
        let asd = ctx.asd_addr().cloned();
        let fixed_peers = self.peers.clone();
        if asd.is_none() && fixed_peers.is_none() {
            // Standalone replica (unit tests): no peers to sync with.
            return;
        }
        let (nudge_tx, nudge_rx) = crossbeam_channel::unbounded::<()>();
        self.nudge = Some(nudge_tx);
        let net = ctx.net().clone();
        let host = ctx.host().clone();
        let identity = *ctx.identity();
        let own_name = ctx.name().to_string();
        let disk = self.disk.clone();
        let stats = Arc::clone(&self.stats);
        let stop = Arc::clone(&self.stop);
        let interval = self.sync_interval;
        self.worker = Some(
            std::thread::Builder::new()
                .name(format!("{own_name}-sync"))
                .spawn(move || {
                    let mut clients = HashMap::new();
                    while !stop.load(Ordering::SeqCst) {
                        // Wait one interval or until nudged.
                        let _ = nudge_rx.recv_timeout(interval);
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        sync_round(
                            &net,
                            &host,
                            &identity,
                            asd.as_ref(),
                            fixed_peers.as_deref(),
                            &own_name,
                            &disk,
                            &stats,
                            &mut clients,
                        );
                    }
                })
                .expect("spawn sync worker"),
        );
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        // The data itself lives in the [`DiskImage`], which the upgrade
        // factory hands to the replacement (it is `Arc`-shared, and the
        // WAL epoch fences the superseded instance).  The snapshot carries
        // the replica *configuration* plus the key count at quiesce time
        // so the replacement can sanity-log what it inherited.
        let state = CmdLine::new("replicaState")
            .arg("syncIntervalMs", self.sync_interval.as_millis() as i64)
            .arg("keys", self.disk.len() as i64);
        Some(ace_core::protocol::seal_snapshot("storeReplica", state))
    }

    fn restore_state(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let state = ace_core::protocol::open_snapshot("storeReplica", snapshot)?;
        let interval_ms = state
            .get_int("syncIntervalMs")
            .filter(|&ms| ms > 0)
            .ok_or_else(|| "replica snapshot: malformed syncIntervalMs".to_string())?;
        state
            .get_int("keys")
            .filter(|&k| k >= 0)
            .ok_or_else(|| "replica snapshot: malformed keys".to_string())?;
        self.sync_interval = Duration::from_millis(interval_ms as u64);
        Ok(())
    }

    fn on_stop(&mut self, _ctx: &mut ServiceCtx) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(nudge) = &self.nudge {
            let _ = nudge.send(());
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "psPut" | "psDelete" => {
                // Arguments passed semantics validation, but a malformed
                // payload must degrade to an error reply, never a panic
                // that takes the whole replica down.
                let parts = (
                    cmd.get_text("ns"),
                    cmd.get_text("key"),
                    cmd.get_int("version"),
                    cmd.get_text("writer"),
                );
                let (Some(ns), Some(key), Some(version), Some(writer)) = parts else {
                    return Reply::err(ErrorCode::Semantics, "malformed put/delete arguments");
                };
                let Some(data) = (if cmd.name() == "psPut" {
                    cmd.get_text("data").and_then(hex_decode)
                } else {
                    Some(Vec::new())
                }) else {
                    return Reply::err(ErrorCode::Semantics, "data is not valid hex");
                };
                let value = Versioned {
                    data,
                    version: version.max(0) as u64,
                    writer: writer.to_string(),
                    deleted: cmd.name() == "psDelete",
                };
                match self.disk.apply((ns.to_string(), key.to_string()), value) {
                    Ok(applied) => Reply::ok_with(|c| c.arg("applied", applied)),
                    // Log-before-ack: a write the WAL refused is not
                    // durable, so the client must not count this ack.
                    Err(e) => Reply::err(ErrorCode::Internal, format!("write not durable: {e}")),
                }
            }
            "psPutBatch" => {
                let (Some(ns), Some(rows)) = (
                    cmd.get_text("ns").map(str::to_string),
                    cmd.get("items").and_then(Value::as_array),
                ) else {
                    return Reply::err(ErrorCode::Semantics, "malformed batch arguments");
                };
                let mut entries = Vec::with_capacity(rows.len());
                for row in rows {
                    // Homogeneous-array wire format: every cell is a Str,
                    // version travels as its decimal rendering (psDigest
                    // does the same).
                    let parsed = (|| {
                        if row.len() != 4 {
                            return None;
                        }
                        let key = row[0].as_text()?;
                        let data = hex_decode(row[1].as_text()?)?;
                        let version: u64 = row[2].as_text()?.parse().ok()?;
                        let writer = row[3].as_text()?;
                        Some((
                            (ns.clone(), key.to_string()),
                            Versioned {
                                data,
                                version,
                                writer: writer.to_string(),
                                deleted: false,
                            },
                        ))
                    })();
                    let Some(entry) = parsed else {
                        return Reply::err(
                            ErrorCode::Semantics,
                            "batch rows must be {key, data-hex, version, writer}",
                        );
                    };
                    entries.push(entry);
                }
                match self.disk.apply_batch(entries) {
                    Ok(applied) => Reply::ok_with(|c| c.arg("applied", applied as i64)),
                    Err(e) => Reply::err(ErrorCode::Internal, format!("batch not durable: {e}")),
                }
            }
            "psGet" => {
                let (Some(ns), Some(k)) = (cmd.get_text("ns"), cmd.get_text("key")) else {
                    return Reply::err(ErrorCode::Semantics, "malformed get arguments");
                };
                let key = (ns.to_string(), k.to_string());
                let digest_only = cmd.get_bool("digest").unwrap_or(false);
                match self.disk.get(&key) {
                    // Digest mode answers the version question without
                    // shipping the value: the read fan-out pays full-value
                    // transfer at exactly one replica.
                    Some(v) if digest_only => Reply::ok_with(|c| {
                        c.arg("version", v.version as i64)
                            .arg("writer", Value::Str(v.writer.clone()))
                            .arg("deleted", v.deleted)
                    }),
                    Some(v) => Reply::ok_with(|c| {
                        c.arg("data", hex_encode(&v.data))
                            .arg("version", v.version as i64)
                            .arg("writer", Value::Str(v.writer.clone()))
                            .arg("deleted", v.deleted)
                    }),
                    None => Reply::err(ErrorCode::NotFound, "no such key"),
                }
            }
            "psGetLeased" => {
                let (Some(ns), Some(k)) = (cmd.get_text("ns"), cmd.get_text("key")) else {
                    return Reply::err(ErrorCode::Semantics, "malformed get arguments");
                };
                let own = format!("{}:{}", ctx.addr().host, ctx.addr().port);
                let holds = self
                    .lease
                    .as_ref()
                    .is_some_and(|l| l.holder == own && Instant::now() < l.until);
                if !holds {
                    self.leased_refusals += 1;
                    return Reply::err(
                        ErrorCode::BadState,
                        "not the live leaseholder; read via quorum",
                    );
                }
                self.leased_gets += 1;
                let key = (ns.to_string(), k.to_string());
                match self.disk.get(&key) {
                    Some(v) => Reply::ok_with(|c| {
                        c.arg("data", hex_encode(&v.data))
                            .arg("version", v.version as i64)
                            .arg("writer", Value::Str(v.writer.clone()))
                            .arg("deleted", v.deleted)
                    }),
                    None => Reply::err(ErrorCode::NotFound, "no such key"),
                }
            }
            "psLeaseGrant" => {
                let parts = (
                    cmd.get_text("holder"),
                    cmd.get_int("epoch"),
                    cmd.get_int("ttlMs"),
                );
                let (Some(holder), Some(epoch), Some(ttl_ms)) = parts else {
                    return Reply::err(ErrorCode::Semantics, "malformed lease grant");
                };
                let epoch = epoch.max(0) as u64;
                let now = Instant::now();
                // A live lease held by someone else at an equal-or-newer
                // epoch fences this grant: the granter must adopt or
                // outbid, never split the shard between two holders.
                if let Some(cur) = &self.lease {
                    if cur.holder != holder && now < cur.until && cur.epoch >= epoch {
                        let (h, e) = (cur.holder.clone(), cur.epoch as i64);
                        return Reply::err(
                            ErrorCode::BadState,
                            format!("lease held by {h} at epoch {e}"),
                        );
                    }
                }
                self.lease = Some(ReadLease {
                    holder: holder.to_string(),
                    epoch,
                    until: now + Duration::from_millis(ttl_ms.max(0) as u64),
                });
                Reply::ok_with(|c| c.arg("epoch", epoch as i64))
            }
            "psLeaseRevoke" => {
                let (Some(holder), Some(epoch)) = (cmd.get_text("holder"), cmd.get_int("epoch"))
                else {
                    return Reply::err(ErrorCode::Semantics, "malformed lease revoke");
                };
                // Idempotent: revoking a lease we do not hold is success —
                // the desired end state (no such lease) already holds.
                if self
                    .lease
                    .as_ref()
                    .is_some_and(|l| l.holder == holder && l.epoch <= epoch.max(0) as u64)
                {
                    self.lease = None;
                }
                Reply::ok()
            }
            "psSnapFetch" => {
                let Some(offset) = cmd.get_int("offset").filter(|&o| o >= 0) else {
                    return Reply::err(ErrorCode::Semantics, "malformed snapshot offset");
                };
                let chunk = cmd
                    .get_int("chunk")
                    .filter(|&c| c > 0)
                    .unwrap_or(32 * 1024)
                    .min(256 * 1024) as usize;
                if offset == 0 {
                    // Offset 0 cuts a fresh consistent snapshot and caches
                    // it, so one rebuild streams one immutable byte image
                    // while writes keep landing.
                    let (seq, bytes) = self.disk.snapshot_cut();
                    self.snap_cache = Some((seq, Arc::new(bytes)));
                }
                let Some((seq, bytes)) = self.snap_cache.clone() else {
                    return Reply::err(
                        ErrorCode::BadState,
                        "no snapshot cut; fetch offset 0 first",
                    );
                };
                let offset = offset as usize;
                if offset > bytes.len() {
                    return Reply::err(ErrorCode::Semantics, "offset past end of snapshot");
                }
                let end = (offset + chunk).min(bytes.len());
                let total = bytes.len() as i64;
                Reply::ok_with(|c| {
                    c.arg("total", total)
                        .arg("seq", seq as i64)
                        .arg("offset", offset as i64)
                        .arg("data", hex_encode(&bytes[offset..end]))
                })
            }
            "psWalTail" => {
                let Some(since) = cmd.get_int("since").filter(|&s| s >= 0) else {
                    return Reply::err(ErrorCode::Semantics, "malformed tail sequence");
                };
                let max = cmd.get_int("max").filter(|&m| m > 0).unwrap_or(512) as usize;
                match self.disk.tail_since(since as u64, max.min(4096)) {
                    None => Reply::ok_with(|c| {
                        // The cut fell off the tail ring: report the gap so
                        // the fetcher re-ships a snapshot instead of
                        // silently missing writes.
                        c.arg("gap", true).arg("latest", 0i64).arg("count", 0i64)
                    }),
                    Some((entries, latest)) => {
                        let rows: Vec<Vec<Scalar>> = entries
                            .into_iter()
                            .map(|(seq, (ns, key), v)| {
                                vec![
                                    Scalar::Str(seq.to_string()),
                                    Scalar::Str(ns),
                                    Scalar::Str(key),
                                    Scalar::Str(hex_encode(&v.data)),
                                    Scalar::Str(v.version.to_string()),
                                    Scalar::Str(v.writer),
                                    Scalar::Str(if v.deleted { "1" } else { "0" }.into()),
                                ]
                            })
                            .collect();
                        Reply::ok_with(|c| {
                            c.arg("gap", false)
                                .arg("latest", latest as i64)
                                .arg("count", rows.len() as i64)
                                .arg("entries", Value::Array(rows))
                        })
                    }
                }
            }
            "psPlacement" => match &self.placement {
                Some(placement) => placement.to_reply(),
                None => Reply::err(ErrorCode::NotFound, "replica carries no placement map"),
            },
            "psList" => {
                let Some(ns) = cmd.get_text("ns") else {
                    return Reply::err(ErrorCode::Semantics, "malformed list arguments");
                };
                let keys: Vec<Scalar> = self.disk.list(ns).into_iter().map(Scalar::Str).collect();
                Reply::ok_with(|c| {
                    c.arg("count", keys.len() as i64)
                        .arg("keys", Value::Vector(keys))
                })
            }
            "psDigest" => {
                let rows: Vec<Vec<Scalar>> = self
                    .disk
                    .digest()
                    .into_iter()
                    .map(|(ns, k, version, writer)| {
                        vec![
                            Scalar::Str(ns),
                            Scalar::Str(k),
                            Scalar::Str(version.to_string()),
                            Scalar::Str(writer),
                        ]
                    })
                    .collect();
                Reply::ok_with(|c| {
                    c.arg("count", rows.len() as i64)
                        .arg("entries", Value::Array(rows))
                })
            }
            "psSync" => {
                if let Some(nudge) = &self.nudge {
                    let _ = nudge.send(());
                }
                Reply::ok()
            }
            "psStats" => {
                let wal = self.disk.wal_stats().unwrap_or_default();
                Reply::ok_with(|c| {
                    c.arg("entries", self.disk.len() as i64)
                        .arg("syncs", self.stats.syncs.load(Ordering::Relaxed) as i64)
                        .arg("pulled", self.stats.pulled.load(Ordering::Relaxed) as i64)
                        .arg(
                            "pullErrors",
                            self.stats.pull_errors.load(Ordering::Relaxed) as i64,
                        )
                        .arg("walAppends", wal.appends as i64)
                        .arg("walCompactions", wal.compactions as i64)
                        .arg("walAppendFailures", wal.append_failures as i64)
                        .arg("walBatches", wal.batches as i64)
                        .arg("walFsyncs", wal.fsyncs as i64)
                        .arg("walFsyncsSaved", wal.fsyncs_saved as i64)
                        .arg("walMaxBatch", wal.max_batch_records as i64)
                        .arg("leasedGets", self.leased_gets as i64)
                        .arg("leasedRefusals", self.leased_refusals as i64)
                        .arg(
                            "checksum",
                            Value::Word(format!("x{:016x}", self.disk.checksum())),
                        )
                })
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }

    /// Re-export WAL batch and sync state into the daemon's unified metrics
    /// registry, so `aceStats` and the periodic stats events carry them
    /// alongside the framework's own counters.  Series are keyed by the
    /// daemon name (`store.<name>.entries`): co-located replicas whose
    /// stats land in one registry (or one downstream aggregation) must
    /// stay distinct series, not overwrite each other.
    fn on_stats(&mut self, ctx: &mut ServiceCtx) {
        let name = ctx.name().to_string();
        let m = ctx.metrics();
        let gauge = |suffix: &str| m.gauge(&format!("store.{name}.{suffix}"));
        gauge("entries").set(self.disk.len() as i64);
        gauge("syncs").set(self.stats.syncs.load(Ordering::Relaxed) as i64);
        gauge("pulled").set(self.stats.pulled.load(Ordering::Relaxed) as i64);
        gauge("pullErrors").set(self.stats.pull_errors.load(Ordering::Relaxed) as i64);
        gauge("leasedGets").set(self.leased_gets as i64);
        if let Some(wal) = self.disk.wal_stats() {
            let gauge = |suffix: &str| m.gauge(&format!("wal.{name}.{suffix}"));
            gauge("appends").set(wal.appends as i64);
            gauge("compactions").set(wal.compactions as i64);
            gauge("appendFailures").set(wal.append_failures as i64);
            gauge("batches").set(wal.batches as i64);
            gauge("fsyncs").set(wal.fsyncs as i64);
            gauge("fsyncsSaved").set(wal.fsyncs_saved as i64);
            gauge("maxBatchRecords").set(wal.max_batch_records as i64);
        }
    }
}

impl Drop for StoreReplica {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(nudge) = &self.nudge {
            let _ = nudge.send(());
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_applies_only_newer() {
        let disk = DiskImage::new();
        let key = ("ns".to_string(), "k".to_string());
        let v1 = Versioned {
            data: b"one".to_vec(),
            version: 1,
            writer: "a".into(),
            deleted: false,
        };
        let v2 = Versioned {
            data: b"two".to_vec(),
            version: 2,
            writer: "a".into(),
            deleted: false,
        };
        assert!(disk.apply(key.clone(), v1.clone()).unwrap());
        assert!(disk.apply(key.clone(), v2.clone()).unwrap());
        assert!(
            !disk.apply(key.clone(), v1).unwrap(),
            "stale write rejected"
        );
        assert_eq!(disk.get(&key).unwrap().data, b"two");
    }

    #[test]
    fn tombstones_hide_from_list_but_stay_in_digest() {
        let disk = DiskImage::new();
        disk.apply(
            ("ns".into(), "k".into()),
            Versioned {
                data: b"x".to_vec(),
                version: 1,
                writer: "a".into(),
                deleted: false,
            },
        )
        .unwrap();
        assert_eq!(disk.list("ns"), vec!["k".to_string()]);
        disk.apply(
            ("ns".into(), "k".into()),
            Versioned {
                data: vec![],
                version: 2,
                writer: "a".into(),
                deleted: true,
            },
        )
        .unwrap();
        assert!(disk.list("ns").is_empty());
        assert_eq!(disk.digest().len(), 1);
    }

    #[test]
    fn checksum_tracks_convergence() {
        let a = DiskImage::new();
        let b = DiskImage::new();
        assert_eq!(a.checksum(), b.checksum());
        let value = Versioned {
            data: b"v".to_vec(),
            version: 1,
            writer: "w".into(),
            deleted: false,
        };
        a.apply(("n".into(), "k".into()), value.clone()).unwrap();
        assert_ne!(a.checksum(), b.checksum());
        b.apply(("n".into(), "k".into()), value).unwrap();
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn durable_image_recovers_and_resets_on_corruption() {
        use crate::wal::MemStorage;
        let storage = MemStorage::new();
        let handle = StorageHandle::Memory(storage.clone());
        let (disk, report) = DiskImage::open(&handle, WalConfig::default()).unwrap();
        assert!(!report.reset);
        disk.apply(
            ("ns".into(), "k".into()),
            Versioned {
                data: b"v".to_vec(),
                version: 1,
                writer: "w".into(),
                deleted: false,
            },
        )
        .unwrap();
        // Reopen (crash + respawn): the write is still there.
        let (disk2, report) = DiskImage::open_or_reset(&handle, WalConfig::default()).unwrap();
        assert_eq!(report.replayed_records, 1);
        assert_eq!(disk2.get(&("ns".into(), "k".into())).unwrap().data, b"v");
        // Corrupt the log in place: open refuses, open_or_reset resets.
        let mut bytes = storage.log_bytes();
        bytes[10] ^= 0x40;
        storage.set_log_bytes(bytes);
        assert!(matches!(
            DiskImage::open(&handle, WalConfig::default()),
            Err(StoreError::Corrupt { .. })
        ));
        let (disk3, report) = DiskImage::open_or_reset(&handle, WalConfig::default()).unwrap();
        assert!(report.reset);
        assert!(
            disk3.is_empty(),
            "reset image starts empty for anti-entropy"
        );
    }
}
