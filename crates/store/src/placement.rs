//! Store scale-out: consistent-hash shard placement and the routing client.
//!
//! One three-replica group holding the whole keyspace caps write
//! throughput at a single quorum group (§6).  This module partitions the
//! keyspace across independent replica groups, the store analog of the
//! directory's sharded plane (PR 9):
//!
//! * [`StorePlacement`] — the cluster layout (replica addresses per shard
//!   group) with rendezvous-hash placement of `namespace/key`.  Every
//!   replica carries the full map and serves it via `psPlacement`, so
//!   clients bootstrap from any well-known replica.
//! * [`ShardedStoreClient`] — routes `put`/`get`/`delete` to the owning
//!   group, splits `put_many` batches per shard and commits them in
//!   **parallel** quorum rounds, and serves healthy-shard reads through a
//!   **read lease** (one replica round-trip) with quorum-scan fallback.
//!
//! # Placement
//!
//! Keys are placed by rendezvous (HRW) hash of `ns ++ 0 ++ key`: every
//! group scores the key, the highest score owns it.  Growing the plane by
//! one group moves only the ~1/n of keys the new group wins — no
//! mass migration on reshard.  `list` remains a fan-out (namespaces span
//! groups by design: placement by full key keeps single-key operations,
//! the hot path, on exactly one group).
//!
//! # Read leases
//!
//! A client grants a time-bounded lease to one replica of a group through
//! the quorum path (`psLeaseGrant` to every replica, majority + holder
//! ack required).  While the lease is fresh, `get` asks only the holder
//! (`psGetLeased`); the holder refuses with `E_BADSTATE` unless it is the
//! live leaseholder, and the client then falls back to the quorum scan.
//! Writes stay quorum-committed; a write the holder did **not** ack
//! revokes the lease (best-effort at the holder, unconditionally at the
//! client), so leased reads can trail a committed write by at most one
//! lease TTL, and only while the holder is alive yet unreachable from the
//! writer.  See DESIGN.md "Store scale-out" for the full safety argument.

use crate::client::{StoreClient, StoreError};
use ace_core::prelude::*;
use ace_security::hash::fnv64;
use ace_security::keys::KeyPair;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A batch slice tagged with each item's index in the caller's input order.
type IndexedBatch = Vec<(usize, (String, Vec<u8>))>;
/// One group's split-batch outcome: the input indices it owned, and the
/// versions its quorum round assigned (or the error that stopped it).
type GroupBatchResult = (Vec<usize>, Result<Vec<u64>, StoreError>);

// ---------------------------------------------------------------------------
// The placement map
// ---------------------------------------------------------------------------

/// The store plane layout: replica addresses per shard group, plus an
/// epoch so clients can tell a newer layout from an older one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorePlacement {
    epoch: u64,
    /// `groups[g]` is the replica set of shard group `g`, in spawn order.
    groups: Vec<Vec<Addr>>,
}

impl StorePlacement {
    /// A placement over the given replica groups.
    pub fn new(epoch: u64, groups: Vec<Vec<Addr>>) -> StorePlacement {
        StorePlacement { epoch, groups }
    }

    /// The placement epoch (bumped whenever the layout changes).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shard groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The replica set of group `g`.
    pub fn replicas(&self, g: usize) -> &[Addr] {
        &self.groups[g]
    }

    /// Majority quorum of group `g`'s replica set.
    pub fn quorum(&self, g: usize) -> usize {
        ace_core::quorum::majority(self.groups[g].len())
    }

    /// Every replica address of every group.
    pub fn all_replicas(&self) -> impl Iterator<Item = &Addr> {
        self.groups.iter().flatten()
    }

    /// Rendezvous (highest-random-weight) placement of `ns/key`: every
    /// group scores the key, the highest score owns it.  Unlike
    /// `hash % n`, adding a group only moves the ~1/n of keys the new
    /// group now wins.
    pub fn group_for(&self, ns: &str, key: &str) -> usize {
        let mut best = 0usize;
        let mut best_score = 0u64;
        for g in 0..self.groups.len() {
            let mut material = Vec::with_capacity(ns.len() + key.len() + 10);
            material.extend_from_slice(ns.as_bytes());
            material.push(0);
            material.extend_from_slice(key.as_bytes());
            material.push(0);
            material.extend_from_slice(&(g as u64).to_le_bytes());
            let score = fnv64(&material);
            if g == 0 || score > best_score {
                best = g;
                best_score = score;
            }
        }
        best
    }

    /// Wire encoding: `{{group,host,port},…}` rows.
    pub fn to_value(&self) -> Value {
        Value::Array(
            self.groups
                .iter()
                .enumerate()
                .flat_map(|(g, replicas)| {
                    replicas.iter().map(move |addr| {
                        vec![
                            Scalar::Str(g.to_string()),
                            Scalar::Str(addr.host.to_string()),
                            Scalar::Str(addr.port.to_string()),
                        ]
                    })
                })
                .collect(),
        )
    }

    /// Decode the `groups=` rows.  Malformed rows or a non-contiguous
    /// group numbering reject the whole map — routing on a half-decoded
    /// layout would misplace keys silently.
    pub fn from_value(epoch: u64, value: &Value) -> Option<StorePlacement> {
        let rows = match value {
            v if v.as_vector().is_some_and(|s| s.is_empty()) => {
                return Some(StorePlacement::new(epoch, Vec::new()))
            }
            v => v.as_array()?,
        };
        let mut groups: Vec<Vec<Addr>> = Vec::new();
        for row in rows {
            if row.len() != 3 {
                return None;
            }
            let g: usize = row[0].as_text()?.parse().ok()?;
            let port: u16 = row[2].as_text()?.parse().ok()?;
            if g > groups.len() {
                return None; // group indexes must arrive contiguously
            }
            if g == groups.len() {
                groups.push(Vec::new());
            }
            groups[g].push(Addr::new(row[1].as_text()?, port));
        }
        if groups.iter().any(Vec::is_empty) {
            return None;
        }
        Some(StorePlacement::new(epoch, groups))
    }

    /// The `psPlacement` verb reply.
    pub fn to_reply(&self) -> Reply {
        let epoch = self.epoch as i64;
        let count = self.group_count() as i64;
        let value = self.to_value();
        Reply::ok_with(|c| {
            c.arg("epoch", epoch)
                .arg("count", count)
                .arg("groups", value)
        })
    }

    /// Decode a `psPlacement` reply.
    pub fn from_reply(reply: &CmdLine) -> Option<StorePlacement> {
        let epoch = reply.get_int("epoch")?.max(0) as u64;
        Self::from_value(epoch, reply.get("groups")?)
    }

    /// Fetch the placement from any replica (clients bootstrap by asking a
    /// well-known replica address).
    pub fn fetch(pool: &Arc<LinkPool>, replica: &Addr) -> Result<StorePlacement, ClientError> {
        let reply = pool.checkout(replica)?.call(&CmdLine::new("psPlacement"))?;
        StorePlacement::from_reply(&reply).ok_or(ClientError::Service {
            code: ErrorCode::Internal,
            msg: "malformed psPlacement reply".into(),
        })
    }
}

// ---------------------------------------------------------------------------
// The sharded client
// ---------------------------------------------------------------------------

/// Sharded-client health counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Reads served by the leaseholder in one round-trip.
    pub leased_reads: u64,
    /// Reads that fell back to the quorum scan (no lease, stale lease, or
    /// holder refused/unreachable).
    pub quorum_fallbacks: u64,
    /// Leases granted (majority + holder ack).
    pub lease_grants: u64,
    /// Leases dropped because the holder missed a quorum write.
    pub lease_losses: u64,
    /// `put_many` calls that spanned more than one shard group.
    pub split_batches: u64,
}

/// The read lease a client holds over one group.
#[derive(Debug, Clone)]
struct GroupLease {
    /// Replica index within the group.
    holder: usize,
    epoch: u64,
    granted_at: Instant,
    ttl: Duration,
}

impl GroupLease {
    /// Conservatively fresh: the client started its clock before the
    /// holder did, so it stops using the lease at 3/4 of the TTL while
    /// the holder keeps honouring it until the full TTL.
    fn fresh(&self) -> bool {
        self.granted_at.elapsed() < self.ttl * 3 / 4
    }
}

/// What a leased read attempt concluded.
enum LeasedOutcome {
    Value(Vec<u8>),
    NotFound,
    /// Holder refused or was unreachable: drop the lease, scan the quorum.
    Fallback,
}

/// A store client that routes per shard group and reads through leases.
///
/// One pooled [`StoreClient`] per group does the quorum work; this layer
/// owns routing, batch splitting, and the lease protocol.
pub struct ShardedStoreClient {
    placement: StorePlacement,
    pool: Arc<LinkPool>,
    groups: Vec<StoreClient>,
    leases: Vec<Option<GroupLease>>,
    lease_ttl: Duration,
    /// Monotone grant epoch shared across groups (simpler than per-group
    /// counters, and replicas only compare epochs within one group).
    lease_epoch: u64,
    /// Rotates lease holders so read load spreads over a group's replicas.
    holder_rr: usize,
    stats: ShardedStats,
}

impl ShardedStoreClient {
    /// A routing client over `placement`, one pooled group client each.
    pub fn new(
        net: SimNet,
        from_host: impl Into<HostId>,
        identity: KeyPair,
        pool: Arc<LinkPool>,
        placement: StorePlacement,
    ) -> ShardedStoreClient {
        let from_host = from_host.into();
        let groups = (0..placement.group_count())
            .map(|g| {
                StoreClient::new(
                    net.clone(),
                    from_host.clone(),
                    identity,
                    placement.replicas(g).to_vec(),
                )
                .with_pool(Arc::clone(&pool))
            })
            .collect();
        let leases = (0..placement.group_count()).map(|_| None).collect();
        ShardedStoreClient {
            placement,
            pool,
            groups,
            leases,
            lease_ttl: Duration::from_secs(2),
            lease_epoch: 0,
            holder_rr: 0,
            stats: ShardedStats::default(),
        }
    }

    /// Override the lease TTL (tests shrink it to exercise expiry).
    pub fn with_lease_ttl(mut self, ttl: Duration) -> ShardedStoreClient {
        self.lease_ttl = ttl;
        self
    }

    /// The placement this client routes with.
    pub fn placement(&self) -> &StorePlacement {
        &self.placement
    }

    /// Sharded-client health counters.
    pub fn stats(&self) -> ShardedStats {
        self.stats
    }

    /// The per-group quorum client (tests and benchmarks reach through).
    pub fn group_client(&mut self, g: usize) -> &mut StoreClient {
        &mut self.groups[g]
    }

    /// The group owning `ns/key`.
    pub fn group_for(&self, ns: &str, key: &str) -> usize {
        self.placement.group_for(ns, key)
    }

    /// Which replica of group `g` currently holds this client's read
    /// lease (tests aim faults at it).
    pub fn lease_holder(&self, g: usize) -> Option<usize> {
        self.leases[g].as_ref().map(|l| l.holder)
    }

    fn no_groups() -> StoreError {
        StoreError::QuorumFailed {
            acked: 0,
            quorum: 1,
        }
    }

    /// Write a value to its owning group (majority quorum there).
    pub fn put(&mut self, ns: &str, key: &str, data: &[u8]) -> Result<u64, StoreError> {
        if self.placement.group_count() == 0 {
            return Err(Self::no_groups());
        }
        let g = self.placement.group_for(ns, key);
        let result = self.groups[g].put(ns, key, data);
        self.enforce_holder_ack(g);
        result
    }

    /// Tombstone a key on its owning group.
    pub fn delete(&mut self, ns: &str, key: &str) -> Result<u64, StoreError> {
        if self.placement.group_count() == 0 {
            return Err(Self::no_groups());
        }
        let g = self.placement.group_for(ns, key);
        let result = self.groups[g].delete(ns, key);
        self.enforce_holder_ack(g);
        result
    }

    /// Read a key: one leaseholder round-trip on a healthy shard, quorum
    /// scan (with read repair) when the lease is stale or refused.
    pub fn get(&mut self, ns: &str, key: &str) -> Result<Vec<u8>, StoreError> {
        if self.placement.group_count() == 0 {
            return Err(StoreError::AllReplicasDown);
        }
        let g = self.placement.group_for(ns, key);
        if let Some(holder) = self.ensure_lease(g) {
            match self.leased_get(g, holder, ns, key) {
                LeasedOutcome::Value(data) => {
                    self.stats.leased_reads += 1;
                    return Ok(data);
                }
                LeasedOutcome::NotFound => {
                    self.stats.leased_reads += 1;
                    return Err(StoreError::NotFound);
                }
                LeasedOutcome::Fallback => self.leases[g] = None,
            }
        }
        self.stats.quorum_fallbacks += 1;
        self.groups[g].get(ns, key)
    }

    /// Write a run of values: the batch splits by owning group and the
    /// per-group `psPutBatch` quorum rounds run **in parallel**, so a
    /// multi-shard batch costs one group's latency, not the sum.  Returns
    /// versions index-aligned with `items`.  An `Err` means at least one
    /// group failed its quorum — per-group batches are all-or-nothing, but
    /// *other* groups may have committed (cross-shard batches are not
    /// atomic; see DESIGN.md).
    pub fn put_many(
        &mut self,
        ns: &str,
        items: &[(String, Vec<u8>)],
    ) -> Result<Vec<u64>, StoreError> {
        if self.placement.group_count() == 0 {
            return Err(Self::no_groups());
        }
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let n = self.placement.group_count();
        let mut per_group: Vec<IndexedBatch> = (0..n).map(|_| Vec::new()).collect();
        for (i, (key, data)) in items.iter().enumerate() {
            let g = self.placement.group_for(ns, key);
            per_group[g].push((i, (key.clone(), data.clone())));
        }
        let wrote: Vec<bool> = per_group.iter().map(|w| !w.is_empty()).collect();
        if wrote.iter().filter(|&&w| w).count() > 1 {
            self.stats.split_batches += 1;
        }
        let mut versions = vec![0u64; items.len()];
        let results: Vec<GroupBatchResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .groups
                .iter_mut()
                .zip(per_group)
                .filter(|(_, work)| !work.is_empty())
                .map(|(client, work)| {
                    scope.spawn(move || {
                        let idxs: Vec<usize> = work.iter().map(|(i, _)| *i).collect();
                        let batch: Vec<(String, Vec<u8>)> =
                            work.into_iter().map(|(_, kv)| kv).collect();
                        (idxs, client.put_many(ns, &batch))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard batch thread"))
                .collect()
        });
        let mut first_err = None;
        for (idxs, result) in results {
            match result {
                Ok(assigned) => {
                    for (i, v) in idxs.into_iter().zip(assigned) {
                        versions[i] = v;
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        for (g, wrote) in wrote.into_iter().enumerate() {
            if wrote {
                self.enforce_holder_ack(g);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(versions),
        }
    }

    /// Live keys of `ns` across every group, merged and sorted.  Fails if
    /// any group has no reachable replica — a silently partial listing is
    /// worse than an error.
    pub fn list(&mut self, ns: &str) -> Result<Vec<String>, StoreError> {
        if self.placement.group_count() == 0 {
            return Err(StoreError::AllReplicasDown);
        }
        let mut merged: BTreeSet<String> = BTreeSet::new();
        for client in &mut self.groups {
            merged.extend(client.list(ns)?);
        }
        Ok(merged.into_iter().collect())
    }

    // -- the lease protocol -------------------------------------------------

    /// A fresh lease's holder index, granting one if needed.  `None` means
    /// no lease could be granted right now (reads fall back to quorum).
    fn ensure_lease(&mut self, g: usize) -> Option<usize> {
        if let Some(lease) = &self.leases[g] {
            if lease.fresh() {
                return Some(lease.holder);
            }
        }
        self.grant_lease(g)
    }

    /// Grant a lease over group `g` through the quorum path: every replica
    /// learns the holder, and the grant stands only with a majority *and*
    /// the holder itself acking — a holder that never heard of its lease
    /// would refuse every leased read.
    fn grant_lease(&mut self, g: usize) -> Option<usize> {
        let replicas = self.placement.replicas(g).to_vec();
        if replicas.is_empty() {
            return None;
        }
        self.lease_epoch += 1;
        self.holder_rr = self.holder_rr.wrapping_add(1);
        let holder = self.holder_rr % replicas.len();
        let holder_addr = &replicas[holder];
        let granted_at = Instant::now();
        let cmd = CmdLine::new("psLeaseGrant")
            .arg(
                "holder",
                Value::Str(format!("{}:{}", holder_addr.host, holder_addr.port)),
            )
            .arg("epoch", self.lease_epoch as i64)
            .arg("ttlMs", self.lease_ttl.as_millis() as i64);
        let mut round = QuorumRound::new(replicas.len(), self.placement.quorum(g));
        let mut holder_acked = false;
        for (idx, addr) in replicas.iter().enumerate() {
            let reply = self
                .pool
                .checkout(addr)
                .and_then(|mut link| link.call(&cmd));
            match reply {
                Ok(_) => {
                    round.ack();
                    if idx == holder {
                        holder_acked = true;
                    }
                }
                Err(err) if err.code() == Some(ErrorCode::BadState) => {
                    // Another granter holds a newer lease there; adopt its
                    // epoch so the next grant outbids instead of losing
                    // the same race forever.
                    if let Some(theirs) = trailing_epoch(&err) {
                        self.lease_epoch = self.lease_epoch.max(theirs);
                    }
                }
                Err(_) => {}
            }
        }
        if round.reached() && holder_acked {
            self.stats.lease_grants += 1;
            self.leases[g] = Some(GroupLease {
                holder,
                epoch: self.lease_epoch,
                granted_at,
                ttl: self.lease_ttl,
            });
            Some(holder)
        } else {
            None
        }
    }

    /// One leaseholder read.  `E_NOTFOUND` from the live holder is
    /// authoritative (within the documented ≤TTL staleness bound);
    /// `E_BADSTATE` or an unreachable holder falls back to the quorum.
    fn leased_get(&mut self, g: usize, holder: usize, ns: &str, key: &str) -> LeasedOutcome {
        let addr = self.placement.replicas(g)[holder].clone();
        let cmd = CmdLine::new("psGetLeased")
            .arg("ns", ns)
            .arg("key", Value::Str(key.into()));
        match self
            .pool
            .checkout(&addr)
            .and_then(|mut link| link.call(&cmd))
        {
            Ok(reply) => match crate::replica::versioned_from_reply(&reply) {
                Some(v) if v.deleted => LeasedOutcome::NotFound,
                Some(v) => LeasedOutcome::Value(v.data),
                None => LeasedOutcome::Fallback,
            },
            Err(err) if err.code() == Some(ErrorCode::NotFound) => LeasedOutcome::NotFound,
            Err(_) => LeasedOutcome::Fallback,
        }
    }

    /// Lease safety after a write: if the holder was **not** among the
    /// ackers of the quorum write just performed on group `g`, its copy
    /// may be stale — revoke at the holder (best-effort) and drop the
    /// lease locally so leased reads stop until a fresh grant.
    fn enforce_holder_ack(&mut self, g: usize) {
        let Some(lease) = self.leases[g].clone() else {
            return;
        };
        if self.groups[g]
            .last_write_acks()
            .get(lease.holder)
            .copied()
            .unwrap_or(false)
        {
            return;
        }
        self.leases[g] = None;
        self.stats.lease_losses += 1;
        let addr = self.placement.replicas(g)[lease.holder].clone();
        let cmd = CmdLine::new("psLeaseRevoke")
            .arg("holder", Value::Str(format!("{}:{}", addr.host, addr.port)))
            .arg("epoch", lease.epoch as i64);
        if let Ok(mut link) = self.pool.checkout(&addr) {
            let _ = link.call(&cmd);
        }
    }
}

impl std::fmt::Debug for ShardedStoreClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardedStoreClient({} groups, epoch {})",
            self.placement.group_count(),
            self.placement.epoch()
        )
    }
}

/// Parse the epoch a fencing `E_BADSTATE` reply names ("… at epoch N").
fn trailing_epoch(err: &ClientError) -> Option<u64> {
    let ClientError::Service { msg, .. } = err else {
        return None;
    };
    msg.rsplit(' ').next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placement(groups: usize, replication: usize) -> StorePlacement {
        StorePlacement::new(
            1,
            (0..groups)
                .map(|g| {
                    (0..replication)
                        .map(|r| Addr::new(format!("s{}", g * replication + r), 6100 + r as u16))
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn rendezvous_placement_is_stable_and_balanced() {
        let p = placement(4, 3);
        for i in 0..50 {
            let key = format!("key{i}");
            assert_eq!(p.group_for("app", &key), p.group_for("app", &key));
        }
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[p.group_for("app", &format!("key{i}"))] += 1;
        }
        for (g, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1800).contains(&c),
                "group {g} owns {c} of 4000 keys — badly unbalanced"
            );
        }
    }

    #[test]
    fn namespace_and_key_both_place() {
        let p = placement(4, 1);
        // The same key under different namespaces must be free to land on
        // different groups (the hash covers ns ++ 0 ++ key).
        let spread: BTreeSet<usize> = (0..64)
            .map(|i| p.group_for(&format!("ns{i}"), "shared-key"))
            .collect();
        assert!(spread.len() > 1, "namespace is not part of placement");
    }

    #[test]
    fn growing_the_plane_only_moves_the_new_groups_share() {
        let before = placement(4, 1);
        let layout: Vec<Vec<Addr>> = (0..5)
            .map(|g| vec![Addr::new(format!("s{g}"), 6100)])
            .collect();
        let after = StorePlacement::new(2, layout);
        let total = 4000;
        let moved = (0..total)
            .filter(|i| {
                let key = format!("key{i}");
                before.group_for("app", &key) != after.group_for("app", &key)
            })
            .count();
        assert!(
            moved < total * 2 / 5,
            "{moved}/{total} keys moved — placement is not rendezvous-stable"
        );
    }

    #[test]
    fn placement_roundtrips_over_the_wire() {
        let p = placement(3, 2);
        let reply = p.to_reply();
        let Reply::Ok(cmd) = reply else {
            panic!("placement reply must be ok")
        };
        let decoded = StorePlacement::from_reply(&cmd).expect("decode");
        assert_eq!(decoded, p);

        let empty = StorePlacement::from_value(0, &Value::Vector(Vec::new())).expect("empty");
        assert_eq!(empty.group_count(), 0);

        // Non-contiguous group numbering is rejected wholesale.
        let bad = Value::Array(vec![vec![
            Scalar::Str("1".into()),
            Scalar::Str("h".into()),
            Scalar::Str("6100".into()),
        ]]);
        assert!(StorePlacement::from_value(1, &bad).is_none());
    }
}
