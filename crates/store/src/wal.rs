//! Write-ahead log: the durability substrate of the persistent store.
//!
//! The paper claims "safe and up to date storage of information" across
//! replica crashes (§6, Fig. 17).  Anti-entropy gives *redundancy*; this
//! module gives each replica *local durability*, so a crashed daemon
//! restarted on the same host recovers every write it acknowledged instead
//! of depending entirely on its peers.
//!
//! Layout per replica (three logical "files" behind a pluggable
//! [`StorageBackend`]):
//!
//! * **log** — length-prefixed, CRC-32-framed records, one per applied
//!   write, appended (and optionally fsynced) *before* the write is
//!   acknowledged;
//! * **snapshot slots A/B** — dual-slot full-state snapshots written by
//!   compaction once the log exceeds a threshold.  The new snapshot is
//!   committed into the inactive slot and synced before the log is
//!   truncated, so a crash at any point leaves a valid (slot, log) pair.
//!
//! Recovery invariants (asserted by `tests/wal_recovery.rs` and the chaos
//! soak):
//!
//! 1. **Kill at any byte**: a crash at any byte offset of a log append
//!    loses no acknowledged write — replay truncates the torn tail and
//!    keeps everything before it.
//! 2. **No silent corruption**: a record whose CRC does not match is never
//!    replayed; recovery refuses with [`StoreError::Corrupt`] rather than
//!    reading past it (callers may then deliberately reset and rebuild via
//!    anti-entropy).
//! 3. Replay is idempotent: records re-apply through the same
//!    `(version, writer)` ordering as live writes.

use crate::client::StoreError;
use crate::version::{StoreKey, Versioned};
use ace_net::fault::{StorageFault, StorageFaultHub};
use ace_net::HostId;
use ace_security::hash::crc32;
use parking_lot::{Mutex, MutexGuard};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// Hard upper bound on one record's payload; a length prefix beyond this is
/// corruption, not a large record.
pub const MAX_RECORD: u32 = 16 << 20;

/// Framing overhead per record: `len: u32 | crc32(payload): u32`.
pub const RECORD_HEADER: usize = 8;

// ---------------------------------------------------------------------------
// Storage backends
// ---------------------------------------------------------------------------

/// One logical file of replica storage.  `append` is the only operation a
/// fault may tear: everything else either fully happens or fully errors,
/// matching the single-sector atomicity real filesystems give renames and
/// truncates.
pub trait StorageBackend: Send {
    /// Full current contents.
    fn read_all(&mut self) -> Result<Vec<u8>, StoreError>;
    /// Append bytes at the end.  Under an armed fault this may persist only
    /// a prefix and return `Err` — the caller must treat `Err` as
    /// "not durable".
    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError>;
    /// Flush appended bytes to stable storage.
    fn sync(&mut self) -> Result<(), StoreError>;
    /// Atomically replace the full contents (snapshot commit, log reset).
    fn replace(&mut self, bytes: &[u8]) -> Result<(), StoreError>;
    /// Cut the contents down to `len` bytes (torn-tail repair).
    fn truncate(&mut self, len: u64) -> Result<(), StoreError>;
    /// Current size in bytes.
    fn size(&mut self) -> Result<u64, StoreError>;
}

const SEG_LOG: usize = 0;
const SEG_SNAP_A: usize = 1;
const SEG_SNAP_B: usize = 2;

#[derive(Debug, Default)]
struct MemInner {
    segments: Mutex<[Vec<u8>; 3]>,
    /// Fencing token: bumped by every [`StorageHandle`] open, so backends
    /// from a superseded instance (a daemon the supervisor already
    /// replaced) can no longer write — the same role a fencing epoch plays
    /// in real shared-storage systems.
    epoch: AtomicU64,
    faults: Mutex<Option<(StorageFaultHub, HostId)>>,
}

/// Cloneable in-memory replica storage: the simulated disk.  Contents
/// survive daemon crash/restart (any clone reopens the same bytes), and an
/// attached [`StorageFaultHub`] injects byte-level damage into appends.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    inner: Arc<MemInner>,
}

impl MemStorage {
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// Attach a fault hub: the log backend consumes faults armed for
    /// `host` at its next append.
    pub fn with_faults(self, hub: StorageFaultHub, host: HostId) -> MemStorage {
        *self.inner.faults.lock() = Some((hub, host));
        self
    }

    /// Bump the fencing epoch, invalidating every backend handed out
    /// before.  Returns the new epoch.
    fn fence(&self) -> u64 {
        self.inner.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    fn backend(&self, seg: usize, epoch: u64) -> MemBackend {
        MemBackend {
            storage: self.clone(),
            seg,
            epoch,
            dead: false,
        }
    }

    /// Raw bytes of the log segment (tests and diagnostics).
    pub fn log_bytes(&self) -> Vec<u8> {
        self.inner.segments.lock()[SEG_LOG].clone()
    }

    /// Overwrite the log segment wholesale — how tests model latent media
    /// damage that happened while the replica was down.
    pub fn set_log_bytes(&self, bytes: Vec<u8>) {
        self.inner.segments.lock()[SEG_LOG] = bytes;
    }
}

struct MemBackend {
    storage: MemStorage,
    seg: usize,
    epoch: u64,
    dead: bool,
}

impl MemBackend {
    fn check(&self) -> Result<(), StoreError> {
        if self.dead {
            return Err(StoreError::Io("backend dead after storage crash".into()));
        }
        if self.storage.inner.epoch.load(Ordering::SeqCst) != self.epoch {
            return Err(StoreError::Io("backend fenced by a newer open".into()));
        }
        Ok(())
    }
}

impl StorageBackend for MemBackend {
    fn read_all(&mut self) -> Result<Vec<u8>, StoreError> {
        self.check()?;
        Ok(self.storage.inner.segments.lock()[self.seg].clone())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.check()?;
        // Only the log segment is fault-injectable: snapshots commit via
        // the atomic `replace`.
        let fault = if self.seg == SEG_LOG {
            let guard = self.storage.inner.faults.lock();
            guard.as_ref().and_then(|(hub, host)| hub.take(host))
        } else {
            None
        };
        let mut segments = self.storage.inner.segments.lock();
        match fault {
            Some(StorageFault::CrashAtByte(n)) => {
                let keep = (n as usize).min(bytes.len());
                segments[self.seg].extend_from_slice(&bytes[..keep]);
                self.dead = true;
                Err(StoreError::Io(format!(
                    "simulated crash after {keep} of {} append bytes",
                    bytes.len()
                )))
            }
            Some(StorageFault::TornWrite(n)) => {
                let keep = (n as usize).min(bytes.len().saturating_sub(1));
                segments[self.seg].extend_from_slice(&bytes[..keep]);
                Err(StoreError::Io(format!(
                    "simulated torn write: {keep} of {} append bytes",
                    bytes.len()
                )))
            }
            Some(StorageFault::BitFlip(bit)) => {
                // Latent damage to what is already on disk; the append
                // itself succeeds.
                let seg = &mut segments[self.seg];
                if !seg.is_empty() {
                    let bit = (bit as usize) % (seg.len() * 8);
                    seg[bit / 8] ^= 1 << (bit % 8);
                }
                seg.extend_from_slice(bytes);
                Ok(())
            }
            None => {
                segments[self.seg].extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.check()
    }

    fn replace(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.check()?;
        self.storage.inner.segments.lock()[self.seg] = bytes.to_vec();
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), StoreError> {
        self.check()?;
        let mut segments = self.storage.inner.segments.lock();
        let seg = &mut segments[self.seg];
        if (len as usize) < seg.len() {
            seg.truncate(len as usize);
        }
        Ok(())
    }

    fn size(&mut self) -> Result<u64, StoreError> {
        self.check()?;
        Ok(self.storage.inner.segments.lock()[self.seg].len() as u64)
    }
}

/// Real-file backend: one file per segment.  Snapshot commits go through
/// write-to-temp + rename so `replace` is atomic on a crash.
struct FileBackend {
    path: PathBuf,
    file: Option<std::fs::File>,
}

impl FileBackend {
    fn new(path: PathBuf) -> FileBackend {
        FileBackend { path, file: None }
    }

    fn io(e: std::io::Error) -> StoreError {
        StoreError::Io(e.to_string())
    }

    fn open_append(&mut self) -> Result<&mut std::fs::File, StoreError> {
        if self.file.is_none() {
            let f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
                .map_err(Self::io)?;
            self.file = Some(f);
        }
        Ok(self.file.as_mut().expect("just opened"))
    }
}

impl StorageBackend for FileBackend {
    fn read_all(&mut self) -> Result<Vec<u8>, StoreError> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(Self::io(e)),
        }
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.open_append()?.write_all(bytes).map_err(Self::io)
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(f) = self.file.as_mut() {
            f.sync_data().map_err(Self::io)?;
        }
        Ok(())
    }

    fn replace(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.file = None; // reopen after the rename
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, bytes).map_err(Self::io)?;
        let f = std::fs::File::open(&tmp).map_err(Self::io)?;
        f.sync_data().map_err(Self::io)?;
        std::fs::rename(&tmp, &self.path).map_err(Self::io)
    }

    fn truncate(&mut self, len: u64) -> Result<(), StoreError> {
        self.file = None;
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&self.path)
            .map_err(Self::io)?;
        f.set_len(len).map_err(Self::io)?;
        f.sync_data().map_err(Self::io)
    }

    fn size(&mut self) -> Result<u64, StoreError> {
        match std::fs::metadata(&self.path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(Self::io(e)),
        }
    }
}

/// Reopenable description of a replica's storage — what a respawn factory
/// holds to recover a crashed replica's data.
#[derive(Debug, Clone)]
pub enum StorageHandle {
    /// Simulated disk (chaos and unit tests).
    Memory(MemStorage),
    /// A directory of real files: `wal.log`, `snap_a.bin`, `snap_b.bin`.
    Dir(PathBuf),
}

impl StorageHandle {
    fn open_backends(&self) -> Result<[Box<dyn StorageBackend>; 3], StoreError> {
        match self {
            StorageHandle::Memory(mem) => {
                let epoch = mem.fence();
                Ok([
                    Box::new(mem.backend(SEG_LOG, epoch)),
                    Box::new(mem.backend(SEG_SNAP_A, epoch)),
                    Box::new(mem.backend(SEG_SNAP_B, epoch)),
                ])
            }
            StorageHandle::Dir(dir) => {
                std::fs::create_dir_all(dir).map_err(FileBackend::io)?;
                Ok([
                    Box::new(FileBackend::new(dir.join("wal.log"))),
                    Box::new(FileBackend::new(dir.join("snap_a.bin"))),
                    Box::new(FileBackend::new(dir.join("snap_b.bin"))),
                ])
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.at < n {
            return Err(format!("payload short: need {n} at {}", self.at));
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| format!("bad utf8: {e}"))
    }
}

/// Encode one write as a record payload (no framing).
fn encode_payload(key: &StoreKey, value: &Versioned) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(key.0.len() + key.1.len() + value.writer.len() + value.data.len() + 24);
    put_str(&mut out, &key.0);
    put_str(&mut out, &key.1);
    out.extend_from_slice(&value.version.to_le_bytes());
    put_str(&mut out, &value.writer);
    out.push(value.deleted as u8);
    out.extend_from_slice(&(value.data.len() as u32).to_le_bytes());
    out.extend_from_slice(&value.data);
    out
}

fn decode_payload(payload: &[u8]) -> Result<(StoreKey, Versioned), String> {
    let mut c = Cursor {
        bytes: payload,
        at: 0,
    };
    let ns = c.str()?;
    let key = c.str()?;
    let version = c.u64()?;
    let writer = c.str()?;
    let deleted = match c.take(1)?[0] {
        0 => false,
        1 => true,
        other => return Err(format!("bad tombstone flag {other}")),
    };
    let data_len = c.u32()? as usize;
    let data = c.take(data_len)?.to_vec();
    if c.at != payload.len() {
        return Err(format!("{} trailing payload bytes", payload.len() - c.at));
    }
    Ok((
        (ns, key),
        Versioned {
            data,
            version,
            writer,
            deleted,
        },
    ))
}

/// Frame one write as a full log record: `len | crc32(payload) | payload`.
pub fn frame_record(key: &StoreKey, value: &Versioned) -> Vec<u8> {
    let payload = encode_payload(key, value);
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// What replaying a log byte stream yielded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Decoded records in log order.
    pub entries: Vec<(StoreKey, Versioned)>,
    /// Byte length of the valid prefix (everything past it is a torn tail).
    pub good_len: u64,
    /// Torn-tail bytes discarded past `good_len`.
    pub torn_bytes: u64,
}

/// Replay a log byte stream.
///
/// * An incomplete record at the end of the stream is a **torn tail** —
///   the crash model's signature — and is discarded; everything before it
///   replays.
/// * A complete record whose CRC mismatches, whose length prefix is
///   absurd, or whose payload does not decode is **corruption**: the
///   replay refuses with [`StoreError::Corrupt`] rather than guessing.
pub fn replay_bytes(bytes: &[u8]) -> Result<Replay, StoreError> {
    let mut entries = Vec::new();
    let mut at = 0usize;
    loop {
        let rem = bytes.len() - at;
        if rem == 0 {
            break;
        }
        if rem < RECORD_HEADER {
            break; // torn inside the header
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if len > MAX_RECORD {
            return Err(StoreError::Corrupt {
                offset: at as u64,
                detail: format!("record length {len} exceeds {MAX_RECORD}"),
            });
        }
        let len = len as usize;
        if rem - RECORD_HEADER < len {
            break; // torn inside the payload
        }
        let payload = &bytes[at + RECORD_HEADER..at + RECORD_HEADER + len];
        if crc32(payload) != crc {
            return Err(StoreError::Corrupt {
                offset: at as u64,
                detail: "record CRC mismatch".into(),
            });
        }
        match decode_payload(payload) {
            Ok(entry) => entries.push(entry),
            Err(detail) => {
                return Err(StoreError::Corrupt {
                    offset: at as u64,
                    detail,
                })
            }
        }
        at += RECORD_HEADER + len;
    }
    Ok(Replay {
        entries,
        good_len: at as u64,
        torn_bytes: (bytes.len() - at) as u64,
    })
}

// ---------------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------------

const SNAP_MAGIC: &[u8; 8] = b"ACSNAP01";

/// Encode a full-state snapshot body.  Shared by compaction (where
/// `generation` is the slot generation) and snapshot shipping (where the
/// same field carries the shipper's WAL-tail sequence cut, so the fetcher
/// knows exactly where tail catch-up must start).
pub(crate) fn encode_snapshot(generation: u64, map: &HashMap<StoreKey, Versioned>) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(SNAP_MAGIC);
    body.extend_from_slice(&generation.to_le_bytes());
    body.extend_from_slice(&(map.len() as u32).to_le_bytes());
    // Deterministic order so identical states produce identical snapshots.
    let mut keys: Vec<&StoreKey> = map.keys().collect();
    keys.sort();
    for key in keys {
        let payload = encode_payload(key, &map[key]);
        body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        body.extend_from_slice(&crc32(&payload).to_le_bytes());
        body.extend_from_slice(&payload);
    }
    let total_crc = crc32(&body);
    body.extend_from_slice(&total_crc.to_le_bytes());
    body
}

/// A decoded snapshot body: its generation and the records it carries.
pub(crate) type SnapshotBody = (u64, Vec<(StoreKey, Versioned)>);

/// `Ok(Some(..))` for a valid snapshot, `Ok(None)` for an empty slot, and
/// `Err(detail)` for a slot that holds bytes which do not validate.
pub(crate) fn decode_snapshot(bytes: &[u8]) -> Result<Option<SnapshotBody>, String> {
    if bytes.is_empty() {
        return Ok(None);
    }
    if bytes.len() < SNAP_MAGIC.len() + 12 + 4 {
        return Err("snapshot shorter than its header".into());
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored {
        return Err("snapshot CRC mismatch".into());
    }
    let mut c = Cursor { bytes: body, at: 0 };
    if c.take(8).map_err(|e| e.to_string())? != SNAP_MAGIC {
        return Err("bad snapshot magic".into());
    }
    let generation = c.u64()?;
    let count = c.u32()? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let len = c.u32()? as usize;
        let rec_crc = c.u32()?;
        let payload = c.take(len)?;
        if crc32(payload) != rec_crc {
            return Err("snapshot record CRC mismatch".into());
        }
        entries.push(decode_payload(payload)?);
    }
    if c.at != body.len() {
        return Err("trailing snapshot bytes".into());
    }
    Ok(Some((generation, entries)))
}

// ---------------------------------------------------------------------------
// The WAL proper
// ---------------------------------------------------------------------------

/// Durability policy.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Sync the log before acknowledging each write.  Off trades the tail
    /// of un-synced writes for append throughput.
    pub fsync_on_commit: bool,
    /// Snapshot + truncate once the log exceeds this many bytes.
    /// `u64::MAX` disables compaction.
    pub compact_threshold: u64,
    /// Group-commit batch cap: the committer drains queued records into
    /// one backend append + one fsync until the batch reaches this many
    /// bytes.  `1` degenerates to one fsync per record (the pre-batching
    /// behaviour, kept reachable for benchmarks and ablations).
    pub max_batch_bytes: usize,
    /// How long the committer lingers for more records to join a batch
    /// before syncing what it has.  `Duration::ZERO` (the default) means
    /// "commit whatever is queued right now": a solo appender pays no
    /// added latency, while concurrent appenders still group naturally
    /// because they queue up behind the in-progress fsync.
    pub max_batch_delay: Duration,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            fsync_on_commit: true,
            compact_threshold: 256 << 10,
            max_batch_bytes: 1 << 20,
            max_batch_delay: Duration::ZERO,
        }
    }
}

/// Counters exposed through `psStats` and the recovery experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalStats {
    pub appends: u64,
    pub append_bytes: u64,
    pub compactions: u64,
    pub compaction_failures: u64,
    pub append_failures: u64,
    /// Group-commit batches flushed (each is one backend append).
    pub batches: u64,
    /// Fsyncs actually issued (one per batch under `fsync_on_commit`).
    pub fsyncs: u64,
    /// Fsyncs avoided by grouping: sum over batches of `records - 1`.
    pub fsyncs_saved: u64,
    /// Largest number of records committed by a single fsync.
    pub max_batch_records: u64,
}

/// What recovery found, surfaced in supervisor restart notes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records loaded from the winning snapshot slot.
    pub snapshot_records: u64,
    /// Records replayed from the log.
    pub replayed_records: u64,
    /// Torn-tail bytes truncated off the log.
    pub torn_bytes: u64,
    /// True when corruption forced a reset to empty state
    /// (anti-entropy must rebuild this replica).
    pub reset: bool,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.reset {
            return write!(f, "wal corrupt; reset for anti-entropy rebuild");
        }
        write!(
            f,
            "wal recovered: {} snapshot + {} log records, {}B torn tail dropped",
            self.snapshot_records, self.replayed_records, self.torn_bytes
        )
    }
}

/// The on-storage half of the WAL, guarded by one lock: the committer
/// holds it across a whole batch flush; compaction holds it across the
/// snapshot-and-truncate commit.
struct WalDisk {
    log: Box<dyn StorageBackend>,
    snaps: [Box<dyn StorageBackend>; 2],
    /// Committed log length; appends past it that fail are truncated away.
    end: u64,
    generation: u64,
    /// Slot holding the current snapshot (the other is overwritten next).
    active_slot: usize,
    /// Set when even torn-tail repair failed; all further appends refuse.
    broken: bool,
    stats: WalStats,
    /// Reusable batch buffer: records are concatenated here so each batch
    /// is exactly one backend `append` (and one tear point under fault
    /// injection), with no per-batch allocation after warm-up.
    scratch: Vec<u8>,
}

/// The group-commit queue: framed records waiting for a committer, plus
/// the completion bookkeeping appenders block on.
#[derive(Default)]
struct CommitQueue {
    /// `(ticket, framed record)` in ticket order.
    pending: VecDeque<(u64, Vec<u8>)>,
    /// Total bytes queued in `pending`.
    pending_bytes: usize,
    next_ticket: u64,
    /// Tickets strictly below this have been committed (or failed).
    completed: u64,
    /// Per-ticket failures for completed-but-failed records.
    failures: HashMap<u64, StoreError>,
    /// True while some appender is acting as the committer.
    committing: bool,
}

/// An open write-ahead log plus its snapshot slots.
///
/// Appends go through a **group commit** engine: concurrent appenders
/// frame their records and enqueue them, then the first one in becomes
/// the *committer* — it drains the queue (bounded by
/// [`WalConfig::max_batch_bytes`] / [`WalConfig::max_batch_delay`]),
/// writes the whole batch as a single backend append, issues a single
/// fsync, and only then wakes every waiter in the batch.  Records that
/// arrive while a flush is in progress queue up and are committed by the
/// next batch, so under concurrency the fsync cost is amortised across
/// all writers while the kill-at-any-byte guarantee is untouched: no
/// append is acknowledged before its bytes are synced.
pub struct Wal {
    config: WalConfig,
    queue: Mutex<CommitQueue>,
    // The parking_lot shim hands out genuine `std::sync` guards, so the
    // std condvars compose with `queue` directly.
    /// Signalled when new records join `pending` (wakes a lingering
    /// committer).
    batch_ready: Condvar,
    /// Signalled after each batch completes (wakes batch members and the
    /// next committer).
    commit_done: Condvar,
    disk: Mutex<WalDisk>,
}

impl Wal {
    /// Open (or create) the WAL behind `handle`, replaying snapshot + log
    /// into a state map.  Refuses with [`StoreError::Corrupt`] when a
    /// non-empty snapshot slot or a mid-log record fails validation.
    pub fn open(
        handle: &StorageHandle,
        config: WalConfig,
    ) -> Result<(Wal, HashMap<StoreKey, Versioned>, RecoveryReport), StoreError> {
        let [mut log, mut snap_a, mut snap_b] = handle.open_backends()?;
        let mut report = RecoveryReport::default();

        // Pick the newest valid snapshot.  A non-empty slot that fails
        // validation is corruption: with atomic slot commits there is no
        // benign way to observe a half-written snapshot, and silently
        // falling back to the older slot could resurrect pre-compaction
        // state with the covering log already truncated.
        let mut best: Option<(SnapshotBody, usize)> = None;
        for (slot, backend) in [&mut snap_a, &mut snap_b].into_iter().enumerate() {
            let bytes = backend.read_all()?;
            match decode_snapshot(&bytes) {
                Ok(None) => {}
                Ok(Some((generation, entries))) => {
                    if best.as_ref().is_none_or(|((g, _), _)| generation > *g) {
                        best = Some(((generation, entries), slot));
                    }
                }
                Err(detail) => {
                    return Err(StoreError::Corrupt {
                        offset: 0,
                        detail: format!("snapshot slot {slot}: {detail}"),
                    })
                }
            }
        }
        let (generation, snap_entries, active_slot) = match best {
            Some(((g, entries), slot)) => (g, entries, slot),
            None => (0, Vec::new(), 1), // next compaction writes slot 0
        };
        report.snapshot_records = snap_entries.len() as u64;
        let mut map: HashMap<StoreKey, Versioned> = HashMap::with_capacity(snap_entries.len());
        for (key, value) in snap_entries {
            map.insert(key, value);
        }

        // Replay the log over the snapshot, truncating a torn tail.
        let bytes = log.read_all()?;
        let replay = replay_bytes(&bytes)?;
        report.replayed_records = replay.entries.len() as u64;
        report.torn_bytes = replay.torn_bytes;
        if replay.torn_bytes > 0 {
            log.truncate(replay.good_len)?;
        }
        for (key, value) in replay.entries {
            match map.get(&key) {
                Some(existing) if !value.beats(existing) => {}
                _ => {
                    map.insert(key, value);
                }
            }
        }

        Ok((
            Wal {
                config,
                queue: Mutex::new(CommitQueue::default()),
                batch_ready: Condvar::new(),
                commit_done: Condvar::new(),
                disk: Mutex::new(WalDisk {
                    log,
                    snaps: [snap_a, snap_b],
                    end: replay.good_len,
                    generation,
                    active_slot,
                    broken: false,
                    stats: WalStats::default(),
                    scratch: Vec::new(),
                }),
            },
            map,
            report,
        ))
    }

    /// Wipe every segment of `handle` — the deliberate response to
    /// detected corruption (anti-entropy then rebuilds from peers).
    pub fn reset(handle: &StorageHandle) -> Result<(), StoreError> {
        let backends = handle.open_backends()?;
        for mut backend in backends {
            backend.replace(&[])?;
        }
        Ok(())
    }

    /// Log one write durably.  Returns only after the record is appended
    /// (and synced, under `fsync_on_commit`) — the caller must not
    /// acknowledge the write before this returns `Ok`.  Concurrent
    /// callers share batches: the record may be committed by another
    /// appender's fsync.
    pub fn append(&self, key: &StoreKey, value: &Versioned) -> Result<(), StoreError> {
        let record = frame_record(key, value);
        let mut q = self.queue.lock();
        let ticket = q.next_ticket;
        q.next_ticket += 1;
        q.pending_bytes += record.len();
        q.pending.push_back((ticket, record));
        if q.committing {
            self.batch_ready.notify_all();
        }
        self.wait_completed(q, ticket, ticket)
    }

    /// Log a run of writes durably, sharing fsyncs like [`Wal::append`]
    /// but guaranteed to enqueue contiguously.  All-or-nothing at the
    /// storage level: the records travel in one backend append (batches
    /// permitting), and the first failure in the run is returned.
    pub fn append_batch(&self, entries: &[(StoreKey, Versioned)]) -> Result<(), StoreError> {
        if entries.is_empty() {
            return Ok(());
        }
        let mut q = self.queue.lock();
        let first = q.next_ticket;
        for (key, value) in entries {
            let record = frame_record(key, value);
            let ticket = q.next_ticket;
            q.next_ticket += 1;
            q.pending_bytes += record.len();
            q.pending.push_back((ticket, record));
        }
        let last = q.next_ticket - 1;
        if q.committing {
            self.batch_ready.notify_all();
        }
        self.wait_completed(q, first, last)
    }

    /// Block until tickets `first..=last` have been committed or failed.
    /// Whoever finds no committer active becomes the committer and
    /// flushes batches until its own tickets are done.
    fn wait_completed<'a>(
        &'a self,
        mut q: MutexGuard<'a, CommitQueue>,
        first: u64,
        last: u64,
    ) -> Result<(), StoreError> {
        loop {
            if q.completed > last {
                let mut result = Ok(());
                for ticket in first..=last {
                    if let Some(e) = q.failures.remove(&ticket) {
                        if result.is_ok() {
                            result = Err(e);
                        }
                    }
                }
                return result;
            }
            if q.committing {
                q = self
                    .commit_done
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            } else {
                q.committing = true;
                while q.completed <= last {
                    q = self.flush_one_batch(q);
                }
                q.committing = false;
                self.commit_done.notify_all();
            }
        }
    }

    /// Drain one batch off the queue, commit it with a single backend
    /// append + fsync, and mark its tickets completed.  Called only by
    /// the current committer (`q.committing` is set).
    fn flush_one_batch<'a>(
        &'a self,
        mut q: MutexGuard<'a, CommitQueue>,
    ) -> MutexGuard<'a, CommitQueue> {
        // Linger: give concurrent appenders a bounded window to join the
        // batch.  Zero (the default) commits whatever is already queued.
        if !self.config.max_batch_delay.is_zero() {
            let deadline = Instant::now() + self.config.max_batch_delay;
            while q.pending_bytes < self.config.max_batch_bytes {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let (guard, timeout) = self
                    .batch_ready
                    .wait_timeout(q, remaining)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }

        // Drain up to `max_batch_bytes` in ticket order.  A single record
        // larger than the cap still ships (alone).
        let mut batch: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut batch_bytes = 0usize;
        while let Some(front_len) = q.pending.front().map(|(_, r)| r.len()) {
            if !batch.is_empty() && batch_bytes + front_len > self.config.max_batch_bytes {
                break;
            }
            let (ticket, record) = q.pending.pop_front().expect("front checked above");
            q.pending_bytes -= record.len();
            batch_bytes += record.len();
            batch.push((ticket, record));
        }
        let Some(&(last, _)) = batch.last() else {
            return q;
        };
        drop(q);

        // Commit the batch outside the queue lock so new appenders can
        // keep enqueueing while storage syncs.
        let result = {
            let mut guard = self.disk.lock();
            let d = &mut *guard;
            if d.broken {
                Err(StoreError::Io(
                    "wal is broken; replica needs respawn".into(),
                ))
            } else {
                d.scratch.clear();
                for (_, record) in &batch {
                    d.scratch.extend_from_slice(record);
                }
                let written = d.log.append(&d.scratch).and_then(|()| {
                    if self.config.fsync_on_commit {
                        d.log.sync()
                    } else {
                        Ok(())
                    }
                });
                match written {
                    Ok(()) => {
                        d.end += d.scratch.len() as u64;
                        d.stats.appends += batch.len() as u64;
                        d.stats.append_bytes += d.scratch.len() as u64;
                        d.stats.batches += 1;
                        if self.config.fsync_on_commit {
                            d.stats.fsyncs += 1;
                            d.stats.fsyncs_saved += batch.len() as u64 - 1;
                        }
                        d.stats.max_batch_records =
                            d.stats.max_batch_records.max(batch.len() as u64);
                        Ok(())
                    }
                    Err(e) => {
                        d.stats.append_failures += batch.len() as u64;
                        // Torn-tail repair: cut the log back to the last
                        // committed batch so later appends cannot
                        // interleave with torn bytes.
                        if d.log.truncate(d.end).is_err() {
                            d.broken = true;
                        }
                        Err(e)
                    }
                }
            }
        };

        let mut q = self.queue.lock();
        if let Err(e) = result {
            for (ticket, _) in &batch {
                q.failures.insert(*ticket, e.clone());
            }
        }
        // Tickets drain in order, so everything up to `last` is done.
        q.completed = last + 1;
        self.commit_done.notify_all();
        q
    }

    /// Snapshot + truncate when the log has outgrown the threshold; see
    /// [`Wal::maybe_compact_when`].
    pub fn maybe_compact(&self, map: &HashMap<StoreKey, Versioned>) -> bool {
        self.maybe_compact_when(map, || true)
    }

    /// Snapshot + truncate when the log has outgrown the threshold.  The
    /// snapshot commits into the inactive slot and syncs *before* the log
    /// is truncated, so a crash at any point of compaction leaves a
    /// recoverable (slot, log) pair.  Failures are counted, not fatal: the
    /// data is still in the log.
    ///
    /// `quiesced` is evaluated **under the disk lock**, after the
    /// threshold check: a record can be durably in the log yet not in the
    /// caller's `map` (its appender is between WAL ack and map insert), and
    /// snapshotting the map while truncating the log would lose it.  The
    /// caller certifies via `quiesced` that no such write is in flight;
    /// because the disk lock is held, no new batch can land while the
    /// certificate is checked or the snapshot commits.
    pub fn maybe_compact_when(
        &self,
        map: &HashMap<StoreKey, Versioned>,
        quiesced: impl FnOnce() -> bool,
    ) -> bool {
        let mut guard = self.disk.lock();
        let d = &mut *guard;
        if d.broken || d.end <= self.config.compact_threshold {
            return false;
        }
        if !quiesced() {
            return false;
        }
        let target = 1 - d.active_slot;
        let snapshot = encode_snapshot(d.generation + 1, map);
        let committed = d.snaps[target]
            .replace(&snapshot)
            .and_then(|()| d.snaps[target].sync())
            .and_then(|()| d.log.replace(&[]))
            .and_then(|()| d.log.sync());
        match committed {
            Ok(()) => {
                d.generation += 1;
                d.active_slot = target;
                d.end = 0;
                d.stats.compactions += 1;
                true
            }
            Err(_) => {
                d.stats.compaction_failures += 1;
                false
            }
        }
    }

    /// Commit `map` as a full snapshot unconditionally: the inactive slot
    /// gets the new snapshot (synced) and the log is truncated, exactly
    /// like a compaction but without the threshold gate.  Used when a
    /// rebuilding replica installs a shipped snapshot: one slot write
    /// instead of re-appending the whole keyspace record by record.
    pub fn install_snapshot(&self, map: &HashMap<StoreKey, Versioned>) -> Result<(), StoreError> {
        let mut guard = self.disk.lock();
        let d = &mut *guard;
        if d.broken {
            return Err(StoreError::Io(
                "wal is broken; replica needs respawn".into(),
            ));
        }
        let target = 1 - d.active_slot;
        let snapshot = encode_snapshot(d.generation + 1, map);
        d.snaps[target]
            .replace(&snapshot)
            .and_then(|()| d.snaps[target].sync())
            .and_then(|()| d.log.replace(&[]))
            .and_then(|()| d.log.sync())?;
        d.generation += 1;
        d.active_slot = target;
        d.end = 0;
        d.stats.compactions += 1;
        Ok(())
    }

    /// Current committed log length in bytes.
    pub fn log_len(&self) -> u64 {
        self.disk.lock().end
    }

    /// Snapshot generation currently active.
    pub fn generation(&self) -> u64 {
        self.disk.lock().generation
    }

    /// A snapshot of the counters (owned: the stats live behind the disk
    /// lock the committer holds during flushes).
    pub fn stats(&self) -> WalStats {
        self.disk.lock().stats.clone()
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = self.disk.lock();
        f.debug_struct("Wal")
            .field("end", &d.end)
            .field("generation", &d.generation)
            .field("broken", &d.broken)
            .field("stats", &d.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(version: u64, data: &[u8]) -> Versioned {
        Versioned {
            data: data.to_vec(),
            version,
            writer: "w1".into(),
            deleted: false,
        }
    }

    fn key(k: &str) -> StoreKey {
        ("ns".to_string(), k.to_string())
    }

    #[test]
    fn record_roundtrips() {
        let value = Versioned {
            data: b"payload \xff\x00 bytes".to_vec(),
            version: 42,
            writer: "rsa:abc".into(),
            deleted: true,
        };
        let framed = frame_record(&key("k"), &value);
        let replay = replay_bytes(&framed).unwrap();
        assert_eq!(replay.entries, vec![(key("k"), value)]);
        assert_eq!(replay.good_len, framed.len() as u64);
        assert_eq!(replay.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_replays_strict_prefix() {
        let mut bytes = Vec::new();
        for i in 0..5u64 {
            bytes.extend_from_slice(&frame_record(&key(&format!("k{i}")), &v(i + 1, b"x")));
        }
        let full = replay_bytes(&bytes).unwrap();
        assert_eq!(full.entries.len(), 5);
        for cut in 0..bytes.len() {
            let replay = replay_bytes(&bytes[..cut]).unwrap();
            assert!(replay.entries.len() <= 5);
            assert_eq!(
                replay.entries.as_slice(),
                &full.entries[..replay.entries.len()],
                "cut at {cut} replayed a non-prefix"
            );
        }
    }

    #[test]
    fn mid_log_bit_flip_is_refused_not_skipped() {
        let mut bytes = Vec::new();
        for i in 0..3u64 {
            bytes.extend_from_slice(&frame_record(&key(&format!("k{i}")), &v(i + 1, b"data")));
        }
        // Flip a payload bit of the *first* record: replay must refuse,
        // not resynchronize past it.
        bytes[RECORD_HEADER + 2] ^= 0x10;
        match replay_bytes(&bytes) {
            Err(StoreError::Corrupt { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn absurd_length_prefix_is_corrupt() {
        let mut bytes = frame_record(&key("k"), &v(1, b"x"));
        bytes[3] = 0xff; // len high byte → > MAX_RECORD
        assert!(matches!(
            replay_bytes(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn open_append_reopen_recovers_everything() {
        let storage = MemStorage::new();
        let handle = StorageHandle::Memory(storage);
        let (wal, map, report) = Wal::open(&handle, WalConfig::default()).unwrap();
        assert!(map.is_empty());
        assert_eq!(report, RecoveryReport::default());
        for i in 0..10u64 {
            wal.append(&key(&format!("k{i}")), &v(i + 1, b"val"))
                .unwrap();
        }
        let (_, map, report) = Wal::open(&handle, WalConfig::default()).unwrap();
        assert_eq!(map.len(), 10);
        assert_eq!(report.replayed_records, 10);
        assert!(!report.reset);
    }

    #[test]
    fn compaction_snapshots_and_truncates_then_recovers() {
        let storage = MemStorage::new();
        let handle = StorageHandle::Memory(storage.clone());
        let config = WalConfig {
            compact_threshold: 256,
            ..WalConfig::default()
        };
        let (wal, _, _) = Wal::open(&handle, config.clone()).unwrap();
        let mut map = HashMap::new();
        let mut compactions = 0;
        for i in 0..100u64 {
            let (k, value) = (key(&format!("k{}", i % 7)), v(i + 1, b"payload-bytes"));
            wal.append(&k, &value).unwrap();
            map.insert(k, value);
            if wal.maybe_compact(&map) {
                compactions += 1;
            }
        }
        assert!(compactions >= 2, "threshold never hit: {compactions}");
        assert!(wal.log_len() < 256 + 64);
        // Recovery sees snapshot + small tail, with full state intact.
        let (wal2, recovered, report) = Wal::open(&handle, config).unwrap();
        assert_eq!(recovered, map);
        assert!(report.snapshot_records > 0);
        assert_eq!(wal2.generation(), compactions);
    }

    #[test]
    fn fencing_cuts_off_superseded_instances() {
        let storage = MemStorage::new();
        let handle = StorageHandle::Memory(storage);
        let (old, _, _) = Wal::open(&handle, WalConfig::default()).unwrap();
        old.append(&key("a"), &v(1, b"x")).unwrap();
        let (new, map, _) = Wal::open(&handle, WalConfig::default()).unwrap();
        assert_eq!(map.len(), 1);
        assert!(matches!(
            old.append(&key("b"), &v(2, b"y")),
            Err(StoreError::Io(_))
        ));
        new.append(&key("c"), &v(3, b"z")).unwrap();
        let (_, map, _) = Wal::open(&handle, WalConfig::default()).unwrap();
        assert_eq!(map.len(), 2, "fenced append must not land");
    }

    #[test]
    fn torn_write_fault_is_repaired_and_later_appends_survive() {
        use ace_net::fault::{StorageFault, StorageFaultHub};
        let hub = StorageFaultHub::new();
        let host = HostId::from("s1");
        let storage = MemStorage::new().with_faults(hub.clone(), host.clone());
        let handle = StorageHandle::Memory(storage.clone());
        let (wal, _, _) = Wal::open(&handle, WalConfig::default()).unwrap();
        wal.append(&key("a"), &v(1, b"first")).unwrap();
        hub.arm(&host, StorageFault::TornWrite(5));
        assert!(wal.append(&key("b"), &v(2, b"torn")).is_err());
        // The torn bytes were cut; the next append starts on a record
        // boundary and the log replays cleanly.
        wal.append(&key("c"), &v(3, b"after")).unwrap();
        let (_, map, report) = Wal::open(&handle, WalConfig::default()).unwrap();
        assert_eq!(map.len(), 2);
        assert!(map.contains_key(&key("a")) && map.contains_key(&key("c")));
        assert_eq!(report.torn_bytes, 0, "repair already removed the tear");
    }

    #[test]
    fn append_batch_commits_with_one_fsync() {
        let storage = MemStorage::new();
        let handle = StorageHandle::Memory(storage);
        let (wal, _, _) = Wal::open(&handle, WalConfig::default()).unwrap();
        let entries: Vec<(StoreKey, Versioned)> = (0..8u64)
            .map(|i| (key(&format!("k{i}")), v(i + 1, b"batched")))
            .collect();
        wal.append_batch(&entries).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.appends, 8);
        assert_eq!(stats.batches, 1, "one backend append for the run");
        assert_eq!(stats.fsyncs, 1, "one fsync for the run");
        assert_eq!(stats.fsyncs_saved, 7);
        assert_eq!(stats.max_batch_records, 8);
        let (_, map, report) = Wal::open(&handle, WalConfig::default()).unwrap();
        assert_eq!(map.len(), 8);
        assert_eq!(report.replayed_records, 8);
    }

    #[test]
    fn concurrent_appends_share_fsyncs() {
        use std::sync::Barrier;
        let storage = MemStorage::new();
        let handle = StorageHandle::Memory(storage);
        let config = WalConfig {
            // Generous linger so the first committer collects the whole
            // barrier cohort into few batches.
            max_batch_delay: Duration::from_millis(100),
            ..WalConfig::default()
        };
        let (wal, _, _) = Wal::open(&handle, config).unwrap();
        let wal = Arc::new(wal);
        let writers = 16;
        let barrier = Arc::new(Barrier::new(writers));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let wal = Arc::clone(&wal);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    wal.append(&key(&format!("w{w}")), &v(w as u64 + 1, b"concurrent"))
                        .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.appends, writers as u64);
        assert!(
            stats.batches < writers as u64,
            "16 simultaneous appenders never shared a batch: {stats:?}"
        );
        assert_eq!(stats.fsyncs, stats.batches);
        assert_eq!(stats.fsyncs + stats.fsyncs_saved, stats.appends);
        let (_, map, _) = Wal::open(&handle, WalConfig::default()).unwrap();
        assert_eq!(map.len(), writers);
    }

    #[test]
    fn batch_cap_of_one_byte_degenerates_to_per_record_fsync() {
        let storage = MemStorage::new();
        let handle = StorageHandle::Memory(storage);
        let config = WalConfig {
            max_batch_bytes: 1,
            ..WalConfig::default()
        };
        let (wal, _, _) = Wal::open(&handle, config).unwrap();
        let entries: Vec<(StoreKey, Versioned)> = (0..5u64)
            .map(|i| (key(&format!("k{i}")), v(i + 1, b"solo")))
            .collect();
        wal.append_batch(&entries).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.appends, 5);
        assert_eq!(stats.batches, 5, "1-byte cap must ship records alone");
        assert_eq!(stats.fsyncs, 5);
        assert_eq!(stats.fsyncs_saved, 0);
    }

    #[test]
    fn crash_mid_batch_fails_every_ticket_and_loses_nothing_acked() {
        use ace_net::fault::{StorageFault, StorageFaultHub};
        let hub = StorageFaultHub::new();
        let host = HostId::from("s1");
        let storage = MemStorage::new().with_faults(hub.clone(), host.clone());
        let handle = StorageHandle::Memory(storage.clone());
        let (wal, _, _) = Wal::open(&handle, WalConfig::default()).unwrap();
        wal.append(&key("acked"), &v(1, b"before")).unwrap();
        // Tear the batch stream partway through the second record.
        let one = frame_record(&key("b0"), &v(2, b"batch")).len() as u64;
        hub.arm(&host, StorageFault::CrashAtByte(one + 3));
        let entries: Vec<(StoreKey, Versioned)> = (0..4u64)
            .map(|i| (key(&format!("b{i}")), v(i + 2, b"batch")))
            .collect();
        assert!(wal.append_batch(&entries).is_err(), "no ticket may ack");
        // Recovery keeps the acked record plus at most a clean prefix of
        // the unacked batch — never a torn or corrupt record.
        let (_, map, report) = Wal::open(&handle, WalConfig::default()).unwrap();
        assert!(map.contains_key(&key("acked")));
        assert!(map.len() <= 2, "at most the first unacked record replays");
        assert!(!map.contains_key(&key("b1")));
        assert!(!report.reset);
    }
}
