//! Versioned values and their ordering.
//!
//! Every stored value carries a `(version, writer)` pair.  Versions are
//! client-assigned (read-max-plus-one); the writer id breaks ties so two
//! concurrent writers converge to one deterministic winner on every
//! replica.  Deletes are tombstones, so they propagate through
//! synchronization like any other write.

/// A versioned value as held by a replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Versioned {
    pub data: Vec<u8>,
    pub version: u64,
    /// Writer id (tie-break; typically the client's principal hash).
    pub writer: String,
    /// Tombstone marker.
    pub deleted: bool,
}

impl Versioned {
    /// Total order: higher version wins, writer id breaks ties.
    pub fn beats(&self, other: &Versioned) -> bool {
        (self.version, self.writer.as_str()) > (other.version, other.writer.as_str())
    }
}

/// A key in the store's object-oriented namespace: `(namespace, key)`.
pub type StoreKey = (String, String);

#[cfg(test)]
mod tests {
    use super::*;

    fn v(version: u64, writer: &str) -> Versioned {
        Versioned {
            data: vec![],
            version,
            writer: writer.into(),
            deleted: false,
        }
    }

    #[test]
    fn higher_version_wins() {
        assert!(v(2, "a").beats(&v(1, "z")));
        assert!(!v(1, "z").beats(&v(2, "a")));
    }

    #[test]
    fn writer_breaks_ties_deterministically() {
        assert!(v(1, "b").beats(&v(1, "a")));
        assert!(!v(1, "a").beats(&v(1, "b")));
        assert!(!v(1, "a").beats(&v(1, "a")));
    }
}
