//! # ace-store — the ACE persistent store
//!
//! "A cluster of three persistent store servers shall work together to
//! provide redundant and robust storage of ACE service and application
//! state, providing the foundation for ACE robust applications and
//! services" (§6, Fig. 17).
//!
//! * [`StoreReplica`] — one replica daemon over a [`DiskImage`] (the
//!   simulated disk that survives crash/restart), running pull-based
//!   anti-entropy against its peers;
//! * [`StoreClient`] — quorum writes (majority), newest-wins reads with
//!   read repair; reads keep working while *any* replica is up, writes
//!   while a majority is;
//! * versioning — client-assigned `(version, writer)` pairs with a total
//!   order, so concurrent writers converge deterministically;
//! * the "straightforward object-oriented namespace approach": keys live
//!   under namespaces (`appstate`, `workspace`, …).
//!
//! [`spawn_store_cluster`] brings up the canonical three-replica cluster.

pub mod client;
pub mod placement;
pub mod replica;
pub mod version;
pub mod wal;

pub use client::{ClientStats, StoreClient, StoreError, WalBatchReport};
pub use placement::{ShardedStats, ShardedStoreClient, StorePlacement};
pub use replica::{DiskImage, StoreReplica};
pub use version::{StoreKey, Versioned};
pub use wal::{MemStorage, RecoveryReport, StorageHandle, Wal, WalConfig, WalStats};

use ace_core::prelude::*;
use ace_core::protocol::hex_decode;
use ace_core::SpawnError;
use ace_directory::Framework;
use ace_security::keys::KeyPair;
use std::time::Duration;

/// Conventional replica port.
pub const STORE_PORT: u16 = 5800;

/// Base port of the sharded store plane (replica `r` of group `g` listens
/// on `SHARDED_STORE_PORT + g * replication + r`).
pub const SHARDED_STORE_PORT: u16 = 6100;

/// Service class of sharded-plane replicas.  Distinct from the unsharded
/// class on purpose: directory-driven anti-entropy matches on class, and a
/// shard replica must never pull keys from another shard's group.
pub const SHARD_CLASS: &str = "Service.Database.PersistentStoreShard";

/// A running store cluster: daemon handles plus each replica's disk image
/// and the storage handle behind it (needed to restart a crashed replica
/// with its data recovered from the write-ahead log).
pub struct StoreCluster {
    pub replicas: Vec<(DaemonHandle, DiskImage)>,
    pub addrs: Vec<Addr>,
    /// One reopenable storage handle per replica, index-aligned with
    /// `replicas`.
    pub storages: Vec<StorageHandle>,
}

impl StoreCluster {
    /// Gracefully stop every replica.
    pub fn shutdown(self) {
        for (handle, _) in self.replicas {
            handle.shutdown();
        }
    }
}

/// Spawn one replica per host (the paper's cluster is three) with the
/// default durability policy.
pub fn spawn_store_cluster(
    net: &SimNet,
    fw: &Framework,
    hosts: &[&str],
    sync_interval: Duration,
) -> Result<StoreCluster, SpawnError> {
    spawn_store_cluster_with(net, fw, hosts, sync_interval, WalConfig::default())
}

/// [`spawn_store_cluster`] with an explicit [`WalConfig`] — chaos runs and
/// benchmarks tune the group-commit knobs (`max_batch_bytes`,
/// `max_batch_delay`) and compaction threshold per scenario.
pub fn spawn_store_cluster_with(
    net: &SimNet,
    fw: &Framework,
    hosts: &[&str],
    sync_interval: Duration,
    config: WalConfig,
) -> Result<StoreCluster, SpawnError> {
    let mut replicas = Vec::with_capacity(hosts.len());
    let mut addrs = Vec::with_capacity(hosts.len());
    let mut storages = Vec::with_capacity(hosts.len());
    for (i, host) in hosts.iter().enumerate() {
        // Durable by default: every replica writes ahead to a simulated
        // disk wired into the network's storage-fault hub, so chaos plans
        // can tear its appends and respawns can recover from the log.
        let storage = StorageHandle::Memory(
            MemStorage::new().with_faults(net.storage_faults(), (*host).into()),
        );
        let (disk, _) = DiskImage::open(&storage, config.clone()).map_err(storage_spawn_err)?;
        let handle = Daemon::spawn(
            net,
            fw.service_config(
                &format!("store_{}", i + 1),
                "Service.Database.PersistentStore",
                "machineroom",
                *host,
                STORE_PORT,
            ),
            Box::new(StoreReplica::new(disk.clone(), sync_interval)),
        )?;
        addrs.push(handle.addr().clone());
        replicas.push((handle, disk));
        storages.push(storage);
    }
    Ok(StoreCluster {
        replicas,
        addrs,
        storages,
    })
}

/// Adapt a storage failure into the daemon-spawn error space (spawning a
/// replica *is* what failed, just below the network layer).  Public so
/// custom respawn factories can use the same mapping.
pub fn storage_spawn_err(e: StoreError) -> SpawnError {
    SpawnError::Register {
        step: "storage",
        error: ClientError::Service {
            code: ErrorCode::Internal,
            msg: e.to_string(),
        },
    }
}

/// Recover a crashed replica from its write-ahead log + snapshot and
/// respawn it on the same host — the supervised recovery path.  Detected
/// corruption resets the storage (see [`DiskImage::open_or_reset`]); the
/// respawned replica then rebuilds via anti-entropy.  Reopening also
/// *fences* any backend still held by the crashed daemon.
pub fn recover_replica(
    net: &SimNet,
    fw: &Framework,
    index: usize,
    host: &str,
    storage: &StorageHandle,
    sync_interval: Duration,
) -> Result<(DaemonHandle, DiskImage, RecoveryReport), SpawnError> {
    let (disk, report) =
        DiskImage::open_or_reset(storage, WalConfig::default()).map_err(storage_spawn_err)?;
    let handle = Daemon::spawn(
        net,
        fw.service_config(
            &format!("store_{}", index + 1),
            "Service.Database.PersistentStore",
            "machineroom",
            host,
            STORE_PORT,
        ),
        Box::new(StoreReplica::new(disk.clone(), sync_interval)),
    )?;
    Ok((handle, disk, report))
}

// ---------------------------------------------------------------------------
// The sharded store plane
// ---------------------------------------------------------------------------

/// A running sharded store: `groups × replication` durable replicas, each
/// carrying the full [`StorePlacement`] and syncing only with its own
/// group (fixed peer lists — a shard replica must never pull another
/// shard's keys).
pub struct ShardedStoreCluster {
    pub placement: StorePlacement,
    /// `groups[g][r]` — daemon handle + disk image of replica `r` of
    /// group `g`.
    pub groups: Vec<Vec<(DaemonHandle, DiskImage)>>,
    /// Reopenable storage handles, shape-aligned with `groups`.
    pub storages: Vec<Vec<StorageHandle>>,
    sync_interval: Duration,
    config: WalConfig,
}

/// What a snapshot-ship rebuild moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebuildReport {
    /// The peer that served the snapshot and WAL tail.
    pub peer: Addr,
    /// Validated snapshot size on the wire.
    pub snapshot_bytes: usize,
    /// Chunked frames the snapshot travelled in.
    pub snapshot_chunks: usize,
    /// Entries the snapshot carried.
    pub snapshot_records: usize,
    /// Entries replayed from the peer's WAL tail after the cut.
    pub tail_records: usize,
}

/// Bring up a sharded store plane: `groups × replication` durable
/// replicas spread round-robin across `hosts`, every replica carrying the
/// full placement map (any replica bootstraps a client via `psPlacement`).
pub fn spawn_sharded_store(
    net: &SimNet,
    hosts: &[HostId],
    groups: usize,
    replication: usize,
    sync_interval: Duration,
    config: WalConfig,
) -> Result<ShardedStoreCluster, SpawnError> {
    assert!(groups > 0 && replication > 0, "empty plane");
    assert!(!hosts.is_empty(), "no hosts to place replicas on");
    let layout: Vec<Vec<Addr>> = (0..groups)
        .map(|g| {
            (0..replication)
                .map(|r| {
                    let idx = g * replication + r;
                    Addr::new(
                        hosts[idx % hosts.len()].clone(),
                        SHARDED_STORE_PORT + idx as u16,
                    )
                })
                .collect()
        })
        .collect();
    let placement = StorePlacement::new(1, layout);
    let mut group_handles = Vec::with_capacity(groups);
    let mut group_storages = Vec::with_capacity(groups);
    for g in 0..groups {
        let mut handles = Vec::with_capacity(replication);
        let mut storages = Vec::with_capacity(replication);
        for (r, addr) in placement.replicas(g).to_vec().iter().enumerate() {
            let storage = StorageHandle::Memory(
                MemStorage::new().with_faults(net.storage_faults(), addr.host.clone()),
            );
            let (disk, _) = DiskImage::open(&storage, config.clone()).map_err(storage_spawn_err)?;
            let handle = Daemon::spawn(
                net,
                DaemonConfig::new(
                    format!("store-s{g}r{r}"),
                    SHARD_CLASS,
                    "machineroom",
                    addr.host.clone(),
                    addr.port,
                ),
                Box::new(shard_replica(
                    &placement,
                    g,
                    addr,
                    disk.clone(),
                    sync_interval,
                )),
            )?;
            handles.push((handle, disk));
            storages.push(storage);
        }
        group_handles.push(handles);
        group_storages.push(storages);
    }
    Ok(ShardedStoreCluster {
        placement,
        groups: group_handles,
        storages: group_storages,
        sync_interval,
        config,
    })
}

/// One shard replica behavior: fixed peers (its own group minus itself)
/// and the full placement map.
fn shard_replica(
    placement: &StorePlacement,
    g: usize,
    addr: &Addr,
    disk: DiskImage,
    sync_interval: Duration,
) -> StoreReplica {
    let peers: Vec<Addr> = placement
        .replicas(g)
        .iter()
        .filter(|a| *a != addr)
        .cloned()
        .collect();
    StoreReplica::new(disk, sync_interval)
        .with_peers(peers)
        .with_placement(placement.clone())
}

impl ShardedStoreCluster {
    /// A routing client over this plane's placement.
    pub fn client(
        &self,
        net: &SimNet,
        from_host: impl Into<HostId>,
        identity: KeyPair,
        pool: std::sync::Arc<LinkPool>,
    ) -> ShardedStoreClient {
        ShardedStoreClient::new(
            net.clone(),
            from_host,
            identity,
            pool,
            self.placement.clone(),
        )
    }

    /// Gracefully stop one replica (rebuild drills take it down on
    /// purpose; chaos plans kill it for real).
    pub fn stop_replica(&self, g: usize, r: usize) {
        self.groups[g][r].0.shutdown();
    }

    /// Rebuild replica `r` of group `g` in place via **snapshot
    /// shipping**: start from an empty disk (the dead one may be torn
    /// mid-record), stream a consistent snapshot cut from a live group
    /// peer in chunked frames, install it through the corrupt-refusing
    /// decode path, catch up record-by-record from the peer's WAL tail,
    /// then respawn the daemon.  Cost is proportional to the *keyspace*,
    /// not the write history the old anti-entropy replay paid.
    pub fn rebuild_replica(
        &mut self,
        net: &SimNet,
        g: usize,
        r: usize,
    ) -> Result<RebuildReport, SpawnError> {
        let addr = self.placement.replicas(g)[r].clone();
        let storage = StorageHandle::Memory(
            MemStorage::new().with_faults(net.storage_faults(), addr.host.clone()),
        );
        let (disk, _) =
            DiskImage::open(&storage, self.config.clone()).map_err(storage_spawn_err)?;
        let identity = KeyPair::generate(&mut rand::thread_rng());
        let peers: Vec<Addr> = self
            .placement
            .replicas(g)
            .iter()
            .filter(|a| **a != addr)
            .cloned()
            .collect();
        let mut report = None;
        let mut last_err = ClientError::Service {
            code: ErrorCode::Internal,
            msg: "no live group peer to ship a snapshot from".into(),
        };
        for peer in &peers {
            match ship_snapshot(net, &addr.host, &identity, peer, &disk) {
                Ok(shipped) => {
                    report = Some(shipped);
                    break;
                }
                Err(err) => last_err = err,
            }
        }
        let Some(report) = report else {
            return Err(SpawnError::Register {
                step: "rebuild",
                error: last_err,
            });
        };
        let handle = Daemon::spawn(
            net,
            DaemonConfig::new(
                format!("store-s{g}r{r}"),
                SHARD_CLASS,
                "machineroom",
                addr.host.clone(),
                addr.port,
            )
            .with_incarnation(self.groups[g][r].0.incarnation() + 1),
            Box::new(shard_replica(
                &self.placement,
                g,
                &addr,
                disk.clone(),
                self.sync_interval,
            )),
        )?;
        self.groups[g][r] = (handle, disk);
        self.storages[g][r] = storage;
        Ok(report)
    }

    /// Stop every replica.
    pub fn shutdown(self) {
        for group in self.groups {
            for (handle, _) in group {
                handle.shutdown();
            }
        }
    }
}

/// Stream `peer`'s state into `disk`: chunked snapshot fetch, validated
/// decode (corrupt bytes refuse the whole ship — the caller tries the
/// next peer), one-slot install, then WAL-tail catch-up by sequence
/// number.  A tail **gap** (the cut fell off the peer's ring) restarts
/// the ship once from a fresh cut before giving up on this peer.
fn ship_snapshot(
    net: &SimNet,
    from_host: &HostId,
    identity: &KeyPair,
    peer: &Addr,
    disk: &DiskImage,
) -> Result<RebuildReport, ClientError> {
    let malformed = |what: &str| ClientError::Service {
        code: ErrorCode::Internal,
        msg: format!("malformed {what} reply from snapshot peer"),
    };
    let mut client = ServiceClient::connect(net, from_host, peer.clone(), identity)?;
    for _attempt in 0..2 {
        // Snapshot phase: offset 0 cuts (and caches) a consistent image on
        // the peer; further offsets stream the immutable bytes.
        let mut bytes: Vec<u8> = Vec::new();
        let mut chunks = 0usize;
        let mut cut_seq;
        loop {
            let fetch = CmdLine::new("psSnapFetch").arg("offset", bytes.len() as i64);
            let reply = client.call(&fetch)?;
            let total = reply.get_int("total").unwrap_or(0).max(0) as usize;
            cut_seq = reply.get_int("seq").unwrap_or(0).max(0) as u64;
            let chunk = reply
                .get_text("data")
                .and_then(hex_decode)
                .ok_or_else(|| malformed("psSnapFetch"))?;
            chunks += 1;
            bytes.extend_from_slice(&chunk);
            if bytes.len() >= total {
                break;
            }
            if chunk.is_empty() {
                return Err(malformed("psSnapFetch (stalled stream)"));
            }
        }
        let decoded =
            crate::wal::decode_snapshot(&bytes).map_err(|detail| ClientError::Service {
                code: ErrorCode::Internal,
                msg: format!("shipped snapshot failed validation: {detail}"),
            })?;
        let entries = match decoded {
            Some((seq, entries)) => {
                cut_seq = seq;
                entries
            }
            None => Vec::new(),
        };
        let snapshot_records = entries.len();
        let snapshot_bytes = bytes.len();
        disk.install_snapshot(entries)
            .map_err(|e| ClientError::Service {
                code: ErrorCode::Internal,
                msg: format!("snapshot install failed locally: {e}"),
            })?;
        // Tail phase: replay everything the peer applied after the cut.
        let mut since = cut_seq;
        let mut tail_records = 0usize;
        let caught_up = loop {
            let tail = CmdLine::new("psWalTail")
                .arg("since", since as i64)
                .arg("max", 1024i64);
            let reply = client.call(&tail)?;
            if reply.get_bool("gap").unwrap_or(false) {
                // The cut aged off the peer's ring mid-ship: re-cut once.
                break false;
            }
            let rows = tail_rows(&reply).ok_or_else(|| malformed("psWalTail"))?;
            if rows.is_empty() {
                break true;
            }
            since = rows.iter().map(|(seq, _, _)| *seq).max().unwrap_or(since) + 1;
            let batch: Vec<(StoreKey, Versioned)> = rows
                .into_iter()
                .map(|(_, key, value)| (key, value))
                .collect();
            tail_records += batch.len();
            disk.apply_batch(batch).map_err(|e| ClientError::Service {
                code: ErrorCode::Internal,
                msg: format!("tail replay failed locally: {e}"),
            })?;
        };
        if caught_up {
            return Ok(RebuildReport {
                peer: peer.clone(),
                snapshot_bytes,
                snapshot_chunks: chunks,
                snapshot_records,
                tail_records,
            });
        }
    }
    Err(ClientError::Service {
        code: ErrorCode::Internal,
        msg: "snapshot cut kept falling off the peer's WAL tail".into(),
    })
}

/// Decode `psWalTail` rows: `(seq, key, value)`.
#[allow(clippy::type_complexity)]
fn tail_rows(reply: &CmdLine) -> Option<Vec<(u64, StoreKey, Versioned)>> {
    let rows = match reply.get("entries") {
        None => return Some(Vec::new()),
        Some(v) if v.as_vector().is_some_and(|s| s.is_empty()) => return Some(Vec::new()),
        Some(v) => v.as_array()?,
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != 7 {
            return None;
        }
        let cell = |i: usize| row[i].as_text();
        out.push((
            cell(0)?.parse().ok()?,
            (cell(1)?.to_string(), cell(2)?.to_string()),
            Versioned {
                data: hex_decode(cell(3)?)?,
                version: cell(4)?.parse().ok()?,
                writer: cell(5)?.to_string(),
                deleted: cell(6)? == "1",
            },
        ));
    }
    Some(out)
}

/// Respawn a crashed replica on the same host with the same disk image
/// (the recovery path of experiment E15).
pub fn respawn_replica(
    net: &SimNet,
    fw: &Framework,
    index: usize,
    host: &str,
    disk: DiskImage,
    sync_interval: Duration,
) -> Result<DaemonHandle, SpawnError> {
    Daemon::spawn(
        net,
        fw.service_config(
            &format!("store_{}", index + 1),
            "Service.Database.PersistentStore",
            "machineroom",
            host,
            STORE_PORT,
        ),
        Box::new(StoreReplica::new(disk, sync_interval)),
    )
}
