//! # ace-store — the ACE persistent store
//!
//! "A cluster of three persistent store servers shall work together to
//! provide redundant and robust storage of ACE service and application
//! state, providing the foundation for ACE robust applications and
//! services" (§6, Fig. 17).
//!
//! * [`StoreReplica`] — one replica daemon over a [`DiskImage`] (the
//!   simulated disk that survives crash/restart), running pull-based
//!   anti-entropy against its peers;
//! * [`StoreClient`] — quorum writes (majority), newest-wins reads with
//!   read repair; reads keep working while *any* replica is up, writes
//!   while a majority is;
//! * versioning — client-assigned `(version, writer)` pairs with a total
//!   order, so concurrent writers converge deterministically;
//! * the "straightforward object-oriented namespace approach": keys live
//!   under namespaces (`appstate`, `workspace`, …).
//!
//! [`spawn_store_cluster`] brings up the canonical three-replica cluster.

pub mod client;
pub mod replica;
pub mod version;

pub use client::{StoreClient, StoreError};
pub use replica::{DiskImage, StoreReplica};
pub use version::{StoreKey, Versioned};

use ace_core::prelude::*;
use ace_core::SpawnError;
use ace_directory::Framework;
use std::time::Duration;

/// Conventional replica port.
pub const STORE_PORT: u16 = 5800;

/// A running store cluster: daemon handles plus each replica's disk image
/// (needed to restart a crashed replica with its data intact).
pub struct StoreCluster {
    pub replicas: Vec<(DaemonHandle, DiskImage)>,
    pub addrs: Vec<Addr>,
}

impl StoreCluster {
    /// Gracefully stop every replica.
    pub fn shutdown(self) {
        for (handle, _) in self.replicas {
            handle.shutdown();
        }
    }
}

/// Spawn one replica per host (the paper's cluster is three).
pub fn spawn_store_cluster(
    net: &SimNet,
    fw: &Framework,
    hosts: &[&str],
    sync_interval: Duration,
) -> Result<StoreCluster, SpawnError> {
    let mut replicas = Vec::with_capacity(hosts.len());
    let mut addrs = Vec::with_capacity(hosts.len());
    for (i, host) in hosts.iter().enumerate() {
        let disk = DiskImage::new();
        let handle = Daemon::spawn(
            net,
            fw.service_config(
                &format!("store_{}", i + 1),
                "Service.Database.PersistentStore",
                "machineroom",
                *host,
                STORE_PORT,
            ),
            Box::new(StoreReplica::new(disk.clone(), sync_interval)),
        )?;
        addrs.push(handle.addr().clone());
        replicas.push((handle, disk));
    }
    Ok(StoreCluster { replicas, addrs })
}

/// Respawn a crashed replica on the same host with the same disk image
/// (the recovery path of experiment E15).
pub fn respawn_replica(
    net: &SimNet,
    fw: &Framework,
    index: usize,
    host: &str,
    disk: DiskImage,
    sync_interval: Duration,
) -> Result<DaemonHandle, SpawnError> {
    Daemon::spawn(
        net,
        fw.service_config(
            &format!("store_{}", index + 1),
            "Service.Database.PersistentStore",
            "machineroom",
            host,
            STORE_PORT,
        ),
        Box::new(StoreReplica::new(disk, sync_interval)),
    )
}
