//! # ace-store — the ACE persistent store
//!
//! "A cluster of three persistent store servers shall work together to
//! provide redundant and robust storage of ACE service and application
//! state, providing the foundation for ACE robust applications and
//! services" (§6, Fig. 17).
//!
//! * [`StoreReplica`] — one replica daemon over a [`DiskImage`] (the
//!   simulated disk that survives crash/restart), running pull-based
//!   anti-entropy against its peers;
//! * [`StoreClient`] — quorum writes (majority), newest-wins reads with
//!   read repair; reads keep working while *any* replica is up, writes
//!   while a majority is;
//! * versioning — client-assigned `(version, writer)` pairs with a total
//!   order, so concurrent writers converge deterministically;
//! * the "straightforward object-oriented namespace approach": keys live
//!   under namespaces (`appstate`, `workspace`, …).
//!
//! [`spawn_store_cluster`] brings up the canonical three-replica cluster.

pub mod client;
pub mod replica;
pub mod version;
pub mod wal;

pub use client::{ClientStats, StoreClient, StoreError, WalBatchReport};
pub use replica::{DiskImage, StoreReplica};
pub use version::{StoreKey, Versioned};
pub use wal::{MemStorage, RecoveryReport, StorageHandle, Wal, WalConfig, WalStats};

use ace_core::prelude::*;
use ace_core::SpawnError;
use ace_directory::Framework;
use std::time::Duration;

/// Conventional replica port.
pub const STORE_PORT: u16 = 5800;

/// A running store cluster: daemon handles plus each replica's disk image
/// and the storage handle behind it (needed to restart a crashed replica
/// with its data recovered from the write-ahead log).
pub struct StoreCluster {
    pub replicas: Vec<(DaemonHandle, DiskImage)>,
    pub addrs: Vec<Addr>,
    /// One reopenable storage handle per replica, index-aligned with
    /// `replicas`.
    pub storages: Vec<StorageHandle>,
}

impl StoreCluster {
    /// Gracefully stop every replica.
    pub fn shutdown(self) {
        for (handle, _) in self.replicas {
            handle.shutdown();
        }
    }
}

/// Spawn one replica per host (the paper's cluster is three) with the
/// default durability policy.
pub fn spawn_store_cluster(
    net: &SimNet,
    fw: &Framework,
    hosts: &[&str],
    sync_interval: Duration,
) -> Result<StoreCluster, SpawnError> {
    spawn_store_cluster_with(net, fw, hosts, sync_interval, WalConfig::default())
}

/// [`spawn_store_cluster`] with an explicit [`WalConfig`] — chaos runs and
/// benchmarks tune the group-commit knobs (`max_batch_bytes`,
/// `max_batch_delay`) and compaction threshold per scenario.
pub fn spawn_store_cluster_with(
    net: &SimNet,
    fw: &Framework,
    hosts: &[&str],
    sync_interval: Duration,
    config: WalConfig,
) -> Result<StoreCluster, SpawnError> {
    let mut replicas = Vec::with_capacity(hosts.len());
    let mut addrs = Vec::with_capacity(hosts.len());
    let mut storages = Vec::with_capacity(hosts.len());
    for (i, host) in hosts.iter().enumerate() {
        // Durable by default: every replica writes ahead to a simulated
        // disk wired into the network's storage-fault hub, so chaos plans
        // can tear its appends and respawns can recover from the log.
        let storage = StorageHandle::Memory(
            MemStorage::new().with_faults(net.storage_faults(), (*host).into()),
        );
        let (disk, _) = DiskImage::open(&storage, config.clone()).map_err(storage_spawn_err)?;
        let handle = Daemon::spawn(
            net,
            fw.service_config(
                &format!("store_{}", i + 1),
                "Service.Database.PersistentStore",
                "machineroom",
                *host,
                STORE_PORT,
            ),
            Box::new(StoreReplica::new(disk.clone(), sync_interval)),
        )?;
        addrs.push(handle.addr().clone());
        replicas.push((handle, disk));
        storages.push(storage);
    }
    Ok(StoreCluster {
        replicas,
        addrs,
        storages,
    })
}

/// Adapt a storage failure into the daemon-spawn error space (spawning a
/// replica *is* what failed, just below the network layer).  Public so
/// custom respawn factories can use the same mapping.
pub fn storage_spawn_err(e: StoreError) -> SpawnError {
    SpawnError::Register {
        step: "storage",
        error: ClientError::Service {
            code: ErrorCode::Internal,
            msg: e.to_string(),
        },
    }
}

/// Recover a crashed replica from its write-ahead log + snapshot and
/// respawn it on the same host — the supervised recovery path.  Detected
/// corruption resets the storage (see [`DiskImage::open_or_reset`]); the
/// respawned replica then rebuilds via anti-entropy.  Reopening also
/// *fences* any backend still held by the crashed daemon.
pub fn recover_replica(
    net: &SimNet,
    fw: &Framework,
    index: usize,
    host: &str,
    storage: &StorageHandle,
    sync_interval: Duration,
) -> Result<(DaemonHandle, DiskImage, RecoveryReport), SpawnError> {
    let (disk, report) =
        DiskImage::open_or_reset(storage, WalConfig::default()).map_err(storage_spawn_err)?;
    let handle = Daemon::spawn(
        net,
        fw.service_config(
            &format!("store_{}", index + 1),
            "Service.Database.PersistentStore",
            "machineroom",
            host,
            STORE_PORT,
        ),
        Box::new(StoreReplica::new(disk.clone(), sync_interval)),
    )?;
    Ok((handle, disk, report))
}

/// Respawn a crashed replica on the same host with the same disk image
/// (the recovery path of experiment E15).
pub fn respawn_replica(
    net: &SimNet,
    fw: &Framework,
    index: usize,
    host: &str,
    disk: DiskImage,
    sync_interval: Duration,
) -> Result<DaemonHandle, SpawnError> {
    Daemon::spawn(
        net,
        fw.service_config(
            &format!("store_{}", index + 1),
            "Service.Database.PersistentStore",
            "machineroom",
            host,
            STORE_PORT,
        ),
        Box::new(StoreReplica::new(disk, sync_interval)),
    )
}
