//! The store client: quorum writes, newest-wins reads, read repair.
//!
//! "If for any reason, one or two of the servers fail or crash, ACE
//! services may still access the stored information within them" (§6):
//! reads succeed while *any* replica answers; writes require a majority so
//! a partitioned minority can never diverge silently.

use crate::version::Versioned;
use ace_core::prelude::*;
use ace_core::protocol::hex_encode;
use ace_security::keys::KeyPair;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Store-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Fewer than `quorum` replicas acknowledged a write.
    QuorumFailed { acked: usize, quorum: usize },
    /// No replica could be reached at all.
    AllReplicasDown,
    /// The key does not exist (or is deleted).
    NotFound,
    /// Stored bytes failed validation (CRC mismatch, malformed record).
    /// Never silently skipped: the holder must reset and resynchronize.
    Corrupt { offset: u64, detail: String },
    /// A storage backend failed (torn write, crashed disk, fenced handle).
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::QuorumFailed { acked, quorum } => {
                write!(f, "write acked by {acked} replicas, quorum is {quorum}")
            }
            StoreError::AllReplicasDown => write!(f, "no persistent-store replica reachable"),
            StoreError::NotFound => write!(f, "key not found"),
            StoreError::Corrupt { offset, detail } => {
                write!(f, "storage corrupt at byte {offset}: {detail}")
            }
            StoreError::Io(detail) => write!(f, "storage i/o failed: {detail}"),
        }
    }
}
impl std::error::Error for StoreError {}

/// Client-side health counters (unit-tested; surfaced by chaos runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Writes that reached quorum.
    pub writes: u64,
    /// Writes that reached quorum but not the *full* replica set — data is
    /// durable yet redundancy is reduced until anti-entropy catches up.
    pub degraded_writes: u64,
    /// Writes that failed to reach quorum at all.
    pub quorum_failures: u64,
    /// Replica replies dropped because they failed validation (missing or
    /// malformed fields).  Non-zero means a replica is misbehaving.
    pub corrupt_replies: u64,
    /// `put_many` calls that reached quorum (each is one wire command and
    /// one WAL batch per replica, however many records it carried).
    pub batch_writes: u64,
    /// Records shipped inside those batches.
    pub batched_records: u64,
}

/// Replica-side group-commit effectiveness, aggregated over the replica
/// set by [`StoreClient::wal_batching`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalBatchReport {
    /// Records appended across all replicas.
    pub appends: u64,
    /// Group-commit batches those records travelled in.
    pub batches: u64,
    /// Fsyncs avoided by grouping.
    pub fsyncs_saved: u64,
}

/// A connected store client.
pub struct StoreClient {
    net: SimNet,
    from_host: HostId,
    identity: KeyPair,
    replicas: Vec<Addr>,
    quorum: usize,
    writer_id: String,
    connections: Vec<Option<ServiceClient>>,
    /// Shared link pool; when set, each replica call checks a link out
    /// instead of holding one dedicated connection per replica.
    pool: Option<Arc<LinkPool>>,
    /// Pooled-mode liveness memory (mirrors what `connections[i].is_some()`
    /// means in dedicated mode): did the last pooled call reach replica i?
    pooled_reachable: Vec<bool>,
    /// Per-replica reconnect schedule for one command.
    retry: RetryPolicy,
    /// Which replicas acked the most recent quorum write (index-aligned
    /// with `replicas`).  The sharded client reads this to tell whether
    /// the leaseholder saw the write it will serve reads over.
    last_acks: Vec<bool>,
    stats: ClientStats,
    /// Network Logger address for degraded-write warnings (lazy connect).
    logger_addr: Option<Addr>,
    logger: Option<ace_directory::LoggerClient>,
}

impl StoreClient {
    /// Client over a fixed replica set with majority quorum.
    pub fn new(
        net: SimNet,
        from_host: impl Into<HostId>,
        identity: KeyPair,
        replicas: Vec<Addr>,
    ) -> StoreClient {
        let quorum = ace_core::quorum::majority(replicas.len());
        let writer_id = identity.principal();
        let connections = replicas.iter().map(|_| None).collect();
        let pooled_reachable = vec![false; replicas.len()];
        StoreClient {
            net,
            from_host: from_host.into(),
            identity,
            replicas,
            quorum,
            writer_id,
            connections,
            pool: None,
            pooled_reachable,
            // One immediate reconnect per replica per command — enough to
            // ride out a dropped connection without stalling a quorum scan
            // on a genuinely dead replica.
            retry: RetryPolicy::fixed(Duration::ZERO).with_max_attempts(1),
            last_acks: Vec::new(),
            stats: ClientStats::default(),
            logger_addr: None,
            logger: None,
        }
    }

    /// Report degraded quorum writes to the Network Logger at `addr`.
    /// The connection is made lazily and rebuilt if it drops; a logger
    /// outage never affects store operations.
    pub fn with_logger(mut self, addr: Addr) -> StoreClient {
        self.logger_addr = Some(addr);
        self
    }

    /// Client-side health counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Override the write quorum (tests exercise degraded modes).
    pub fn with_quorum(mut self, quorum: usize) -> StoreClient {
        self.quorum = quorum.clamp(1, self.replicas.len().max(1));
        self
    }

    /// Override the per-replica reconnect schedule used within a single
    /// command (chaos runs give replicas longer to come back).
    pub fn with_retry(mut self, retry: RetryPolicy) -> StoreClient {
        self.retry = retry;
        self
    }

    /// The configured replica addresses.
    pub fn replicas(&self) -> &[Addr] {
        &self.replicas
    }

    /// Per-replica acks of the most recent write (`put`/`delete`/
    /// `put_many`), index-aligned with [`StoreClient::replicas`].  Empty
    /// until the first write.
    pub fn last_write_acks(&self) -> &[bool] {
        &self.last_acks
    }

    /// Route replica calls through a shared [`LinkPool`] instead of
    /// per-replica dedicated connections.  Checkouts ride session
    /// resumption on pool misses, and a link broken mid-call is discarded
    /// rather than parked, so a restarted replica never serves stale links.
    pub fn with_pool(mut self, pool: Arc<LinkPool>) -> StoreClient {
        self.pool = Some(pool);
        self
    }

    fn call_replica(&mut self, idx: usize, cmd: &CmdLine) -> Option<CmdLine> {
        if let Some(pool) = self.pool.clone() {
            return self.call_replica_pooled(&pool, idx, cmd);
        }
        let mut retry = self.retry.start();
        loop {
            if self.connections[idx].is_none() {
                self.connections[idx] = ServiceClient::connect(
                    &self.net,
                    &self.from_host,
                    self.replicas[idx].clone(),
                    &self.identity,
                )
                .ok();
            }
            // A `None` connection here means connect failed; back off and retry.
            if let Some(client) = self.connections[idx].as_mut() {
                match client.call(cmd) {
                    Ok(reply) => return Some(reply),
                    // Retryable rejections (E_BUSY, E_DEADLINE, E_UPGRADING)
                    // guarantee the command did not execute: back off and
                    // try the replica again within the retry schedule.
                    Err(ClientError::Service { code, .. }) if code.is_retryable() => {}
                    Err(ClientError::Service { .. }) => return None, // e.g. NotFound
                    Err(_) => self.connections[idx] = None,
                }
            }
            if !retry.backoff() {
                return None;
            }
        }
    }

    fn call_replica_pooled(
        &mut self,
        pool: &Arc<LinkPool>,
        idx: usize,
        cmd: &CmdLine,
    ) -> Option<CmdLine> {
        let mut retry = self.retry.start();
        loop {
            match pool.checkout(&self.replicas[idx]) {
                Ok(mut link) => match link.call(cmd) {
                    Ok(reply) => {
                        self.pooled_reachable[idx] = true;
                        return Some(reply);
                    }
                    // The replica shed the command before executing it
                    // (E_BUSY / E_DEADLINE / E_UPGRADING): it is alive but
                    // refusing — back off and retry within the schedule.
                    Err(ClientError::Service { code, .. }) if code.is_retryable() => {
                        self.pooled_reachable[idx] = true;
                    }
                    // The replica answered (e.g. NotFound): it is alive.
                    Err(ClientError::Service { .. }) => {
                        self.pooled_reachable[idx] = true;
                        return None;
                    }
                    // Link failure: `PooledLink` already marked itself
                    // broken so it will not be parked; back off and retry
                    // with a fresh checkout.
                    Err(_) => self.pooled_reachable[idx] = false,
                },
                Err(_) => self.pooled_reachable[idx] = false,
            }
            if !retry.backoff() {
                return None;
            }
        }
    }

    /// Read the newest version of a key across all reachable replicas, with
    /// read repair of stale ones.
    ///
    /// The scan fans out a **version-only digest** — replicas answer
    /// `(version, writer, deleted)` without the value bytes — and the
    /// full value then travels once, from a replica holding the newest
    /// version.  Before, every replica shipped its full copy on every
    /// read, so an n-replica group paid n value transfers per `get`.
    pub fn get(&mut self, ns: &str, key: &str) -> Result<Vec<u8>, StoreError> {
        let digest = CmdLine::new("psGet")
            .arg("ns", ns)
            .arg("key", Value::Str(key.into()))
            .arg("digest", true);
        // (replica index, version, writer, deleted)
        let mut answers: Vec<(usize, u64, String, bool)> = Vec::new();
        let mut missing: Vec<usize> = Vec::new();
        for idx in 0..self.replicas.len() {
            let Some(reply) = self.call_replica(idx, &digest) else {
                // Down *or* missing the key; candidates for read repair.
                missing.push(idx);
                continue;
            };
            match digest_fields(&reply) {
                Some((version, writer, deleted)) => answers.push((idx, version, writer, deleted)),
                None => {
                    // Malformed reply: never substitute defaults for
                    // missing fields — count it and mark the replica for
                    // read repair like one that lacked the key.
                    self.stats.corrupt_replies += 1;
                    missing.push(idx);
                }
            }
        }
        let Some((_, best_version, best_writer, _)) = answers
            .iter()
            .max_by(|(_, av, aw, _), (_, bv, bw, _)| (av, aw.as_str()).cmp(&(bv, bw.as_str())))
            .cloned()
        else {
            // Nothing answered anywhere: every replica was unreachable or
            // lacks the key.  Distinguish by probing liveness with the
            // connection state we just built.
            let any_connected = self.connections.iter().any(Option::is_some)
                || self.pooled_reachable.iter().any(|&up| up);
            return Err(if any_connected {
                StoreError::NotFound
            } else {
                StoreError::AllReplicasDown
            });
        };
        // Fetch the value once, from any replica whose digest matched the
        // winner (it may crash between rounds — try each in turn).
        let full = CmdLine::new("psGet")
            .arg("ns", ns)
            .arg("key", Value::Str(key.into()));
        let mut best: Option<Versioned> = None;
        for (idx, version, writer, _) in &answers {
            if (*version, writer.as_str()) != (best_version, best_writer.as_str()) {
                continue;
            }
            if let Some(reply) = self.call_replica(*idx, &full) {
                match crate::replica::versioned_from_reply(&reply) {
                    Some(value) => {
                        best = Some(value);
                        break;
                    }
                    None => self.stats.corrupt_replies += 1,
                }
            }
        }
        let Some(best) = best else {
            // Every newest holder vanished between the digest round and
            // the fetch; whoever is left holds only older versions, which
            // newest-wins must not serve as current.
            return Err(StoreError::AllReplicasDown);
        };
        // Stale answers plus replicas that missed the key entirely.
        let mut stale = missing;
        for (idx, version, writer, _) in &answers {
            if (best.version, best.writer.as_str()) > (*version, writer.as_str()) {
                stale.push(*idx);
            }
        }
        // Read repair: push the winning version to replicas that lacked
        // it.  A winning tombstone repairs as a delete — repairing it as
        // a put would resurrect the key on the stale replica.
        let repair = if best.deleted {
            CmdLine::new("psDelete")
                .arg("ns", ns)
                .arg("key", Value::Str(key.into()))
                .arg("version", best.version as i64)
                .arg("writer", Value::Str(best.writer.clone()))
        } else {
            CmdLine::new("psPut")
                .arg("ns", ns)
                .arg("key", Value::Str(key.into()))
                .arg("data", hex_encode(&best.data))
                .arg("version", best.version as i64)
                .arg("writer", Value::Str(best.writer.clone()))
        };
        for idx in stale {
            let _ = self.call_replica(idx, &repair);
        }
        if best.deleted {
            return Err(StoreError::NotFound);
        }
        Ok(best.data)
    }

    /// Newest version number of a key (0 if absent anywhere).  Digest
    /// reads only — no value bytes travel.
    fn newest_version(&mut self, ns: &str, key: &str) -> u64 {
        let cmd = CmdLine::new("psGet")
            .arg("ns", ns)
            .arg("key", Value::Str(key.into()))
            .arg("digest", true);
        let mut best = 0;
        for idx in 0..self.replicas.len() {
            if let Some(reply) = self.call_replica(idx, &cmd) {
                best = best.max(reply.get_int("version").unwrap_or(0) as u64);
            }
        }
        best
    }

    fn write(
        &mut self,
        cmd_name: &str,
        ns: &str,
        key: &str,
        data: &[u8],
    ) -> Result<u64, StoreError> {
        let version = self.newest_version(ns, key) + 1;
        let mut cmd = CmdLine::new(cmd_name)
            .arg("ns", ns)
            .arg("key", Value::Str(key.into()))
            .arg("version", version as i64)
            .arg("writer", Value::Str(self.writer_id.clone()));
        if cmd_name == "psPut" {
            cmd.push_arg("data", hex_encode(data));
        }
        let mut round = QuorumRound::new(self.replicas.len(), self.quorum);
        let mut acks = vec![false; self.replicas.len()];
        for (idx, ack) in acks.iter_mut().enumerate() {
            if self.call_replica(idx, &cmd).is_some() {
                round.ack();
                *ack = true;
            }
        }
        self.last_acks = acks;
        if round.reached() {
            self.stats.writes += 1;
            if round.degraded() {
                self.stats.degraded_writes += 1;
                self.warn_degraded(cmd_name, ns, key, round.acked());
            }
            Ok(version)
        } else {
            self.stats.quorum_failures += 1;
            Err(StoreError::QuorumFailed {
                acked: round.acked(),
                quorum: self.quorum,
            })
        }
    }

    /// Warn the Network Logger that a write committed with reduced
    /// redundancy.  Best-effort by design: the warning rides on a lazily
    /// (re)built connection and is dropped if the logger is down.
    fn warn_degraded(&mut self, cmd: &str, ns: &str, key: &str, acked: usize) {
        let msg = format!(
            "degraded {cmd} {ns}/{key}: {acked}/{} replicas acked (quorum {})",
            self.replicas.len(),
            self.quorum
        );
        self.log_best_effort("warn", &msg);
    }

    /// Ship one line to the Network Logger over a lazily (re)built
    /// connection; dropped silently if the logger is down.
    fn log_best_effort(&mut self, level: &str, msg: &str) {
        let Some(addr) = self.logger_addr.clone() else {
            return;
        };
        if self.logger.is_none() {
            self.logger = ace_directory::LoggerClient::connect(
                &self.net,
                &self.from_host,
                addr,
                &self.identity,
            )
            .ok();
        }
        if let Some(logger) = self.logger.as_mut() {
            if logger.log(level, msg).is_err() {
                self.logger = None;
            }
        }
    }

    /// Write a value (read-max-plus-one versioning, majority quorum).
    pub fn put(&mut self, ns: &str, key: &str, data: &[u8]) -> Result<u64, StoreError> {
        self.write("psPut", ns, key, data)
    }

    /// Write a run of values to one namespace in a single quorum round.
    /// One `psPutBatch` command per replica carries every record, and the
    /// replica commits the run through one WAL batch — the fsync is paid
    /// once per replica, not once per record.  Versions are still
    /// read-max-plus-one, with the read half amortised into one digest
    /// scan per replica.  Returns the assigned versions (index-aligned
    /// with `items`, which should not repeat keys); `Err` means *no*
    /// record may be treated as stored.
    pub fn put_many(
        &mut self,
        ns: &str,
        items: &[(String, Vec<u8>)],
    ) -> Result<Vec<u64>, StoreError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let mut newest: HashMap<&str, u64> = items.iter().map(|(k, _)| (k.as_str(), 0)).collect();
        let digest = CmdLine::new("psDigest");
        for idx in 0..self.replicas.len() {
            let Some(reply) = self.call_replica(idx, &digest) else {
                continue;
            };
            let Some(rows) = crate::replica::digest_from_reply(&reply) else {
                self.stats.corrupt_replies += 1;
                continue;
            };
            for (row_ns, key, version, _) in rows {
                if row_ns == ns {
                    if let Some(best) = newest.get_mut(key.as_str()) {
                        *best = (*best).max(version);
                    }
                }
            }
        }
        let versions: Vec<u64> = items.iter().map(|(k, _)| newest[k.as_str()] + 1).collect();
        let rows: Vec<Vec<Scalar>> = items
            .iter()
            .zip(&versions)
            .map(|((key, data), version)| {
                vec![
                    Scalar::Str(key.clone()),
                    Scalar::Str(hex_encode(data)),
                    Scalar::Str(version.to_string()),
                    Scalar::Str(self.writer_id.clone()),
                ]
            })
            .collect();
        let cmd = CmdLine::new("psPutBatch")
            .arg("ns", ns)
            .arg("items", Value::Array(rows));
        let mut round = QuorumRound::new(self.replicas.len(), self.quorum);
        let mut acks = vec![false; self.replicas.len()];
        for (idx, ack) in acks.iter_mut().enumerate() {
            if self.call_replica(idx, &cmd).is_some() {
                round.ack();
                *ack = true;
            }
        }
        self.last_acks = acks;
        if round.reached() {
            self.stats.writes += 1;
            self.stats.batch_writes += 1;
            self.stats.batched_records += items.len() as u64;
            if round.degraded() {
                self.stats.degraded_writes += 1;
                let what = format!("batch[{} records]", items.len());
                self.warn_degraded("psPutBatch", ns, &what, round.acked());
            }
            Ok(versions)
        } else {
            self.stats.quorum_failures += 1;
            Err(StoreError::QuorumFailed {
                acked: round.acked(),
                quorum: self.quorum,
            })
        }
    }

    /// Aggregate group-commit counters across the replica set (one
    /// `psStats` per reachable replica) and report the result to the
    /// Network Logger — operational visibility into how much fsync
    /// amortisation the cluster actually achieves.
    pub fn wal_batching(&mut self) -> WalBatchReport {
        let cmd = CmdLine::new("psStats");
        let mut report = WalBatchReport::default();
        for idx in 0..self.replicas.len() {
            let Some(reply) = self.call_replica(idx, &cmd) else {
                continue;
            };
            report.appends += reply.get_int("walAppends").unwrap_or(0).max(0) as u64;
            report.batches += reply.get_int("walBatches").unwrap_or(0).max(0) as u64;
            report.fsyncs_saved += reply.get_int("walFsyncsSaved").unwrap_or(0).max(0) as u64;
        }
        let msg = format!(
            "wal batching: {} appends in {} batches, {} fsyncs saved",
            report.appends, report.batches, report.fsyncs_saved
        );
        self.log_best_effort("info", &msg);
        report
    }

    /// Delete a key (tombstone write, majority quorum).
    pub fn delete(&mut self, ns: &str, key: &str) -> Result<u64, StoreError> {
        self.write("psDelete", ns, key, &[])
    }

    /// Live keys of a namespace as seen by the first reachable replica.
    pub fn list(&mut self, ns: &str) -> Result<Vec<String>, StoreError> {
        let cmd = CmdLine::new("psList").arg("ns", ns);
        for idx in 0..self.replicas.len() {
            if let Some(reply) = self.call_replica(idx, &cmd) {
                return Ok(reply
                    .get_vector("keys")
                    .map(|v| {
                        v.iter()
                            .filter_map(|s| s.as_text().map(str::to_string))
                            .collect()
                    })
                    .unwrap_or_default());
            }
        }
        Err(StoreError::AllReplicasDown)
    }
}

/// Parse a digest-mode `psGet` reply: `(version, writer, deleted)`.
fn digest_fields(reply: &CmdLine) -> Option<(u64, String, bool)> {
    Some((
        reply.get_int("version")?.max(0) as u64,
        reply.get_text("writer")?.to_string(),
        reply.get_bool("deleted")?,
    ))
}

impl fmt::Debug for StoreClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "StoreClient({} replicas, quorum {})",
            self.replicas.len(),
            self.quorum
        )
    }
}
