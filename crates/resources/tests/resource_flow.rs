//! Integration tests of the resource tier: HRM accounting, SRM aggregation
//! (Fig. 11), HAL app lifecycle, and SAL placement policies (E9's knob).

use ace_core::prelude::*;
use ace_directory::{bootstrap, Framework};
use ace_resources::{
    spawn_host_services, spawn_system_services, system_rows_from_value, HostProfile,
};
use ace_security::keys::KeyPair;
use std::collections::HashMap;
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

struct World {
    net: SimNet,
    fw: Framework,
    host_daemons: Vec<(DaemonHandle, DaemonHandle)>,
    srm: DaemonHandle,
    sal: DaemonHandle,
}

fn world(hosts: &[&str]) -> World {
    let net = SimNet::new();
    net.add_host("core");
    for h in hosts {
        net.add_host(*h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let mut host_daemons = Vec::new();
    for h in hosts {
        host_daemons.push(spawn_host_services(&net, &fw, h, HostProfile::default()).unwrap());
    }
    let (srm, sal) = spawn_system_services(&net, &fw, "core").unwrap();
    World {
        net,
        fw,
        host_daemons,
        srm,
        sal,
    }
}

impl World {
    fn teardown(self) {
        self.sal.shutdown();
        self.srm.shutdown();
        for (hrm, hal) in self.host_daemons {
            hal.shutdown();
            hrm.shutdown();
        }
        self.fw.shutdown();
    }
}

#[test]
fn hal_launch_updates_hrm_load() {
    let w = world(&["bar"]);
    let me = keypair();

    let hal_addr = Addr::new("bar", ace_resources::HAL_PORT);
    let hrm_addr = Addr::new("bar", ace_resources::HRM_PORT);
    let mut hal = ServiceClient::connect(&w.net, &"core".into(), hal_addr, &me).unwrap();
    let mut hrm = ServiceClient::connect(&w.net, &"core".into(), hrm_addr, &me).unwrap();

    let r = hal
        .call(
            &CmdLine::new("launchApp")
                .arg("app", Value::Str("netscape".into()))
                .arg("user", "jdoe")
                .arg("load", 2.0)
                .arg("mem", 64),
        )
        .unwrap();
    let app_id = r.get_int("appId").unwrap();

    let res = hrm.call(&CmdLine::new("getResources")).unwrap();
    assert_eq!(res.get_f64("load"), Some(2.0));
    assert_eq!(res.get_int("memUsed"), Some(64));
    assert_eq!(res.get_int("apps"), Some(1));

    hal.call_ok(&CmdLine::new("killApp").arg("appId", app_id))
        .unwrap();
    let res = hrm.call(&CmdLine::new("getResources")).unwrap();
    assert_eq!(res.get_f64("load"), Some(0.0));
    assert_eq!(res.get_int("apps"), Some(0));

    w.teardown();
}

#[test]
fn timed_apps_expire_and_release_load() {
    let w = world(&["bar"]);
    let me = keypair();
    let hal_addr = Addr::new("bar", ace_resources::HAL_PORT);
    let hrm_addr = Addr::new("bar", ace_resources::HRM_PORT);
    let mut hal = ServiceClient::connect(&w.net, &"core".into(), hal_addr, &me).unwrap();
    let mut hrm = ServiceClient::connect(&w.net, &"core".into(), hrm_addr, &me).unwrap();

    hal.call(
        &CmdLine::new("launchApp")
            .arg("app", Value::Str("sleep".into()))
            .arg("durationMs", 100),
    )
    .unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let res = hrm.call(&CmdLine::new("getResources")).unwrap();
        if res.get_int("apps") == Some(0) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "app never expired");
        std::thread::sleep(Duration::from_millis(20));
    }

    w.teardown();
}

#[test]
fn srm_aggregates_all_hosts() {
    let w = world(&["bar", "tube", "rod"]);
    let me = keypair();
    let mut srm =
        ServiceClient::connect(&w.net, &"core".into(), w.srm.addr().clone(), &me).unwrap();

    srm.call_ok(&CmdLine::new("refresh")).unwrap();
    let reply = srm.call(&CmdLine::new("systemResources")).unwrap();
    let rows = system_rows_from_value(reply.get("hosts").unwrap()).unwrap();
    let hosts: Vec<&str> = rows.iter().map(|r| r.0.as_str()).collect();
    assert_eq!(hosts, vec!["bar", "rod", "tube"]);

    w.teardown();
}

#[test]
fn sal_resource_policy_balances_load() {
    let w = world(&["bar", "tube", "rod", "pipe"]);
    let me = keypair();
    let mut sal =
        ServiceClient::connect(&w.net, &"core".into(), w.sal.addr().clone(), &me).unwrap();

    let mut per_host: HashMap<String, usize> = HashMap::new();
    for i in 0..40 {
        let r = sal
            .call(
                &CmdLine::new("launch")
                    .arg("app", Value::Str(format!("job{i}")))
                    .arg("policy", "resource")
                    .arg("load", 1.0),
            )
            .unwrap();
        *per_host
            .entry(r.get_text("host").unwrap().to_string())
            .or_default() += 1;
    }
    // Resource-aware placement with optimistic charging spreads 40 equal
    // jobs over 4 equal hosts exactly or nearly evenly.
    assert_eq!(per_host.values().sum::<usize>(), 40);
    let max = *per_host.values().max().unwrap();
    let min = per_host.values().min().copied().unwrap_or(0);
    assert!(per_host.len() == 4, "all hosts used: {per_host:?}");
    assert!(
        max - min <= 2,
        "resource policy should balance within ±2: {per_host:?}"
    );

    w.teardown();
}

#[test]
fn sal_pinned_host_and_unknown_policy() {
    let w = world(&["bar", "tube"]);
    let me = keypair();
    let mut sal =
        ServiceClient::connect(&w.net, &"core".into(), w.sal.addr().clone(), &me).unwrap();

    let r = sal
        .call(
            &CmdLine::new("launch")
                .arg("app", Value::Str("x".into()))
                .arg("host", "tube"),
        )
        .unwrap();
    assert_eq!(r.get_text("host"), Some("tube"));

    let err = sal
        .call(
            &CmdLine::new("launch")
                .arg("app", Value::Str("x".into()))
                .arg("policy", "psychic"),
        )
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Semantics));

    let err = sal
        .call(
            &CmdLine::new("launch")
                .arg("app", Value::Str("x".into()))
                .arg("host", "ghost"),
        )
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::NotFound));

    w.teardown();
}

#[test]
fn sal_survives_dead_hal_host() {
    let w = world(&["bar", "tube"]);
    let me = keypair();

    // Kill one host abruptly; its HAL/HRM leases will lapse, but right now
    // the ASD may still list them — the SAL must still be able to place on
    // the survivor (random policy may need a retry against the dead host).
    w.net.kill_host(&"tube".into());
    let mut sal =
        ServiceClient::connect(&w.net, &"core".into(), w.sal.addr().clone(), &me).unwrap();
    let mut placed = 0;
    for _ in 0..6 {
        if let Ok(r) = sal.call(
            &CmdLine::new("launch")
                .arg("app", Value::Str("survivor".into()))
                .arg("policy", "random"),
        ) {
            assert_eq!(r.get_text("host"), Some("bar"));
            placed += 1;
        }
    }
    assert!(
        placed >= 1,
        "at least one placement must land on the survivor"
    );

    // Teardown: the tube daemons are dead; shut down the rest.
    w.sal.shutdown();
    w.srm.shutdown();
    for (hrm, hal) in w.host_daemons {
        if hal.addr().host.as_str() == "tube" {
            hal.crash();
            hrm.crash();
        } else {
            hal.shutdown();
            hrm.shutdown();
        }
    }
    w.fw.shutdown();
}
