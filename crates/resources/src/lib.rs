//! # ace-resources — distributed computational resources
//!
//! The §4.1–§4.4 services that give ACE "invisible distribution of
//! computational resources" (Fig. 11):
//!
//! * [`Hrm`] — per-host resource monitor (CPU bogomips, load, memory, disk);
//! * [`Srm`] — the system-wide aggregator that polls every HRM and answers
//!   placement queries;
//! * [`Hal`] — per-host application launcher running simulated processes;
//! * [`Sal`] — the system launcher that delegates to a HAL chosen randomly
//!   or by resource allocation (the E9 ablation).
//!
//! [`spawn_host_services`] brings up the HRM/HAL pair on one host;
//! [`spawn_system_services`] brings up the SRM/SAL pair for the
//! environment.

pub mod hal;
pub mod hrm;
pub mod sal;
pub mod srm;

pub use hal::{Hal, RunningApp};
pub use hrm::{report_from_reply, HostProfile, Hrm, ResourceReport};
pub use sal::{Policy, Sal};
pub use srm::{system_rows_from_value, Srm};

use ace_core::prelude::*;
use ace_core::SpawnError;
use ace_directory::Framework;

/// Conventional ports for the per-host pair.
pub const HRM_PORT: u16 = 5100;
pub const HAL_PORT: u16 = 5101;
/// Conventional ports for the system pair.
pub const SRM_PORT: u16 = 5110;
pub const SAL_PORT: u16 = 5111;

/// Spawn the HRM and HAL for one host.  Returns `(hrm, hal)`.
pub fn spawn_host_services(
    net: &SimNet,
    fw: &Framework,
    host: &str,
    profile: HostProfile,
) -> Result<(DaemonHandle, DaemonHandle), SpawnError> {
    let hrm = Daemon::spawn(
        net,
        fw.service_config(
            &format!("hrm_{host}"),
            "Service.Monitor.HRM",
            "machineroom",
            host,
            HRM_PORT,
        ),
        Box::new(Hrm::new(profile)),
    )?;
    let hal = Daemon::spawn(
        net,
        fw.service_config(
            &format!("hal_{host}"),
            "Service.Launcher.HAL",
            "machineroom",
            host,
            HAL_PORT,
        ),
        Box::new(Hal::new()),
    )?;
    Ok((hrm, hal))
}

/// Spawn the SRM and SAL on `host`.  Returns `(srm, sal)`.
pub fn spawn_system_services(
    net: &SimNet,
    fw: &Framework,
    host: &str,
) -> Result<(DaemonHandle, DaemonHandle), SpawnError> {
    let srm = Daemon::spawn(
        net,
        fw.service_config("srm", "Service.Monitor.SRM", "machineroom", host, SRM_PORT),
        Box::new(Srm::default()),
    )?;
    let sal = Daemon::spawn(
        net,
        fw.service_config("sal", "Service.Launcher.SAL", "machineroom", host, SAL_PORT),
        Box::new(Sal::new()),
    )?;
    Ok((srm, sal))
}
