//! The Host Resource Monitor — HRM (§4.1).
//!
//! "Provides computational and network resource status on a single host …
//! host CPU load, CPU speed (in bogomips), network traffic load, total and
//! available memory, and disk storage."  One HRM runs per host; the local
//! HAL reports load changes to it, and the SRM polls every HRM to build the
//! system-wide picture (Fig. 11).

use ace_core::prelude::*;

/// Static capabilities of a simulated host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostProfile {
    /// CPU speed in bogomips (the paper's unit).
    pub cpu_bogomips: f64,
    /// Total memory in MB.
    pub mem_total_mb: i64,
    /// Total disk in MB.
    pub disk_total_mb: i64,
}

impl Default for HostProfile {
    fn default() -> Self {
        HostProfile {
            cpu_bogomips: 400.0,
            mem_total_mb: 512,
            disk_total_mb: 20_000,
        }
    }
}

/// A point-in-time resource report.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceReport {
    pub host: String,
    pub cpu_bogomips: f64,
    /// Current CPU load in abstract load units.
    pub load: f64,
    pub mem_total_mb: i64,
    pub mem_used_mb: i64,
    pub disk_total_mb: i64,
    pub apps: i64,
}

impl ResourceReport {
    /// Free-capacity score used by placement: higher is better.  Load is
    /// normalized by CPU speed so a fast host with some load can still beat
    /// a slow idle one.
    pub fn capacity_score(&self) -> f64 {
        let cpu_headroom = self.cpu_bogomips / (1.0 + self.load);
        let mem_headroom =
            (self.mem_total_mb - self.mem_used_mb).max(0) as f64 / self.mem_total_mb.max(1) as f64;
        cpu_headroom * (0.5 + 0.5 * mem_headroom)
    }
}

/// The HRM behavior.
pub struct Hrm {
    profile: HostProfile,
    load: f64,
    mem_used_mb: i64,
    apps: i64,
}

impl Hrm {
    pub fn new(profile: HostProfile) -> Hrm {
        Hrm {
            profile,
            load: 0.0,
            mem_used_mb: 0,
            apps: 0,
        }
    }
}

impl ServiceBehavior for Hrm {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(CmdSpec::new("getResources", "current host resource report"))
            .with(
                CmdSpec::new("addLoad", "a task started on this host (from the HAL)")
                    .required("load", ArgType::Float, "CPU load units")
                    .optional("mem", ArgType::Int, "memory MB"),
            )
            .with(
                CmdSpec::new("removeLoad", "a task ended on this host")
                    .required("load", ArgType::Float, "CPU load units")
                    .optional("mem", ArgType::Int, "memory MB"),
            )
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "getResources" => {
                let host = ctx.host().to_string();
                Reply::ok_with(|c| {
                    c.arg("host", host)
                        .arg("cpu", self.profile.cpu_bogomips)
                        .arg("load", self.load)
                        .arg("memTotal", self.profile.mem_total_mb)
                        .arg("memUsed", self.mem_used_mb)
                        .arg("diskTotal", self.profile.disk_total_mb)
                        .arg("apps", self.apps)
                })
            }
            "addLoad" => {
                self.load += cmd.get_f64("load").expect("validated");
                self.mem_used_mb += cmd.get_int("mem").unwrap_or(0);
                self.apps += 1;
                // `loadChanged` lets interested services (and tests) react.
                let load = self.load;
                ctx.fire_event(CmdLine::new("loadChanged").arg("load", load));
                Reply::ok()
            }
            "removeLoad" => {
                self.load = (self.load - cmd.get_f64("load").expect("validated")).max(0.0);
                self.mem_used_mb = (self.mem_used_mb - cmd.get_int("mem").unwrap_or(0)).max(0);
                self.apps = (self.apps - 1).max(0);
                let load = self.load;
                ctx.fire_event(CmdLine::new("loadChanged").arg("load", load));
                Reply::ok()
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// Decode a `getResources` reply.
pub fn report_from_reply(reply: &CmdLine) -> Option<ResourceReport> {
    Some(ResourceReport {
        host: reply.get_text("host")?.to_string(),
        cpu_bogomips: reply.get_f64("cpu")?,
        load: reply.get_f64("load")?,
        mem_total_mb: reply.get_int("memTotal")?,
        mem_used_mb: reply.get_int("memUsed")?,
        disk_total_mb: reply.get_int("diskTotal")?,
        apps: reply.get_int("apps")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_score_prefers_idle_fast_hosts() {
        let idle_fast = ResourceReport {
            host: "a".into(),
            cpu_bogomips: 800.0,
            load: 0.0,
            mem_total_mb: 512,
            mem_used_mb: 0,
            disk_total_mb: 1,
            apps: 0,
        };
        let busy_fast = ResourceReport {
            load: 4.0,
            mem_used_mb: 400,
            ..idle_fast.clone()
        };
        let idle_slow = ResourceReport {
            cpu_bogomips: 100.0,
            ..idle_fast.clone()
        };
        assert!(idle_fast.capacity_score() > busy_fast.capacity_score());
        assert!(idle_fast.capacity_score() > idle_slow.capacity_score());
    }
}
