//! The System Application Launcher — SAL (§4.4).
//!
//! "If an ACE client wishes to run a specific application, it requests that
//! … to the SAL.  The SAL then finds an appropriate HAL to launch the
//! application (randomly or by resource allocation by communicating with
//! the SRM) and delegates that responsibility to that chosen HAL."
//!
//! The `policy` argument selects between the two placement strategies the
//! paper allows — the knob of experiment E9.

use ace_core::prelude::*;
use rand::seq::SliceRandom;

/// Placement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Pick a HAL uniformly at random.
    Random,
    /// Ask the SRM for the host with the most free capacity.
    Resource,
}

impl Policy {
    pub fn from_word(w: &str) -> Option<Policy> {
        match w {
            "random" => Some(Policy::Random),
            "resource" => Some(Policy::Resource),
            _ => None,
        }
    }
}

/// The SAL behavior.
#[derive(Default)]
pub struct Sal {
    srm: Option<Addr>,
    launches: u64,
}

impl Sal {
    pub fn new() -> Sal {
        Sal::default()
    }

    fn srm_addr(&mut self, ctx: &mut ServiceCtx) -> Option<Addr> {
        if self.srm.is_none() {
            self.srm = ctx.lookup_one("srm").ok().flatten().map(|e| e.addr);
        }
        self.srm.clone()
    }
}

impl ServiceBehavior for Sal {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(
            CmdSpec::new("launch", "launch an application somewhere in the ACE")
                .required("app", ArgType::Str, "application name")
                .optional("user", ArgType::Word, "owning user")
                .optional("load", ArgType::Float, "CPU load units (default 1)")
                .optional("mem", ArgType::Int, "memory MB (default 32)")
                .optional("durationMs", ArgType::Int, "auto-exit after this long")
                .optional(
                    "policy",
                    ArgType::Word,
                    "random | resource (default resource)",
                )
                .optional("host", ArgType::Word, "pin to a specific host"),
        )
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "launch" => {
                let Ok(hals) = ctx.lookup(None, Some("HAL"), None) else {
                    return Reply::err(ErrorCode::Unavailable, "cannot reach the ASD");
                };
                if hals.is_empty() {
                    return Reply::err(ErrorCode::Unavailable, "no HALs registered");
                }
                let policy = match cmd.get_text("policy") {
                    None => Policy::Resource,
                    Some(w) => match Policy::from_word(w) {
                        Some(p) => p,
                        None => {
                            return Reply::err(
                                ErrorCode::Semantics,
                                format!("unknown policy `{w}`"),
                            )
                        }
                    },
                };
                let load = cmd.get_f64("load").unwrap_or(1.0);
                let mem = cmd.get_int("mem").unwrap_or(32);

                // Choose the target HAL.
                let chosen = if let Some(pin) = cmd.get_text("host") {
                    hals.iter().find(|h| h.addr.host.as_str() == pin).cloned()
                } else {
                    match policy {
                        Policy::Random => hals.choose(&mut rand::thread_rng()).cloned(),
                        Policy::Resource => {
                            let best = self.srm_addr(ctx).and_then(|srm| {
                                ctx.call(
                                    &srm,
                                    &CmdLine::new("bestHost")
                                        .arg("expectedLoad", load)
                                        .arg("expectedMem", mem),
                                )
                                .ok()
                                .and_then(|r| r.get_text("host").map(str::to_string))
                            });
                            match best {
                                Some(host) => hals
                                    .iter()
                                    .find(|h| h.addr.host.as_str() == host)
                                    .cloned()
                                    .or_else(|| hals.choose(&mut rand::thread_rng()).cloned()),
                                // SRM down: degrade to random placement.
                                None => hals.choose(&mut rand::thread_rng()).cloned(),
                            }
                        }
                    }
                };
                let Some(target) = chosen else {
                    return Reply::err(ErrorCode::NotFound, "no HAL on the requested host");
                };

                // Delegate to the chosen HAL, forwarding the launch spec.
                let mut launch = CmdLine::new("launchApp")
                    .arg(
                        "app",
                        Value::Str(cmd.get_text("app").expect("validated").into()),
                    )
                    .arg("load", load)
                    .arg("mem", mem);
                if let Some(user) = cmd.get_text("user") {
                    launch.push_arg("user", user);
                }
                if let Some(d) = cmd.get_int("durationMs") {
                    launch.push_arg("durationMs", d);
                }
                match ctx.call(&target.addr, &launch) {
                    Ok(reply) => {
                        self.launches += 1;
                        let app_id = reply.get_int("appId").unwrap_or(-1);
                        let host = target.addr.host.to_string();
                        Reply::ok_with(|c| {
                            c.arg("appId", app_id)
                                .arg("host", host)
                                .arg("hal", target.name.as_str())
                        })
                    }
                    Err(e) => Reply::err(
                        ErrorCode::Unavailable,
                        format!("HAL {} failed: {e}", target.name),
                    ),
                }
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}
