//! The Host Application Launcher — HAL (§4.3).
//!
//! "Responsible for running/launching any type of application on specific
//! hosts … the HAL then simply runs the requested program on a selected
//! host utilizing the host's local resources."
//!
//! Launched applications are simulated processes: they occupy CPU load and
//! memory (reported to the local HRM), optionally run for a fixed duration,
//! and fire `appExited` when they end.  The Workspace Server launches VNC
//! servers and viewers through exactly this path (Scenario 1/3).

use ace_core::prelude::*;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One simulated running application.
#[derive(Debug, Clone)]
pub struct RunningApp {
    pub id: i64,
    pub app: String,
    pub user: String,
    pub load: f64,
    pub mem_mb: i64,
    pub started: Instant,
    /// `None` = runs until killed.
    pub duration: Option<Duration>,
}

/// The HAL behavior.
pub struct Hal {
    apps: HashMap<i64, RunningApp>,
    next_id: i64,
    /// Cached address of this host's HRM.
    hrm: Option<Addr>,
    launched_total: u64,
}

impl Hal {
    pub fn new() -> Hal {
        Hal {
            apps: HashMap::new(),
            next_id: 1,
            hrm: None,
            launched_total: 0,
        }
    }

    /// The conventional name of the HRM/HAL pair on a host.
    pub fn hrm_name(host: &str) -> String {
        format!("hrm_{host}")
    }

    fn hrm_addr(&mut self, ctx: &mut ServiceCtx) -> Option<Addr> {
        if self.hrm.is_none() {
            let name = Self::hrm_name(ctx.host().as_str());
            self.hrm = ctx.lookup_one(&name).ok().flatten().map(|e| e.addr);
        }
        self.hrm.clone()
    }

    fn report_load(&mut self, ctx: &mut ServiceCtx, cmd_name: &str, load: f64, mem: i64) {
        if let Some(hrm) = self.hrm_addr(ctx) {
            let _ = ctx.call(
                &hrm,
                &CmdLine::new(cmd_name).arg("load", load).arg("mem", mem),
            );
        }
    }
}

impl Default for Hal {
    fn default() -> Self {
        Hal::new()
    }
}

impl ServiceBehavior for Hal {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("launchApp", "launch an application on this host")
                    .required("app", ArgType::Str, "application name")
                    .optional("user", ArgType::Word, "owning user")
                    .optional("load", ArgType::Float, "CPU load units (default 1)")
                    .optional("mem", ArgType::Int, "memory MB (default 32)")
                    .optional("durationMs", ArgType::Int, "auto-exit after this long"),
            )
            .with(
                CmdSpec::new("killApp", "terminate a launched application").required(
                    "appId",
                    ArgType::Int,
                    "id returned by launchApp",
                ),
            )
            .with(CmdSpec::new("listApps", "running applications"))
            .with(
                CmdSpec::new("appInfo", "details of one application").required(
                    "appId",
                    ArgType::Int,
                    "application id",
                ),
            )
    }

    fn on_tick(&mut self, ctx: &mut ServiceCtx) {
        // Expire finished applications.
        let now = Instant::now();
        let finished: Vec<i64> = self
            .apps
            .values()
            .filter(|a| a.duration.is_some_and(|d| now >= a.started + d))
            .map(|a| a.id)
            .collect();
        for id in finished {
            if let Some(app) = self.apps.remove(&id) {
                self.report_load(ctx, "removeLoad", app.load, app.mem_mb);
                ctx.fire_event(
                    CmdLine::new("appExited")
                        .arg("appId", app.id)
                        .arg("app", Value::Str(app.app.clone()))
                        .arg("user", app.user.as_str())
                        .arg("reason", "finished"),
                );
            }
        }
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "launchApp" => {
                let id = self.next_id;
                self.next_id += 1;
                let app = RunningApp {
                    id,
                    app: cmd.get_text("app").expect("validated").to_string(),
                    user: cmd.get_text("user").unwrap_or("system").to_string(),
                    load: cmd.get_f64("load").unwrap_or(1.0),
                    mem_mb: cmd.get_int("mem").unwrap_or(32),
                    started: Instant::now(),
                    duration: cmd
                        .get_int("durationMs")
                        .map(|ms| Duration::from_millis(ms.max(0) as u64)),
                };
                self.report_load(ctx, "addLoad", app.load, app.mem_mb);
                ctx.log(
                    "info",
                    format!("launched {} (id {id}) for {}", app.app, app.user),
                );
                self.launched_total += 1;
                let host = ctx.host().to_string();
                self.apps.insert(id, app);
                Reply::ok_with(|c| c.arg("appId", id).arg("host", host))
            }
            "killApp" => {
                let id = cmd.get_int("appId").expect("validated");
                match self.apps.remove(&id) {
                    Some(app) => {
                        self.report_load(ctx, "removeLoad", app.load, app.mem_mb);
                        ctx.fire_event(
                            CmdLine::new("appExited")
                                .arg("appId", id)
                                .arg("app", Value::Str(app.app.clone()))
                                .arg("user", app.user.as_str())
                                .arg("reason", "killed"),
                        );
                        Reply::ok()
                    }
                    None => Reply::err(ErrorCode::NotFound, format!("no app {id}")),
                }
            }
            "listApps" => {
                let mut ids: Vec<&RunningApp> = self.apps.values().collect();
                ids.sort_by_key(|a| a.id);
                let rows: Vec<Vec<Scalar>> = ids
                    .iter()
                    .map(|a| {
                        vec![
                            Scalar::Str(a.id.to_string()),
                            Scalar::Str(a.app.clone()),
                            Scalar::Str(a.user.clone()),
                        ]
                    })
                    .collect();
                Reply::ok_with(|c| {
                    c.arg("count", rows.len() as i64)
                        .arg("apps", Value::Array(rows))
                })
            }
            "appInfo" => {
                let id = cmd.get_int("appId").expect("validated");
                match self.apps.get(&id) {
                    Some(a) => Reply::ok_with(|c| {
                        c.arg("appId", a.id)
                            .arg("app", Value::Str(a.app.clone()))
                            .arg("user", a.user.as_str())
                            .arg("load", a.load)
                            .arg("mem", a.mem_mb)
                            .arg("uptimeMs", a.started.elapsed().as_millis() as i64)
                    }),
                    None => Reply::err(ErrorCode::NotFound, format!("no app {id}")),
                }
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}
