//! The System Resource Monitor — SRM (§4.2, Fig. 11).
//!
//! "Serves as the resource monitor for all the machines running in an ACE
//! environment … it communicates with all HRMs below it in order to monitor
//! all computing resources at a system wide level thus allowing for uniform
//! allocation and distribution of ACE system resources."
//!
//! The SRM polls every HRM it finds in the ASD.  `bestHost` answers
//! placement queries and *optimistically* charges the expected load to its
//! cache so a burst of placements between polls doesn't herd onto one host.

use crate::hrm::{report_from_reply, ResourceReport};
use ace_core::prelude::*;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The SRM behavior.
pub struct Srm {
    poll_interval: Duration,
    last_poll: Option<Instant>,
    cache: HashMap<String, ResourceReport>,
    polls: u64,
}

impl Srm {
    pub fn new(poll_interval: Duration) -> Srm {
        Srm {
            poll_interval,
            last_poll: None,
            cache: HashMap::new(),
            polls: 0,
        }
    }

    fn poll(&mut self, ctx: &mut ServiceCtx) {
        let Ok(hrms) = ctx.lookup(None, Some("HRM"), None) else {
            return;
        };
        let mut fresh = HashMap::with_capacity(hrms.len());
        for entry in hrms {
            if let Ok(reply) = ctx.call(&entry.addr, &CmdLine::new("getResources")) {
                if let Some(report) = report_from_reply(&reply) {
                    fresh.insert(report.host.clone(), report);
                }
            }
        }
        self.cache = fresh;
        self.polls += 1;
        self.last_poll = Some(Instant::now());
    }

    fn poll_if_due(&mut self, ctx: &mut ServiceCtx) {
        let due = self
            .last_poll
            .is_none_or(|t| t.elapsed() >= self.poll_interval);
        if due {
            self.poll(ctx);
        }
    }
}

impl Default for Srm {
    fn default() -> Self {
        Srm::new(Duration::from_millis(200))
    }
}

fn reports_to_value(reports: &[&ResourceReport]) -> Value {
    Value::Array(
        reports
            .iter()
            .map(|r| {
                vec![
                    Scalar::Str(r.host.clone()),
                    Scalar::Str(r.cpu_bogomips.to_string()),
                    Scalar::Str(r.load.to_string()),
                    Scalar::Str(r.mem_total_mb.to_string()),
                    Scalar::Str(r.mem_used_mb.to_string()),
                    Scalar::Str(r.apps.to_string()),
                ]
            })
            .collect(),
    )
}

/// One per-host resource row: `(host, cpu, load, mem_total, mem_used, apps)`.
pub type SystemRow = (String, f64, f64, i64, i64, i64);

/// Decode a `systemResources` reply into per-host [`SystemRow`] rows.
pub fn system_rows_from_value(value: &Value) -> Option<Vec<SystemRow>> {
    let rows = match value {
        v if v.as_vector().is_some_and(|s| s.is_empty()) => return Some(Vec::new()),
        v => v.as_array()?,
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != 6 {
            return None;
        }
        let cell = |i: usize| row[i].as_text();
        out.push((
            cell(0)?.to_string(),
            cell(1)?.parse().ok()?,
            cell(2)?.parse().ok()?,
            cell(3)?.parse().ok()?,
            cell(4)?.parse().ok()?,
            cell(5)?.parse().ok()?,
        ));
    }
    Some(out)
}

impl ServiceBehavior for Srm {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(CmdSpec::new(
                "systemResources",
                "resource reports for every known host",
            ))
            .with(
                CmdSpec::new("bestHost", "host with the most free capacity")
                    .optional(
                        "expectedLoad",
                        ArgType::Float,
                        "load the caller is about to place (charged optimistically)",
                    )
                    .optional("expectedMem", ArgType::Int, "memory the caller will use"),
            )
            .with(CmdSpec::new("refresh", "force an immediate HRM poll"))
    }

    fn on_start(&mut self, ctx: &mut ServiceCtx) {
        self.poll(ctx);
    }

    fn on_tick(&mut self, ctx: &mut ServiceCtx) {
        self.poll_if_due(ctx);
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "systemResources" => {
                self.poll_if_due(ctx);
                let mut reports: Vec<&ResourceReport> = self.cache.values().collect();
                reports.sort_by(|a, b| a.host.cmp(&b.host));
                Reply::ok_with(|c| {
                    c.arg("count", reports.len() as i64)
                        .arg("hosts", reports_to_value(&reports))
                        .arg("polls", self.polls as i64)
                })
            }
            "bestHost" => {
                self.poll_if_due(ctx);
                let best = self
                    .cache
                    .values()
                    .max_by(|a, b| {
                        a.capacity_score()
                            .partial_cmp(&b.capacity_score())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|r| r.host.clone());
                match best {
                    Some(host) => {
                        // Charge the expected load so back-to-back
                        // placements spread out even between polls.
                        let load = cmd.get_f64("expectedLoad").unwrap_or(0.0);
                        let mem = cmd.get_int("expectedMem").unwrap_or(0);
                        if let Some(r) = self.cache.get_mut(&host) {
                            r.load += load;
                            r.mem_used_mb += mem;
                            r.apps += 1;
                        }
                        Reply::ok_with(|c| c.arg("host", host))
                    }
                    None => Reply::err(ErrorCode::Unavailable, "no hosts known"),
                }
            }
            "refresh" => {
                self.poll(ctx);
                Reply::ok_with(|c| c.arg("hosts", self.cache.len() as i64))
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}
