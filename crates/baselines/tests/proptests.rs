//! Property tests on the RMI-style codec: round-trips, totality on
//! arbitrary input, and the lightweight claim holding across generated
//! calls.

use ace_baselines::{RmiCall, RmiValue};
use ace_lang::CmdLine;
use proptest::prelude::*;

fn rmi_value() -> impl Strategy<Value = RmiValue> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(RmiValue::Long),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(RmiValue::Double),
        "[ -~]{0,24}".prop_map(RmiValue::Str),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(RmiValue::List)
    })
}

fn rmi_call() -> impl Strategy<Value = RmiCall> {
    (
        "[a-z][a-z.]{0,24}",
        "[a-z][a-zA-Z]{0,12}",
        prop::collection::vec(("[a-z][a-z0-9]{0,8}", rmi_value()), 0..6),
    )
        .prop_map(|(interface, method, args)| RmiCall {
            interface,
            method,
            args,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode(encode(call)) == call.
    #[test]
    fn rmi_roundtrip(call in rmi_call()) {
        prop_assert_eq!(RmiCall::decode(&call.encode()), Some(call));
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn rmi_decode_total(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = RmiCall::decode(&data);
    }

    /// Truncating a valid stream anywhere yields None, not a panic or a
    /// bogus success at the full length.
    #[test]
    fn rmi_truncation_detected(call in rmi_call(), frac in 0.0f64..1.0) {
        let wire = call.encode();
        let cut = ((wire.len() - 1) as f64 * frac) as usize;
        let _ = RmiCall::decode(&wire[..cut]); // must not panic
    }

    /// For any ACE command, the RMI-style encoding of the same call is
    /// strictly heavier — the paper's lightweight claim as a property.
    #[test]
    fn ace_always_lighter(
        name in "[a-z][a-zA-Z0-9]{0,12}",
        args in prop::collection::vec(("[a-z][a-z0-9]{0,8}", any::<i64>()), 0..8),
    ) {
        let mut cmd = CmdLine::new(name);
        let mut seen = std::collections::HashSet::new();
        for (n, v) in args {
            if seen.insert(n.clone()) {
                cmd.push_arg(n, v);
            }
        }
        let ace = cmd.to_wire().len();
        let rmi = RmiCall::from_cmdline("edu.ku.ittc.ace.Service", &cmd).encode().len();
        prop_assert!(rmi > 2 * ace, "rmi {rmi} vs ace {ace} for {}", cmd.to_wire());
    }
}
