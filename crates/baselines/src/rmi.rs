//! An RMI-style invocation codec — the comparison target of the paper's
//! efficiency claim.
//!
//! "Providing ACE with a unique and simple command language allows for a
//! very lightweight form of communication … much more lightweight than
//! utilizing something like RMI" (§2.2), and of Ninja: "ACE communications
//! \[are\] much more lightweight than Ninja's bytecode transmissions" (§8.1).
//!
//! This codec reproduces *why* RMI messages are heavy: Java object
//! serialization ships self-describing streams.  Every invocation carries a
//! stream header, the remote interface and method names, and for each
//! argument a full class descriptor — class name, serialVersionUID, field
//! count, per-field type tags and names — before any data.  (Real RMI can
//! cache descriptors per connection; like RMI's default for call arguments
//! written as fresh object graphs, descriptors are re-sent per call here,
//! which is what the paper's comparison is about.)

use ace_lang::{CmdLine, Scalar, Value};

/// Argument values of an RMI-style call.
#[derive(Debug, Clone, PartialEq)]
pub enum RmiValue {
    Long(i64),
    Double(f64),
    Str(String),
    /// An `ArrayList<Object>` of boxed values.
    List(Vec<RmiValue>),
}

/// One remote method invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RmiCall {
    /// Fully-qualified remote interface, e.g. `edu.ku.ittc.ace.PTZCamera`.
    pub interface: String,
    pub method: String,
    /// `(parameter name, value)` pairs (names preserved for apples-to-apples
    /// conversion from ACE commands).
    pub args: Vec<(String, RmiValue)>,
}

const STREAM_MAGIC: u16 = 0xaced;
const STREAM_VERSION: u16 = 5;

fn write_utf(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_utf(data: &[u8], pos: &mut usize) -> Option<String> {
    let len = u16::from_be_bytes([*data.get(*pos)?, *data.get(*pos + 1)?]) as usize;
    *pos += 2;
    let bytes = data.get(*pos..*pos + len)?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).ok()
}

/// Write a full class descriptor for a boxed value — the per-object
/// overhead of Java serialization.
fn write_descriptor(out: &mut Vec<u8>, value: &RmiValue) {
    let (class, uid, fields): (&str, u64, &[(&str, u8)]) = match value {
        RmiValue::Long(_) => ("java.lang.Long", 0x3b8b_e490_cc8f_23df, &[("value", b'J')]),
        RmiValue::Double(_) => (
            "java.lang.Double",
            0x80b3_c24a_296b_fb04,
            &[("value", b'D')],
        ),
        RmiValue::Str(_) => (
            "java.lang.String",
            0xa0f0_a438_7a3b_b342,
            &[("value", b'[')],
        ),
        RmiValue::List(_) => (
            "java.util.ArrayList",
            0x7881_d21d_99c7_619d,
            &[("size", b'I'), ("elementData", b'[')],
        ),
    };
    out.push(0x72); // TC_CLASSDESC
    write_utf(out, class);
    out.extend_from_slice(&uid.to_be_bytes());
    out.push(0x02); // SC_SERIALIZABLE flags
    out.extend_from_slice(&(fields.len() as u16).to_be_bytes());
    for (name, ty) in fields {
        out.push(*ty);
        write_utf(out, name);
        if *ty == b'[' {
            // Object-typed fields carry a type signature string too.
            write_utf(out, "Ljava/lang/Object;");
        }
    }
    out.push(0x78); // TC_ENDBLOCKDATA
    out.push(0x70); // TC_NULL (no superclass)
}

fn write_value(out: &mut Vec<u8>, value: &RmiValue) {
    out.push(0x73); // TC_OBJECT
    write_descriptor(out, value);
    match value {
        RmiValue::Long(v) => out.extend_from_slice(&v.to_be_bytes()),
        RmiValue::Double(v) => out.extend_from_slice(&v.to_be_bytes()),
        RmiValue::Str(s) => {
            out.push(0x74); // TC_STRING
            write_utf(out, s);
        }
        RmiValue::List(items) => {
            out.extend_from_slice(&(items.len() as u32).to_be_bytes());
            for item in items {
                write_value(out, item);
            }
        }
    }
}

fn read_value(data: &[u8], pos: &mut usize) -> Option<RmiValue> {
    if *data.get(*pos)? != 0x73 {
        return None;
    }
    *pos += 1;
    // Descriptor.
    if *data.get(*pos)? != 0x72 {
        return None;
    }
    *pos += 1;
    let class = read_utf(data, pos)?;
    *pos += 8 + 1; // uid + flags
    let field_count = u16::from_be_bytes([*data.get(*pos)?, *data.get(*pos + 1)?]);
    *pos += 2;
    for _ in 0..field_count {
        let ty = *data.get(*pos)?;
        *pos += 1;
        let _name = read_utf(data, pos)?;
        if ty == b'[' {
            let _sig = read_utf(data, pos)?;
        }
    }
    *pos += 2; // TC_ENDBLOCKDATA + TC_NULL
    match class.as_str() {
        "java.lang.Long" => {
            let bytes: [u8; 8] = data.get(*pos..*pos + 8)?.try_into().ok()?;
            *pos += 8;
            Some(RmiValue::Long(i64::from_be_bytes(bytes)))
        }
        "java.lang.Double" => {
            let bytes: [u8; 8] = data.get(*pos..*pos + 8)?.try_into().ok()?;
            *pos += 8;
            Some(RmiValue::Double(f64::from_be_bytes(bytes)))
        }
        "java.lang.String" => {
            if *data.get(*pos)? != 0x74 {
                return None;
            }
            *pos += 1;
            Some(RmiValue::Str(read_utf(data, pos)?))
        }
        "java.util.ArrayList" => {
            let len = u32::from_be_bytes(data.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
            *pos += 4;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(read_value(data, pos)?);
            }
            Some(RmiValue::List(items))
        }
        _ => None,
    }
}

impl RmiCall {
    /// Serialize the invocation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&STREAM_MAGIC.to_be_bytes());
        out.extend_from_slice(&STREAM_VERSION.to_be_bytes());
        out.push(0x50); // call marker
        write_utf(&mut out, &self.interface);
        write_utf(&mut out, &self.method);
        // Method hash (RMI sends an 8-byte method hash).
        out.extend_from_slice(
            &ace_security::hash::fnv64(format!("{}#{}", self.interface, self.method).as_bytes())
                .to_be_bytes(),
        );
        out.extend_from_slice(&(self.args.len() as u16).to_be_bytes());
        for (name, value) in &self.args {
            write_utf(&mut out, name);
            write_value(&mut out, value);
        }
        out
    }

    /// Deserialize an invocation.
    pub fn decode(data: &[u8]) -> Option<RmiCall> {
        let mut pos = 0;
        if data.get(0..4)? != [0xac, 0xed, 0x00, 0x05] {
            return None;
        }
        pos += 4;
        if *data.get(pos)? != 0x50 {
            return None;
        }
        pos += 1;
        let interface = read_utf(data, &mut pos)?;
        let method = read_utf(data, &mut pos)?;
        pos += 8; // method hash
        let argc = u16::from_be_bytes([*data.get(pos)?, *data.get(pos + 1)?]) as usize;
        pos += 2;
        let mut args = Vec::with_capacity(argc);
        for _ in 0..argc {
            let name = read_utf(data, &mut pos)?;
            args.push((name, read_value(data, &mut pos)?));
        }
        if pos != data.len() {
            return None;
        }
        Some(RmiCall {
            interface,
            method,
            args,
        })
    }

    /// The same logical call as an ACE command would express — used by E3 to
    /// encode identical invocations in both systems.
    pub fn from_cmdline(interface: &str, cmd: &CmdLine) -> RmiCall {
        fn convert(value: &Value) -> RmiValue {
            match value {
                Value::Int(i) => RmiValue::Long(*i),
                Value::Float(f) => RmiValue::Double(*f),
                Value::Word(w) => RmiValue::Str(w.clone()),
                Value::Str(s) => RmiValue::Str(s.clone()),
                Value::Vector(v) => RmiValue::List(v.iter().map(convert_scalar).collect()),
                Value::Array(rows) => RmiValue::List(
                    rows.iter()
                        .map(|row| RmiValue::List(row.iter().map(convert_scalar).collect()))
                        .collect(),
                ),
            }
        }
        fn convert_scalar(s: &Scalar) -> RmiValue {
            match s {
                Scalar::Int(i) => RmiValue::Long(*i),
                Scalar::Float(f) => RmiValue::Double(*f),
                Scalar::Word(w) => RmiValue::Str(w.clone()),
                Scalar::Str(s) => RmiValue::Str(s.clone()),
            }
        }
        RmiCall {
            interface: interface.to_string(),
            method: cmd.name().to_string(),
            args: cmd
                .args()
                .iter()
                .map(|(name, value)| (name.clone(), convert(value)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_call() -> RmiCall {
        RmiCall {
            interface: "edu.ku.ittc.ace.PTZCamera".into(),
            method: "ptzMove".into(),
            args: vec![
                ("x".into(), RmiValue::Long(10)),
                ("y".into(), RmiValue::Long(-3)),
                ("zoom".into(), RmiValue::Double(1.5)),
                ("mode".into(), RmiValue::Str("absolute".into())),
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let call = sample_call();
        assert_eq!(RmiCall::decode(&call.encode()), Some(call));
    }

    #[test]
    fn nested_lists_roundtrip() {
        let call = RmiCall {
            interface: "I".into(),
            method: "m".into(),
            args: vec![(
                "matrix".into(),
                RmiValue::List(vec![
                    RmiValue::List(vec![RmiValue::Long(1), RmiValue::Long(2)]),
                    RmiValue::List(vec![RmiValue::Str("a".into())]),
                ]),
            )],
        };
        assert_eq!(RmiCall::decode(&call.encode()), Some(call));
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(RmiCall::decode(b"not rmi"), None);
        assert_eq!(RmiCall::decode(&[]), None);
        let mut truncated = sample_call().encode();
        truncated.truncate(truncated.len() / 2);
        assert_eq!(RmiCall::decode(&truncated), None);
    }

    #[test]
    fn rmi_wire_is_heavier_than_ace_for_the_same_call() {
        // The paper's efficiency claim, at the codec level.
        let cmd = CmdLine::new("ptzMove")
            .arg("x", 10)
            .arg("y", -3)
            .arg("zoom", 1.5)
            .arg("mode", "absolute");
        let ace_bytes = cmd.to_wire().len();
        let rmi_bytes = RmiCall::from_cmdline("edu.ku.ittc.ace.PTZCamera", &cmd)
            .encode()
            .len();
        assert!(
            rmi_bytes > 5 * ace_bytes,
            "rmi {rmi_bytes} vs ace {ace_bytes}"
        );
    }

    #[test]
    fn from_cmdline_preserves_structure() {
        let cmd = CmdLine::parse("c v={1,2} m={{1},{2,3}} w=word s=\"a b\";").unwrap();
        let call = RmiCall::from_cmdline("I", &cmd);
        assert_eq!(call.method, "c");
        assert_eq!(call.args.len(), 4);
        assert_eq!(
            call.args[0].1,
            RmiValue::List(vec![RmiValue::Long(1), RmiValue::Long(2)])
        );
    }
}
