//! # ace-baselines — the systems ACE is compared against
//!
//! The paper's related-work section (§8) positions ACE against three
//! architectures; each is implemented here to the depth the experiments
//! need:
//!
//! * [`rmi`] — an RMI-style object-serialization codec: the per-call class
//!   descriptors that make RMI "bytecode transmissions" heavy, for the
//!   lightweight-language claim (E3);
//! * [`jini`] — a Jini-style lookup service with multicast discovery and
//!   RMI-framed register/lookup carrying serialized proxies (E5);
//! * [`central`] — a WebSphere-style centralized device server with
//!   single-dispatcher HTTP-shaped request handling (E20).
//!
//! [`load`] is the shared lookup-storm harness that applies the same load
//! shape to every system under comparison.

pub mod central;
pub mod jini;
pub mod load;
pub mod rmi;

pub use central::{CentralClient, CentralServer};
pub use jini::{discover, JiniClient, JiniLookup, JiniProxy, DISCOVERY_PORT};
pub use load::{lookup_storm, LoadReport};
pub use rmi::{RmiCall, RmiValue};
